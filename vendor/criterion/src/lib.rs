//! Offline, vendored stand-in for `criterion`: the benchmark-harness
//! surface this workspace's benches use. No statistics — each benchmark
//! is timed over a fixed warm-up plus measured batch and reported as a
//! mean per-iteration time. Enough to keep `cargo bench` compiling and
//! producing comparable numbers without the real crate.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export point for benches that call `black_box(...)`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// The harness entry point handed to every benchmark function.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 100,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets how many measured samples to take (min 10, like criterion).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(10);
        self
    }

    /// Runs one benchmark under this group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), f);
        self
    }

    /// Runs one parameterised benchmark under this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), |b| f(b, input));
        self
    }

    /// Ends the group (criterion finalises reports here; no-op for us).
    pub fn finish(self) {}

    fn run<F>(&mut self, id: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: self.sample_size,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        let mean_ns = if bencher.iters == 0 {
            0.0
        } else {
            bencher.total.as_nanos() as f64 / bencher.iters as f64
        };
        println!(
            "{}/{}: {:.1} ns/iter ({} iters)",
            self.name, id, mean_ns, bencher.iters
        );
    }
}

/// Identifies a parameterised benchmark (`function_name/parameter`).
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter value.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{function_name}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Times the routine under measurement.
pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine`: a few warm-up calls, then `sample_size` timed
    /// iterations accumulated into the mean.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..3 {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.total += start.elapsed();
        self.iters += self.samples as u64;
    }
}

/// Declares a group of benchmark functions (criterion-compatible).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(10);
        let mut ran = 0u32;
        group.bench_function("count", |b| b.iter(|| ran = ran.wrapping_add(1)));
        group.bench_with_input(BenchmarkId::new("param", 4), &4u32, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
        assert!(ran >= 10);
    }
}
