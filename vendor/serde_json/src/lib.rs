//! Offline, vendored stand-in for `serde_json`: renders and parses the
//! [`serde::Value`] model used by the vendored serde facade. Output
//! formatting follows serde_json's conventions (two-space pretty
//! indentation, floats always printed with a decimal point) so committed
//! artefacts stay diffable.

pub use serde::Error;

/// Re-export of the document model (`serde_json::Value` in real serde).
pub use serde::Value;

use serde::{Deserialize, Serialize};

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Never fails for the value model in this workspace; the `Result` keeps
/// the real serde_json signature.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (two-space indentation).
///
/// # Errors
///
/// Never fails for the value model in this workspace.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// On malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    T::from_value(&value)
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        // JSON has no Inf/NaN; serde_json errors here, we emit null.
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e16 {
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one complete JSON document (trailing whitespace allowed).
///
/// # Errors
///
/// On malformed input or trailing garbage.
pub fn parse_value(text: &str) -> Result<Value, Error> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_at(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error(format!("trailing characters at byte {pos}")));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_at(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error("unexpected end of input".into())),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_at(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error(format!("expected `,` or `]` at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(Error(format!("expected `:` at byte {pos}")));
                }
                *pos += 1;
                let value = parse_at(bytes, pos)?;
                entries.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(entries));
                    }
                    _ => return Err(Error(format!("expected `,` or `}}` at byte {pos}"))),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Value,
) -> Result<Value, Error> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(Error(format!("invalid literal at byte {pos}")))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(Error(format!("expected string at byte {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error("unterminated string".into())),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error("truncated \\u escape".into()))?;
                        let code =
                            u32::from_str_radix(std::str::from_utf8(hex).map_err(Error::msg)?, 16)
                                .map_err(Error::msg)?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error("invalid \\u escape".into()))?,
                        );
                        *pos += 4;
                    }
                    other => return Err(Error(format!("bad escape {other:?}"))),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance over one UTF-8 character.
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && bytes[*pos] & 0xC0 == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&bytes[start..*pos]).map_err(Error::msg)?);
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(Error::msg)?;
    if text.is_empty() || text == "-" {
        return Err(Error(format!("expected number at byte {start}")));
    }
    if is_float {
        text.parse::<f64>().map(Value::Float).map_err(Error::msg)
    } else {
        text.parse::<i128>().map(Value::Int).map_err(Error::msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_documents() {
        let text = r#"{"a": [1, 2.5, null, true], "b": {"c": "x\ny"}, "d": -7}"#;
        let value = parse_value(text).unwrap();
        assert_eq!(value.get("d"), Some(&Value::Int(-7)));
        let compact = to_string(&value).unwrap();
        assert_eq!(parse_value(&compact).unwrap(), value);
        let pretty = to_string_pretty(&value).unwrap();
        assert_eq!(parse_value(&pretty).unwrap(), value);
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(to_string(&250.0f64).unwrap(), "250.0");
        assert_eq!(to_string(&0.25f64).unwrap(), "0.25");
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        assert!(parse_value("{\"a\": 1} x").is_err());
        assert!(parse_value("{\"a\": ").is_err());
        assert!(parse_value("{\"a\"").is_err());
    }

    #[test]
    fn typed_round_trip() {
        let pairs: Vec<(String, Option<u64>)> = vec![("x".into(), Some(3)), ("y".into(), None)];
        let json = to_string_pretty(&pairs).unwrap();
        let back: Vec<(String, Option<u64>)> = from_str(&json).unwrap();
        assert_eq!(back, pairs);
    }
}
