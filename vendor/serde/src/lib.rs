//! Offline, vendored stand-in for the `serde` crate.
//!
//! The build container has no network access, so the workspace vendors a
//! minimal serde-compatible facade: the [`Serialize`] and [`Deserialize`]
//! traits, derive macros re-exported from `serde_derive`, and a JSON-like
//! [`Value`] model that `serde_json` renders and parses. The derive output
//! follows serde's external-tagging conventions (unit variants as strings,
//! newtype variants as single-key objects) so artefacts written by the real
//! serde — like the committed `results/*.json` files — parse unchanged.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet};

/// A parsed or to-be-serialized JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer written without a decimal point.
    Int(i128),
    /// A number with a decimal point or exponent.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved for stable output.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// A short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// A (de)serialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Builds an error from any displayable message.
    pub fn msg(message: impl std::fmt::Display) -> Self {
        Error(message.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// The value tree representing `self`.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// When the value's shape does not match `Self`.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Derive support: reads field `key` from an object, treating a missing
/// key as `null` (so `Option` fields default to `None`, as with serde).
///
/// # Errors
///
/// When the field is present but has the wrong shape, or is required and
/// missing.
pub fn de_field<T: Deserialize>(value: &Value, key: &str) -> Result<T, Error> {
    match value.get(key) {
        Some(v) => T::from_value(v).map_err(|e| Error(format!("field `{key}`: {e}"))),
        None => T::from_value(&Value::Null).map_err(|_| Error(format!("missing field `{key}`"))),
    }
}

/// Derive support: the `index`-th element of an array value.
///
/// # Errors
///
/// When `value` is not an array or has too few elements.
pub fn de_index<T: Deserialize>(value: &Value, index: usize) -> Result<T, Error> {
    match value {
        Value::Array(items) => items
            .get(index)
            .ok_or_else(|| Error(format!("missing tuple element {index}")))
            .and_then(T::from_value),
        other => Err(Error(format!("expected array, found {}", other.kind()))),
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| Error(format!("{n} out of range for {}", stringify!($t)))),
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    other => Err(Error(format!(
                        "expected integer, found {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Serialize for i128 {
    fn to_value(&self) -> Value {
        Value::Int(*self)
    }
}

impl Deserialize for i128 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Int(n) => Ok(*n),
            other => Err(Error(format!("expected integer, found {}", other.kind()))),
        }
    }
}

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        i128::try_from(*self).map_or_else(|_| Value::Float(*self as f64), Value::Int)
    }
}

impl Deserialize for u128 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Int(n) => u128::try_from(*n).map_err(|_| Error("negative u128".into())),
            other => Err(Error(format!("expected integer, found {}", other.kind()))),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Float(f) => Ok(*f),
            Value::Int(n) => Ok(*n as f64),
            other => Err(Error(format!("expected number, found {}", other.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_owned())
    }
}

impl Deserialize for &'static str {
    fn from_value(value: &Value) -> Result<Self, Error> {
        // Deserializing into a static string requires owning the bytes
        // forever; module names are a small closed set, so the leak is
        // bounded in practice.
        String::from_value(value).map(|s| &*Box::leak(s.into_boxed_str()))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = String::from_value(value)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error(format!("expected single character, found {s:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(inner) => inner.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error(format!("expected array, found {}", other.kind()))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(value)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error(format!("expected array of {N} elements, found {len}")))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                Ok(($(de_index::<$name>(value, $idx)?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Maps serialize as arrays of `[key, value]` pairs so that non-string
/// keys round-trip; objects with string keys also parse back.
impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items
                .iter()
                .map(|pair| Ok((de_index::<K>(pair, 0)?, de_index::<V>(pair, 1)?)))
                .collect(),
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_value(&Value::Str(k.clone()))?, V::from_value(v)?)))
                .collect(),
            other => Err(Error(format!("expected map, found {}", other.kind()))),
        }
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Vec::<T>::from_value(value).map(|items| items.into_iter().collect())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_treats_null_and_missing_as_none() {
        let v = Value::Object(vec![("a".into(), Value::Null)]);
        assert_eq!(de_field::<Option<u64>>(&v, "a").unwrap(), None);
        assert_eq!(de_field::<Option<u64>>(&v, "b").unwrap(), None);
        assert!(de_field::<u64>(&v, "b").is_err());
    }

    #[test]
    fn arrays_round_trip() {
        let a: [u8; 3] = [1, 2, 3];
        let v = a.to_value();
        assert_eq!(<[u8; 3]>::from_value(&v).unwrap(), a);
        assert!(<[u8; 4]>::from_value(&v).is_err());
    }

    #[test]
    fn map_round_trips_as_pairs() {
        let mut m = BTreeMap::new();
        m.insert(3i64, vec![1u8, 2]);
        let v = m.to_value();
        assert_eq!(BTreeMap::<i64, Vec<u8>>::from_value(&v).unwrap(), m);
    }

    #[test]
    fn integers_check_range() {
        let v = Value::Int(300);
        assert!(u8::from_value(&v).is_err());
        assert_eq!(u16::from_value(&v).unwrap(), 300);
    }
}
