//! Offline, vendored stand-in for `proptest`: the strategy combinators
//! and macros this workspace's property tests use, running each test
//! over a deterministic stream of generated inputs (seeded from the test
//! name, so failures reproduce run-to-run). No shrinking: a failing case
//! panics with the generated inputs printed.

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; the simulations behind these
        // tests make that minutes of wall clock, so default lower and
        // let hot spots opt up via proptest_config.
        ProptestConfig { cases: 64 }
    }
}

/// The generator driving strategies (xoshiro256++, deterministic).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// A generator seeded from arbitrary bytes (e.g. the test name).
    pub fn from_name(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 raw bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A recipe for generating test inputs.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values (proptest's `prop_map`).
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { strategy: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.strategy.generate(rng))
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty => $wide:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add(rng.below(span) as $wide) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as $wide).wrapping_add(rng.below(span + 1) as $wide) as $t
            }
        }
    )*};
}

impl_int_strategy!(
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64
);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        start + rng.unit_f64() * (end - start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Debug + Sized {
    /// Draws one unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The full-domain strategy for an [`Arbitrary`] type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (`proptest::collection::{vec, btree_set}`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// A `Vec` of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `BTreeSet` of `size` distinct elements drawn from `element`.
    /// Retries duplicates, so the element domain must comfortably exceed
    /// the requested size.
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord + std::fmt::Debug,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.clone().generate(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0;
            while set.len() < target && attempts < target * 100 + 100 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed; the case is discarded, not counted.
    Reject,
    /// `prop_assert!`-family failure: the property is violated.
    Fail(String),
}

/// Drives one property test: generates inputs until `config.cases`
/// cases ran (rejections excluded, up to a cap), panicking on the first
/// failure with the inputs that produced it.
pub fn run_proptest<S: Strategy>(
    config: &ProptestConfig,
    name: &str,
    strategy: &S,
    test: impl Fn(S::Value) -> Result<(), TestCaseError>,
) {
    let mut rng = TestRng::from_name(name);
    let mut passed = 0u32;
    let mut attempts = 0u32;
    let max_attempts = config.cases.saturating_mul(20).max(100);
    while passed < config.cases && attempts < max_attempts {
        attempts += 1;
        let value = strategy.generate(&mut rng);
        let repr = format!("{value:?}");
        match test(value) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {}
            Err(TestCaseError::Fail(message)) => {
                panic!(
                    "property `{name}` failed after {passed} passing case(s): \
                     {message}\n  inputs: {repr}"
                );
            }
        }
    }
    assert!(
        passed > 0,
        "property `{name}`: every generated case was rejected by prop_assume!"
    );
}

/// The strategies this workspace imports from `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Asserts inside a property test; fails the case instead of panicking
/// so the harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    }};
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} != {}` (both: {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Discards the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Builds the strategy tuple for a `proptest!` parameter list.
#[doc(hidden)]
#[macro_export]
macro_rules! __prop_strategies {
    (@acc [$($acc:tt)*]) => { ($($acc)*) };
    (@acc [$($acc:tt)*] $name:ident in $strat:expr) => {
        ($($acc)* $strat,)
    };
    (@acc [$($acc:tt)*] $name:ident in $strat:expr, $($rest:tt)*) => {
        $crate::__prop_strategies!(@acc [$($acc)* $strat,] $($rest)*)
    };
    (@acc [$($acc:tt)*] $name:ident : $ty:ty) => {
        ($($acc)* $crate::any::<$ty>(),)
    };
    (@acc [$($acc:tt)*] $name:ident : $ty:ty, $($rest:tt)*) => {
        $crate::__prop_strategies!(@acc [$($acc)* $crate::any::<$ty>(),] $($rest)*)
    };
    ($($params:tt)*) => { $crate::__prop_strategies!(@acc [] $($params)*) };
}

/// Builds the closure binding pattern for a `proptest!` parameter list.
#[doc(hidden)]
#[macro_export]
macro_rules! __prop_patterns {
    (@acc [$($acc:tt)*]) => { ($($acc)*) };
    (@acc [$($acc:tt)*] $name:ident in $strat:expr) => { ($($acc)* $name,) };
    (@acc [$($acc:tt)*] $name:ident in $strat:expr, $($rest:tt)*) => {
        $crate::__prop_patterns!(@acc [$($acc)* $name,] $($rest)*)
    };
    (@acc [$($acc:tt)*] $name:ident : $ty:ty) => { ($($acc)* $name,) };
    (@acc [$($acc:tt)*] $name:ident : $ty:ty, $($rest:tt)*) => {
        $crate::__prop_patterns!(@acc [$($acc)* $name,] $($rest)*)
    };
    ($($params:tt)*) => { $crate::__prop_patterns!(@acc [] $($params)*) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
        $(#[$meta:meta])*
        fn $test_name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $test_name() {
            let config = $cfg;
            let strategy = $crate::__prop_strategies!($($params)*);
            $crate::run_proptest(
                &config,
                stringify!($test_name),
                &strategy,
                |$crate::__prop_patterns!($($params)*)| {
                    $body
                    Ok(())
                },
            );
        }
        $crate::__proptest_body! { @cfg($cfg) $($rest)* }
    };
}

/// The `proptest!` block macro: wraps each contained `#[test] fn` in a
/// deterministic generate-and-check loop.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn named_rng_is_deterministic() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(v in 10i64..20, w in 0u8..=4, f in 0.0f64..=1.0) {
            prop_assert!((10..20).contains(&v));
            prop_assert!(w <= 4);
            prop_assert!((0.0..=1.0).contains(&f));
        }

        #[test]
        fn typed_params_work(x: u16, flag: bool) {
            prop_assume!(flag); // exercises the rejection path
            prop_assert_eq!(u32::from(x) * 2, u32::from(x) + u32::from(x));
        }

        #[test]
        fn mapped_tuples_work(pair in (1i64..5, 1i64..5).prop_map(|(a, b)| a * b)) {
            prop_assert!((1..25).contains(&pair));
        }

        #[test]
        fn collections_respect_sizes(
            items in crate::collection::vec(0u64..100, 1..30),
            set in crate::collection::btree_set(-50i64..50, 2..10),
        ) {
            prop_assert!(!items.is_empty() && items.len() < 30);
            prop_assert!(set.len() >= 2 && set.len() < 10);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_cases_apply(_v in 0u8..10) {
            prop_assert!(true);
        }
    }
}
