//! Offline, vendored stand-in for `crossbeam`: the multi-producer,
//! multi-consumer unbounded channel surface the campaign fan-out uses,
//! implemented over `std` mutex + condvar. Semantics match crossbeam's:
//! cloneable senders and receivers, `recv` blocks until a message
//! arrives or every sender is gone.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
    }

    /// The sending half; cloneable across worker threads.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half; cloneable across worker threads.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// All senders disconnected and the queue is drained.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// All receivers disconnected; carries the rejected message.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

    /// `try_recv` outcomes.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Nothing queued right now, but senders remain.
        Empty,
        /// Nothing queued and every sender is gone.
        Disconnected,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues a message; never blocks.
        ///
        /// # Errors
        ///
        /// Unbounded queues with live receivers always accept; kept for
        /// crossbeam signature compatibility.
        pub fn send(&self, message: T) -> Result<(), SendError<T>> {
            let mut queue = self.inner.queue.lock().expect("channel poisoned");
            queue.push_back(message);
            drop(queue);
            self.inner.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or the channel disconnects.
        ///
        /// # Errors
        ///
        /// [`RecvError`] when every sender is dropped and the queue is
        /// empty.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.inner.queue.lock().expect("channel poisoned");
            loop {
                if let Some(message) = queue.pop_front() {
                    return Ok(message);
                }
                if self.inner.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = self.inner.ready.wait(queue).expect("channel poisoned");
            }
        }

        /// Dequeues without blocking.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] or [`TryRecvError::Disconnected`].
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.inner.queue.lock().expect("channel poisoned");
            if let Some(message) = queue.pop_front() {
                return Ok(message);
            }
            if self.inner.senders.load(Ordering::SeqCst) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// A blocking iterator that ends when the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    /// Blocking iterator over received messages.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn fan_out_fan_in() {
        let (tx, rx) = channel::unbounded::<usize>();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<usize> = workers
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn recv_unblocks_on_disconnect() {
        let (tx, rx) = channel::unbounded::<u8>();
        let handle = std::thread::spawn(move || rx.recv());
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(tx);
        assert!(handle.join().unwrap().is_err());
    }

    #[test]
    fn iterator_drains_until_disconnect() {
        let (tx, rx) = channel::unbounded::<u8>();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.iter().collect::<Vec<_>>(), vec![1, 2]);
    }
}
