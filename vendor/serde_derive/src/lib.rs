//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored serde facade. The container builds offline, so `syn`/`quote`
//! are unavailable; instead the item is parsed directly from its token
//! stream. Supported shapes cover everything this workspace derives:
//!
//! * structs with named fields;
//! * tuple structs (newtype and general);
//! * enums with unit, newtype, tuple and struct variants (external
//!   tagging, matching real serde's JSON representation).
//!
//! `#[serde(...)]` attributes are not supported and none exist in-tree.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (the vendored facade's trait).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_serialize(&item)
        .parse()
        .expect("generated impl parses")
}

/// Derives `serde::Deserialize` (the vendored facade's trait).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_deserialize(&item)
        .parse()
        .expect("generated impl parses")
}

enum Item {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attrs_and_vis(&tokens, &mut pos);
    let keyword = expect_ident(&tokens, &mut pos);
    let name = expect_ident(&tokens, &mut pos);
    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive(Serialize/Deserialize): generic types are not supported ({name})");
    }
    match keyword.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                }
            }
            _ => Item::UnitStruct { name },
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("derive: malformed enum {name}: {other:?}"),
        },
        other => panic!("derive: expected struct or enum, found `{other}`"),
    }
}

/// Advances past outer attributes (`#[...]`) and a visibility modifier
/// (`pub`, `pub(crate)`, ...).
fn skip_attrs_and_vis(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 2; // `#` and the bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *pos += 1;
                if matches!(
                    tokens.get(*pos),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *pos += 1; // `(crate)` etc.
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(id)) => {
            *pos += 1;
            id.to_string()
        }
        other => panic!("derive: expected identifier, found {other:?}"),
    }
}

/// Field names of a `{ ... }` body: skip attributes and visibility, take
/// the identifier before each top-level `:`, then skip the type up to the
/// next top-level `,`.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        fields.push(expect_ident(&tokens, &mut pos));
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => panic!("derive: expected `:` after field name, found {other:?}"),
        }
        skip_until_comma(&tokens, &mut pos);
    }
    fields
}

/// Skips tokens until a top-level `,` (consumed) or the end. Angle
/// brackets in types contain no top-level commas because generic
/// argument lists sit between `<` and `>`; track their depth.
fn skip_until_comma(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(token) = tokens.get(*pos) {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    *pos += 1;
                    return;
                }
                _ => {}
            }
        }
        *pos += 1;
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut saw_tail = false;
    for token in &tokens {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    saw_tail = false;
                    count += 1;
                    continue;
                }
                _ => {}
            }
        }
        saw_tail = true;
    }
    if !saw_tail {
        count -= 1; // trailing comma
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut pos);
        let shape = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                VariantShape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantShape::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the separator.
        skip_until_comma(&tokens, &mut pos);
        variants.push(Variant { name, shape });
    }
    variants
}

fn generate_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            impl_serialize(
                name,
                &format!("::serde::Value::Object(vec![{}])", entries.join(", ")),
            )
        }
        Item::TupleStruct { name, arity: 1 } => {
            impl_serialize(name, "::serde::Serialize::to_value(&self.0)")
        }
        Item::TupleStruct { name, arity } => {
            let entries: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            impl_serialize(
                name,
                &format!("::serde::Value::Array(vec![{}])", entries.join(", ")),
            )
        }
        Item::UnitStruct { name } => impl_serialize(name, "::serde::Value::Null"),
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "{name}::{vname} => \
                             ::serde::Value::Str(::std::string::String::from(\"{vname}\"))"
                        ),
                        VariantShape::Tuple(1) => format!(
                            "{name}::{vname}(v0) => ::serde::Value::Object(vec![(\
                             ::std::string::String::from(\"{vname}\"), \
                             ::serde::Serialize::to_value(v0))])"
                        ),
                        VariantShape::Tuple(n) => {
                            let binders: Vec<String> = (0..*n).map(|i| format!("v{i}")).collect();
                            let values: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vname}({binds}) => ::serde::Value::Object(vec![(\
                                 ::std::string::String::from(\"{vname}\"), \
                                 ::serde::Value::Array(vec![{values}]))])",
                                binds = binders.join(", "),
                                values = values.join(", "),
                            )
                        }
                        VariantShape::Struct(fields) => {
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(vec![(\
                                 ::std::string::String::from(\"{vname}\"), \
                                 ::serde::Value::Object(vec![{entries}]))])",
                                binds = fields.join(", "),
                                entries = entries.join(", "),
                            )
                        }
                    }
                })
                .collect();
            impl_serialize(name, &format!("match self {{ {} }}", arms.join(", ")))
        }
    }
}

fn impl_serialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn generate_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::de_field(value, \"{f}\")?"))
                .collect();
            impl_deserialize(name, &format!("Ok({name} {{ {} }})", inits.join(", ")))
        }
        Item::TupleStruct { name, arity: 1 } => impl_deserialize(
            name,
            &format!("Ok({name}(::serde::Deserialize::from_value(value)?))"),
        ),
        Item::TupleStruct { name, arity } => {
            let inits: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::de_index(value, {i})?"))
                .collect();
            impl_deserialize(name, &format!("Ok({name}({}))", inits.join(", ")))
        }
        Item::UnitStruct { name } => impl_deserialize(name, &format!("Ok({name})")),
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| format!("\"{vname}\" => Ok({name}::{vname})", vname = v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        VariantShape::Unit => None,
                        VariantShape::Tuple(1) => Some(format!(
                            "\"{vname}\" => Ok({name}::{vname}(\
                             ::serde::Deserialize::from_value(inner)?))"
                        )),
                        VariantShape::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::de_index(inner, {i})?"))
                                .collect();
                            Some(format!(
                                "\"{vname}\" => Ok({name}::{vname}({}))",
                                inits.join(", ")
                            ))
                        }
                        VariantShape::Struct(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| format!("{f}: ::serde::de_field(inner, \"{f}\")?"))
                                .collect();
                            Some(format!(
                                "\"{vname}\" => Ok({name}::{vname} {{ {} }})",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            let body = format!(
                "match value {{\n\
                     ::serde::Value::Str(tag) => match tag.as_str() {{\n\
                         {unit_arms},\n\
                         other => Err(::serde::Error::msg(format!(\n\
                             \"unknown variant `{{other}}` of {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                         let (tag, inner) = &entries[0];\n\
                         match tag.as_str() {{\n\
                             {tagged_arms},\n\
                             other => Err(::serde::Error::msg(format!(\n\
                                 \"unknown variant `{{other}}` of {name}\"))),\n\
                         }}\n\
                     }}\n\
                     other => Err(::serde::Error::msg(format!(\n\
                         \"expected variant of {name}, found {{}}\", other.kind()))),\n\
                 }}",
                unit_arms = if unit_arms.is_empty() {
                    "_ if false => unreachable!()".to_owned()
                } else {
                    unit_arms.join(",\n")
                },
                tagged_arms = if tagged_arms.is_empty() {
                    "_ if false => unreachable!()".to_owned()
                } else {
                    tagged_arms.join(",\n")
                },
            );
            impl_deserialize(name, &body)
        }
    }
}

fn impl_deserialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
