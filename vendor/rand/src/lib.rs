//! Offline, vendored stand-in for the `rand` crate: the `Rng` /
//! `SeedableRng` trait surface this workspace uses, backed by a
//! deterministic xoshiro256++ generator. Streams differ from the real
//! `StdRng` (which is ChaCha-based); everything downstream treats seeds
//! as opaque reproducibility handles, so only determinism matters.

use std::ops::{Range, RangeInclusive};

/// Types that can be constructed from seed material.
pub trait SeedableRng: Sized {
    /// A generator deterministically derived from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The user-facing generator trait: raw words plus range sampling.
pub trait Rng {
    /// The next 64 raw bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range` (exclusive or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// A uniform sample of a full-width type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

/// Ranges that can produce uniform samples of `T`.
pub trait SampleRange<T> {
    /// Draws one sample; panics on an empty range, like the real rand.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

/// Full-width uniform sampling (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one sample.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

/// Uniform `u64` below `bound` by widening multiply (Lemire reduction,
/// without the rejection loop: the bias is < 2⁻⁶⁴·bound, irrelevant for
/// campaign sampling and keeps the stream deterministic and simple).
fn below<R: Rng>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample an empty range");
    ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add(below(rng, span) as $wide) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as $wide).wrapping_add(below(rng, span + 1) as $wide) as $t
            }
        }
    )*};
}

impl_int_range!(
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64
);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        start + unit * (end - start)
    }
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Deterministic generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A xoshiro256++ generator (stands in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed with splitmix64, as rand_core does.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..2_000 {
            let v = rng.gen_range(-40i64..=40);
            assert!((-40..=40).contains(&v));
            let u = rng.gen_range(0usize..417);
            assert!(u < 417);
            let f = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_covers_endpoints() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..3)] = true;
        }
        assert_eq!(seen, [true; 3]);
        let mut hit_max = false;
        for _ in 0..200 {
            if rng.gen_range(0u8..=2) == 2 {
                hit_max = true;
            }
        }
        assert!(hit_max);
    }
}
