//! Physical constants of the simulated arresting gear.
//!
//! The values are plausible for a BAK-12-class rotary-friction system and
//! are calibrated so that every fault-free run over the paper's test-case
//! envelope satisfies the failure constraints with margin (the paper
//! requires that fault-free runs trigger no detection and no failure),
//! while corrupted pressure commands can violate them.

/// Integration step of the environment simulator, seconds (1 ms — the
/// target's base tick).
pub const DT_S: f64 = 0.001;

/// Standard gravity, m/s².
pub const G: f64 = 9.806_65;

/// Lateral offset of each tape drum from the runway centreline, metres.
/// The cable is strapped across the runway between the two drums.
pub const DRUM_OFFSET_M: f64 = 30.0;

/// Tape payout per rotation-sensor pulse, metres. The tooth wheel on the
/// master drum generates 20 pulses per metre of tape.
pub const METERS_PER_PULSE: f64 = 0.05;

/// Brake tension produced per bar of applied valve pressure, newtons.
/// `T = K_T · P` per drum.
pub const TENSION_N_PER_BAR: f64 = 1_000.0;

/// Hydraulic first-order time constant, seconds: the valve pressure
/// follows the commanded pressure as `dP/dt = (cmd − P)/τ`.
pub const VALVE_TAU_S: f64 = 0.15;

/// Physical ceiling of the hydraulic system, bar.
pub const PRESSURE_MAX_BAR: f64 = 200.0;

/// Software operational ceiling for commanded pressure, bar. CALC never
/// commands more than this; the 50-bar headroom to
/// [`PRESSURE_MAX_BAR`] is what corrupted commands can exploit.
pub const PRESSURE_CEILING_BAR: f64 = 150.0;

/// Rolling resistance of the engaged aircraft, newtons (tyres, hook
/// drag); small but keeps the no-brake trajectory realistic.
pub const ROLLING_RESIST_N: f64 = 2_000.0;

/// Software pressure unit: signal values are 16-bit in units of 0.01 bar
/// (`20000` = 200 bar).
pub const PRESSURE_UNITS_PER_BAR: f64 = 100.0;

/// Length of usable runway from the engagement point, metres. Stopping
/// beyond this is a failure.
pub const RUNWAY_M: f64 = 335.0;

/// Retardation limit, in g (paper: `r < 2.8 g`).
pub const RETARDATION_LIMIT_G: f64 = 2.8;

/// The controller's target stopping distance, metres; the ~55 m margin
/// to [`RUNWAY_M`] absorbs model and estimation error.
pub const TARGET_STOP_M: f64 = 280.0;

/// Pre-tension pressure applied before the first checkpoint, bar (takes
/// up cable slack without jerking the airframe).
pub const PRETENSION_BAR: f64 = 10.0;

/// Observation window of one experiment run, milliseconds (paper
/// Section 3.4: 40 seconds).
pub const OBSERVATION_MS: u64 = 40_000;

/// Injection period of the campaign, milliseconds (paper Section 3.4).
pub const INJECTION_PERIOD_MS: u64 = 20;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pressure_units_fit_sixteen_bits() {
        let max_units = PRESSURE_MAX_BAR * PRESSURE_UNITS_PER_BAR;
        assert!(max_units <= f64::from(u16::MAX));
    }

    #[test]
    fn pulse_count_fits_sixteen_bits() {
        // Maximum payout: aircraft at the runway end.
        let x: f64 = RUNWAY_M;
        let payout = (x * x + DRUM_OFFSET_M * DRUM_OFFSET_M).sqrt() - DRUM_OFFSET_M;
        let pulses = payout / METERS_PER_PULSE;
        assert!(pulses <= f64::from(u16::MAX));
    }

    #[test]
    fn worst_case_is_stoppable_within_target() {
        // Heaviest, fastest case: the required average force over the
        // target distance must be achievable below the software ceiling.
        let m = 20_000.0;
        let v: f64 = 70.0;
        let needed_force = m * v * v / (2.0 * TARGET_STOP_M);
        // cos(theta) at mid-runway is ≥ 0.95.
        let available = 2.0 * TENSION_N_PER_BAR * PRESSURE_CEILING_BAR * 0.95;
        assert!(
            available > needed_force * 1.1,
            "available {available} vs needed {needed_force}"
        );
    }

    #[test]
    fn nominal_retardation_far_below_limit() {
        let v: f64 = 70.0;
        let a = v * v / (2.0 * TARGET_STOP_M);
        assert!(a / G < RETARDATION_LIMIT_G / 2.0);
    }
}
