//! The pessimistic failure classification of paper Section 3.3.
//!
//! A run **fails** if any of the following constraints is violated:
//!
//! 1. retardation: `r < 2.8 g`;
//! 2. retardation force: `Fret < Fmax(m, v)`, with `Fmax` defined for a
//!    grid of aircraft masses and engagement velocities and interpolated /
//!    extrapolated elsewhere (the paper takes the grid from
//!    MIL-A-38202C; that table is not public, so we use a plausible
//!    monotone surface with the same role — see DESIGN.md §2.3);
//! 3. stopping distance: `d < 335 m` (an aircraft still rolling at the
//!    end of the observation window is pessimistically an overrun).

use serde::{Deserialize, Serialize};

use crate::plant::PlantState;
use crate::spec;
use crate::testcase::TestCase;

/// The `Fmax(m, v)` limit surface: a bilinear interpolation over a
/// mass × velocity grid, linearly extrapolated outside it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FmaxTable {
    masses_kg: Vec<f64>,
    velocities_ms: Vec<f64>,
    /// `limits[i][j]` = Fmax at `masses_kg[i]`, `velocities_ms[j]`, N.
    limits_n: Vec<Vec<f64>>,
}

impl FmaxTable {
    /// Builds a table; panics on non-grid-shaped input (programmer
    /// error — tables are compiled in).
    ///
    /// # Panics
    ///
    /// If axes have fewer than two points or `limits` is not
    /// `masses.len() × velocities.len()`.
    pub fn new(masses_kg: Vec<f64>, velocities_ms: Vec<f64>, limits_n: Vec<Vec<f64>>) -> Self {
        assert!(masses_kg.len() >= 2 && velocities_ms.len() >= 2);
        assert_eq!(limits_n.len(), masses_kg.len());
        for row in &limits_n {
            assert_eq!(row.len(), velocities_ms.len());
        }
        FmaxTable {
            masses_kg,
            velocities_ms,
            limits_n,
        }
    }

    /// The specification-style table used by the reproduction: a 5 × 5
    /// grid over the paper's test envelope. Each entry is
    /// `1.8 × m·v²/(2·TARGET_STOP_M) + 30 kN` — 1.8× the force a nominal
    /// arrestment needs, plus a structural floor — giving fault-free runs
    /// a comfortable margin while full-pressure faults exceed it.
    pub fn specification() -> Self {
        let masses: Vec<f64> = vec![8_000.0, 11_000.0, 14_000.0, 17_000.0, 20_000.0];
        let velocities: Vec<f64> = vec![40.0, 47.5, 55.0, 62.5, 70.0];
        let limits = masses
            .iter()
            .map(|&m| {
                velocities
                    .iter()
                    .map(|&v| 1.8 * m * v * v / (2.0 * spec::TARGET_STOP_M) + 30_000.0)
                    .collect()
            })
            .collect();
        FmaxTable::new(masses, velocities, limits)
    }

    /// `Fmax(m, v)` by bilinear interpolation, linearly extrapolated
    /// outside the grid.
    pub fn limit_n(&self, mass_kg: f64, velocity_ms: f64) -> f64 {
        let (i, tm) = segment(&self.masses_kg, mass_kg);
        let (j, tv) = segment(&self.velocities_ms, velocity_ms);
        let f = |a: usize, b: usize| self.limits_n[a][b];
        let lo = f(i, j) + (f(i, j + 1) - f(i, j)) * tv;
        let hi = f(i + 1, j) + (f(i + 1, j + 1) - f(i + 1, j)) * tv;
        lo + (hi - lo) * tm
    }
}

impl Default for FmaxTable {
    fn default() -> Self {
        FmaxTable::specification()
    }
}

/// Finds the segment index and (possibly out-of-\[0,1\]) interpolation
/// parameter for `x` along the sorted axis — out-of-range parameters
/// produce linear extrapolation.
fn segment(axis: &[f64], x: f64) -> (usize, f64) {
    let last = axis.len() - 2;
    let mut i = 0;
    while i < last && x > axis[i + 1] {
        i += 1;
    }
    let t = (x - axis[i]) / (axis[i + 1] - axis[i]);
    (i, t)
}

/// The three constraints with their limits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Constraints {
    /// Retardation limit in g (paper: 2.8).
    pub retardation_limit_g: f64,
    /// Runway length in metres (paper: 335).
    pub runway_m: f64,
    /// The `Fmax` surface.
    pub fmax: FmaxTable,
}

impl Default for Constraints {
    fn default() -> Self {
        Constraints {
            retardation_limit_g: spec::RETARDATION_LIMIT_G,
            runway_m: spec::RUNWAY_M,
            fmax: FmaxTable::specification(),
        }
    }
}

/// Which constraint a failed run violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FailureCause {
    /// Constraint 1: retardation reached or exceeded the g limit.
    Retardation,
    /// Constraint 2: cable force reached or exceeded `Fmax(m, v)`.
    Force,
    /// Constraint 3: the aircraft passed the runway end, or was still
    /// rolling when the observation window closed.
    Overrun,
}

/// The classification of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Verdict {
    /// Violated constraints (empty = the arrestment succeeded).
    pub causes: Vec<FailureCause>,
    /// Peak retardation observed, g.
    pub peak_retardation_g: f64,
    /// Peak cable force observed, N.
    pub peak_force_n: f64,
    /// Final distance, m.
    pub final_distance_m: f64,
    /// Whether the aircraft came to a stop within the window.
    pub arrested: bool,
}

impl Verdict {
    /// Whether the run counts as a failure.
    pub fn failed(&self) -> bool {
        !self.causes.is_empty()
    }
}

/// Accumulates plant states over a run and classifies it at the end.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FailureMonitor {
    peak_retardation_ms2: f64,
    peak_force_n: f64,
    max_distance_m: f64,
    arrested: bool,
}

impl FailureMonitor {
    /// A fresh monitor.
    pub fn new() -> Self {
        FailureMonitor::default()
    }

    /// Feeds one plant state (call once per simulation step).
    pub fn observe(&mut self, state: &PlantState) {
        if state.retardation_ms2 > self.peak_retardation_ms2 {
            self.peak_retardation_ms2 = state.retardation_ms2;
        }
        if state.cable_force_n > self.peak_force_n {
            self.peak_force_n = state.cable_force_n;
        }
        if state.distance_m > self.max_distance_m {
            self.max_distance_m = state.distance_m;
        }
        self.arrested |= state.arrested;
    }

    /// Peak retardation accumulated so far, m/s².
    pub const fn peak_retardation_ms2(&self) -> f64 {
        self.peak_retardation_ms2
    }

    /// Peak cable force accumulated so far, N.
    pub const fn peak_force_n(&self) -> f64 {
        self.peak_force_n
    }

    /// Greatest distance travelled so far, m.
    pub const fn max_distance_m(&self) -> f64 {
        self.max_distance_m
    }

    /// Whether an arrested plant state has been observed.
    pub const fn arrested(&self) -> bool {
        self.arrested
    }

    /// Classifies the run against the constraints for the given case.
    pub fn verdict(&self, constraints: &Constraints, case: TestCase) -> Verdict {
        let mut causes = Vec::new();
        let peak_g = self.peak_retardation_ms2 / spec::G;
        if peak_g >= constraints.retardation_limit_g {
            causes.push(FailureCause::Retardation);
        }
        let fmax = constraints.fmax.limit_n(case.mass_kg, case.velocity_ms);
        if self.peak_force_n >= fmax {
            causes.push(FailureCause::Force);
        }
        if self.max_distance_m >= constraints.runway_m || !self.arrested {
            causes.push(FailureCause::Overrun);
        }
        Verdict {
            causes,
            peak_retardation_g: peak_g,
            peak_force_n: self.peak_force_n,
            final_distance_m: self.max_distance_m,
            arrested: self.arrested,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(retardation_ms2: f64, force_n: f64, distance_m: f64, arrested: bool) -> PlantState {
        PlantState {
            time_ms: 0,
            distance_m,
            velocity_ms: if arrested { 0.0 } else { 10.0 },
            retardation_ms2,
            cable_force_n: force_n,
            pressure_master_bar: 0.0,
            pressure_slave_bar: 0.0,
            arrested,
        }
    }

    #[test]
    fn fmax_at_grid_points_is_exact() {
        let table = FmaxTable::specification();
        let expected = 1.8 * 8_000.0 * 40.0 * 40.0 / (2.0 * spec::TARGET_STOP_M) + 30_000.0;
        assert!((table.limit_n(8_000.0, 40.0) - expected).abs() < 1e-6);
    }

    #[test]
    fn fmax_interpolates_between_points() {
        let table = FmaxTable::specification();
        let mid = table.limit_n(9_500.0, 43.75);
        let corners = [table.limit_n(8_000.0, 40.0), table.limit_n(11_000.0, 47.5)];
        assert!(mid > corners[0].min(corners[1]));
        assert!(mid < corners[0].max(corners[1]));
    }

    #[test]
    fn fmax_extrapolates_outside_grid() {
        let table = FmaxTable::specification();
        // Beyond the top corner the surface keeps growing.
        assert!(table.limit_n(25_000.0, 80.0) > table.limit_n(20_000.0, 70.0));
        // Below the bottom corner it keeps shrinking.
        assert!(table.limit_n(5_000.0, 30.0) < table.limit_n(8_000.0, 40.0));
    }

    #[test]
    fn fmax_is_monotone_over_the_envelope() {
        let table = FmaxTable::specification();
        let mut prev = 0.0;
        for k in 0..=24 {
            let m = 8_000.0 + 500.0 * f64::from(k);
            let v = 40.0 + 1.25 * f64::from(k);
            let f = table.limit_n(m, v);
            assert!(f > prev);
            prev = f;
        }
    }

    #[test]
    fn clean_run_passes() {
        let mut mon = FailureMonitor::new();
        mon.observe(&state(8.0, 100_000.0, 150.0, false));
        mon.observe(&state(0.0, 0.0, 290.0, true));
        let verdict = mon.verdict(&Constraints::default(), TestCase::new(14_000.0, 55.0));
        assert!(!verdict.failed(), "causes: {:?}", verdict.causes);
        assert!(verdict.arrested);
    }

    #[test]
    fn retardation_violation_detected() {
        let mut mon = FailureMonitor::new();
        mon.observe(&state(3.0 * spec::G, 10_000.0, 50.0, false));
        mon.observe(&state(0.0, 0.0, 100.0, true));
        let verdict = mon.verdict(&Constraints::default(), TestCase::new(8_000.0, 40.0));
        assert!(verdict.causes.contains(&FailureCause::Retardation));
        assert!(verdict.peak_retardation_g > 2.8);
    }

    #[test]
    fn force_violation_detected() {
        let mut mon = FailureMonitor::new();
        // 8 t at 40 m/s: Fmax ≈ 71 kN; 300 kN exceeds it clearly.
        mon.observe(&state(5.0, 300_000.0, 50.0, false));
        mon.observe(&state(0.0, 0.0, 100.0, true));
        let verdict = mon.verdict(&Constraints::default(), TestCase::new(8_000.0, 40.0));
        assert!(verdict.causes.contains(&FailureCause::Force));
    }

    #[test]
    fn overrun_detected() {
        let mut mon = FailureMonitor::new();
        mon.observe(&state(1.0, 10_000.0, 340.0, false));
        mon.observe(&state(0.0, 0.0, 341.0, true));
        let verdict = mon.verdict(&Constraints::default(), TestCase::new(14_000.0, 55.0));
        assert!(verdict.causes.contains(&FailureCause::Overrun));
    }

    #[test]
    fn never_stopping_is_an_overrun() {
        let mut mon = FailureMonitor::new();
        mon.observe(&state(0.1, 1_000.0, 200.0, false));
        let verdict = mon.verdict(&Constraints::default(), TestCase::new(14_000.0, 55.0));
        assert!(verdict.causes.contains(&FailureCause::Overrun));
        assert!(!verdict.arrested);
    }

    #[test]
    fn multiple_causes_accumulate() {
        let mut mon = FailureMonitor::new();
        mon.observe(&state(4.0 * spec::G, 400_000.0, 400.0, false));
        let verdict = mon.verdict(&Constraints::default(), TestCase::new(8_000.0, 40.0));
        assert_eq!(verdict.causes.len(), 3);
    }
}
