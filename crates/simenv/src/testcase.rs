//! Test cases: incoming aircraft of varying mass and engagement velocity.
//!
//! Paper Section 3.4: "For each error in the error set, the system was
//! subjected to 25 test cases, i.e. incoming aircraft, with velocity
//! ranging uniformly from 40 m/s to 70 m/s, and mass ranging uniformly
//! from 8000 kg to 20000 kg." We realise "uniformly ranging" as the
//! deterministic 5 × 5 grid over that envelope, so every experiment is
//! exactly reproducible.

use serde::{Deserialize, Serialize};

/// One incoming aircraft.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TestCase {
    /// Aircraft mass, kg.
    pub mass_kg: f64,
    /// Engagement velocity, m/s.
    pub velocity_ms: f64,
}

impl TestCase {
    /// Creates a test case.
    pub const fn new(mass_kg: f64, velocity_ms: f64) -> Self {
        TestCase {
            mass_kg,
            velocity_ms,
        }
    }

    /// Kinetic energy at engagement, joules.
    pub fn kinetic_energy_j(&self) -> f64 {
        0.5 * self.mass_kg * self.velocity_ms * self.velocity_ms
    }
}

/// The paper's mass/velocity envelope.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TestCaseGrid {
    /// Minimum mass, kg.
    pub mass_min: f64,
    /// Maximum mass, kg.
    pub mass_max: f64,
    /// Minimum velocity, m/s.
    pub velocity_min: f64,
    /// Maximum velocity, m/s.
    pub velocity_max: f64,
    /// Grid points per axis.
    pub points_per_axis: usize,
}

impl TestCaseGrid {
    /// The paper's envelope: m ∈ [8000, 20000] kg, v ∈ [40, 70] m/s,
    /// 5 × 5 = 25 cases.
    pub const fn paper() -> Self {
        TestCaseGrid {
            mass_min: 8_000.0,
            mass_max: 20_000.0,
            velocity_min: 40.0,
            velocity_max: 70.0,
            points_per_axis: 5,
        }
    }

    /// A smaller grid for quick tests (`n × n` cases).
    pub const fn coarse(n: usize) -> Self {
        TestCaseGrid {
            mass_min: 8_000.0,
            mass_max: 20_000.0,
            velocity_min: 40.0,
            velocity_max: 70.0,
            points_per_axis: n,
        }
    }

    /// Number of cases in the grid.
    pub const fn len(&self) -> usize {
        self.points_per_axis * self.points_per_axis
    }

    /// Whether the grid is empty.
    pub const fn is_empty(&self) -> bool {
        self.points_per_axis == 0
    }

    /// The cases, mass-major.
    pub fn cases(&self) -> Vec<TestCase> {
        let n = self.points_per_axis;
        let mut cases = Vec::with_capacity(n * n);
        for i in 0..n {
            for j in 0..n {
                let frac = |k: usize| {
                    if n == 1 {
                        0.5
                    } else {
                        k as f64 / (n - 1) as f64
                    }
                };
                cases.push(TestCase::new(
                    self.mass_min + (self.mass_max - self.mass_min) * frac(i),
                    self.velocity_min + (self.velocity_max - self.velocity_min) * frac(j),
                ));
            }
        }
        cases
    }
}

impl Default for TestCaseGrid {
    fn default() -> Self {
        TestCaseGrid::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_has_25_cases_covering_the_envelope() {
        let grid = TestCaseGrid::paper();
        let cases = grid.cases();
        assert_eq!(cases.len(), 25);
        assert_eq!(grid.len(), 25);
        let first = cases.first().unwrap();
        let last = cases.last().unwrap();
        assert_eq!(first.mass_kg, 8_000.0);
        assert_eq!(first.velocity_ms, 40.0);
        assert_eq!(last.mass_kg, 20_000.0);
        assert_eq!(last.velocity_ms, 70.0);
        for case in &cases {
            assert!((8_000.0..=20_000.0).contains(&case.mass_kg));
            assert!((40.0..=70.0).contains(&case.velocity_ms));
        }
    }

    #[test]
    fn single_point_grid_takes_midpoint() {
        let grid = TestCaseGrid::coarse(1);
        let cases = grid.cases();
        assert_eq!(cases.len(), 1);
        assert_eq!(cases[0].mass_kg, 14_000.0);
        assert_eq!(cases[0].velocity_ms, 55.0);
    }

    #[test]
    fn kinetic_energy() {
        let case = TestCase::new(10_000.0, 50.0);
        assert_eq!(case.kinetic_energy_j(), 12_500_000.0);
    }

    #[test]
    fn grid_cases_are_distinct() {
        let cases = TestCaseGrid::paper().cases();
        for (i, a) in cases.iter().enumerate() {
            for b in &cases[i + 1..] {
                assert!(a.mass_kg != b.mass_kg || a.velocity_ms != b.velocity_ms);
            }
        }
    }
}
