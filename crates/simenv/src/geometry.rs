//! Cable geometry: payout length and pull angle as the aircraft travels.
//!
//! The cable is strapped between two drums offset `a` metres laterally
//! from the centreline. With the hook at distance `x` down the runway,
//! each half of the cable has length `√(x² + a²)`, so the tape paid out
//! per drum is `L(x) = √(x² + a²) − a`, and the component of cable
//! tension retarding the aircraft is `cosθ = x / √(x² + a²)` per side.

use serde::{Deserialize, Serialize};

/// Geometry of the cable rig.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CableGeometry {
    /// Lateral drum offset `a`, metres.
    pub drum_offset_m: f64,
}

impl CableGeometry {
    /// Geometry with the given drum offset.
    pub const fn new(drum_offset_m: f64) -> Self {
        CableGeometry { drum_offset_m }
    }

    /// Tape paid out per drum at aircraft distance `x`, metres.
    pub fn payout_m(&self, x: f64) -> f64 {
        let a = self.drum_offset_m;
        (x * x + a * a).sqrt() - a
    }

    /// `cosθ`: fraction of per-side tension acting against the aircraft.
    pub fn cos_theta(&self, x: f64) -> f64 {
        let a = self.drum_offset_m;
        let hyp = (x * x + a * a).sqrt();
        if hyp == 0.0 {
            0.0
        } else {
            x / hyp
        }
    }

    /// Inverse of [`payout_m`](Self::payout_m): aircraft distance for a
    /// given per-drum payout (used by the controller to reconstruct `x`
    /// from the pulse count).
    pub fn distance_for_payout(&self, payout: f64) -> f64 {
        let a = self.drum_offset_m;
        let hyp = payout + a;
        (hyp * hyp - a * a).max(0.0).sqrt()
    }

    /// Tape payout speed per drum for aircraft speed `v` at distance `x`.
    pub fn payout_speed(&self, x: f64, v: f64) -> f64 {
        self.cos_theta(x) * v
    }
}

impl Default for CableGeometry {
    fn default() -> Self {
        CableGeometry::new(crate::spec::DRUM_OFFSET_M)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn payout_zero_at_engagement() {
        let g = CableGeometry::new(30.0);
        assert!(g.payout_m(0.0).abs() < EPS);
    }

    #[test]
    fn payout_3_4_5_triangle() {
        let g = CableGeometry::new(30.0);
        // x = 40: hyp = 50, payout = 20.
        assert!((g.payout_m(40.0) - 20.0).abs() < EPS);
        assert!((g.cos_theta(40.0) - 0.8).abs() < EPS);
    }

    #[test]
    fn cos_theta_limits() {
        let g = CableGeometry::new(30.0);
        assert!(g.cos_theta(0.0).abs() < EPS);
        assert!(g.cos_theta(10_000.0) > 0.999);
        // Monotone increasing in x.
        assert!(g.cos_theta(50.0) > g.cos_theta(20.0));
    }

    #[test]
    fn distance_payout_round_trip() {
        let g = CableGeometry::new(30.0);
        for x in [0.0, 1.0, 40.0, 123.4, 335.0] {
            let payout = g.payout_m(x);
            let back = g.distance_for_payout(payout);
            assert!((back - x).abs() < 1e-6, "x = {x}, back = {back}");
        }
    }

    #[test]
    fn payout_speed_is_scaled_velocity() {
        let g = CableGeometry::new(30.0);
        let v = 60.0;
        assert!((g.payout_speed(40.0, v) - 0.8 * v).abs() < EPS);
        assert!(g.payout_speed(0.0, v).abs() < EPS);
    }
}
