//! Experiment readouts: time-series capture of plant states.
//!
//! "All input to and output from the environment simulator is stored as
//! experiment readouts and is subsequently analysed for system failure"
//! (paper Section 3.3). Full 1 kHz capture of a 40 s run is 40 000
//! samples; campaigns use a decimated capture or none at all, while
//! figure generation records densely.

use serde::{Deserialize, Serialize};

use crate::plant::PlantState;

/// A decimating recorder of [`PlantState`] samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Readout {
    every_ms: u64,
    samples: Vec<PlantState>,
}

impl Readout {
    /// Records one sample every `every_ms` milliseconds (0 disables
    /// capture entirely).
    pub fn new(every_ms: u64) -> Self {
        Readout {
            every_ms,
            samples: Vec::new(),
        }
    }

    /// Offers a state; it is stored if it falls on the capture grid.
    pub fn offer(&mut self, state: &PlantState) {
        if self.every_ms != 0 && state.time_ms.is_multiple_of(self.every_ms) {
            self.samples.push(*state);
        }
    }

    /// The captured samples in time order.
    pub fn samples(&self) -> &[PlantState] {
        &self.samples
    }

    /// The capture decimation, ms (0 = capture disabled).
    pub const fn every_ms(&self) -> u64 {
        self.every_ms
    }

    /// Extends the capture to `until_ms` by replaying the last
    /// `period_ms / every_ms` samples cyclically with patched
    /// timestamps.
    ///
    /// Sound only when the caller has *proven* that the recorded system
    /// is `period_ms`-periodic from the last captured sample onward
    /// (e.g. via a settle-detector recurrence); the reconstruction is
    /// then bit-identical to continuing the run. `period_ms` must be a
    /// non-zero multiple of the capture decimation and at least one
    /// full period must already be captured.
    pub fn extend_periodic(&mut self, period_ms: u64, until_ms: u64) {
        if self.every_ms == 0 {
            return;
        }
        assert!(
            period_ms != 0 && period_ms.is_multiple_of(self.every_ms),
            "period {period_ms} ms is not aligned to the {} ms sample grid",
            self.every_ms
        );
        let cycle = usize::try_from(period_ms / self.every_ms).expect("cycle fits usize");
        assert!(
            self.samples.len() >= cycle,
            "need one full period of samples to replay"
        );
        let base = self.samples.len() - cycle;
        let mut next = self
            .samples
            .last()
            .map_or(self.every_ms, |s| s.time_ms + self.every_ms);
        let mut k = 0;
        while next <= until_ms {
            let mut sample = self.samples[base + k % cycle];
            sample.time_ms = next;
            self.samples.push(sample);
            next += self.every_ms;
            k += 1;
        }
    }

    /// Renders a CSV with a header row (used by the figure binaries).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "time_ms,distance_m,velocity_ms,retardation_ms2,cable_force_n,pressure_master_bar,pressure_slave_bar,arrested\n",
        );
        for s in &self.samples {
            out.push_str(&format!(
                "{},{:.3},{:.3},{:.3},{:.1},{:.2},{:.2},{}\n",
                s.time_ms,
                s.distance_m,
                s.velocity_ms,
                s.retardation_ms2,
                s.cable_force_n,
                s.pressure_master_bar,
                s.pressure_slave_bar,
                u8::from(s.arrested),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plant::Plant;
    use crate::testcase::TestCase;

    #[test]
    fn decimation() {
        let mut plant = Plant::new(TestCase::new(10_000.0, 50.0));
        let mut readout = Readout::new(100);
        for _ in 0..1_000 {
            let state = plant.step(20.0, 20.0);
            readout.offer(&state);
        }
        assert_eq!(readout.samples().len(), 10);
        assert_eq!(readout.samples()[0].time_ms, 100);
        assert_eq!(readout.samples()[9].time_ms, 1_000);
    }

    #[test]
    fn extend_periodic_replays_the_last_cycle() {
        let mut plant = Plant::new(TestCase::new(10_000.0, 50.0));
        let mut readout = Readout::new(10);
        for _ in 0..100 {
            let state = plant.step(20.0, 20.0);
            readout.offer(&state);
        }
        assert_eq!(readout.samples().len(), 10);
        let cycle: Vec<_> = readout.samples()[7..10].to_vec();
        readout.extend_periodic(30, 190);
        assert_eq!(readout.samples().len(), 19);
        for (k, sample) in readout.samples()[10..].iter().enumerate() {
            let source = &cycle[k % 3];
            assert_eq!(sample.time_ms, 110 + 10 * k as u64);
            assert_eq!(sample.distance_m.to_bits(), source.distance_m.to_bits());
            assert_eq!(sample.velocity_ms.to_bits(), source.velocity_ms.to_bits());
        }
        // Extending no further than the last sample is a no-op.
        readout.extend_periodic(30, 190);
        assert_eq!(readout.samples().len(), 19);
    }

    #[test]
    fn extend_periodic_is_a_noop_when_disabled() {
        let mut readout = Readout::new(0);
        readout.extend_periodic(30, 500);
        assert!(readout.samples().is_empty());
    }

    #[test]
    #[should_panic(expected = "not aligned")]
    fn extend_periodic_rejects_off_grid_periods() {
        let mut plant = Plant::new(TestCase::new(10_000.0, 50.0));
        let mut readout = Readout::new(10);
        for _ in 0..100 {
            let state = plant.step(20.0, 20.0);
            readout.offer(&state);
        }
        readout.extend_periodic(25, 200);
    }

    #[test]
    fn zero_period_disables() {
        let mut plant = Plant::new(TestCase::new(10_000.0, 50.0));
        let mut readout = Readout::new(0);
        for _ in 0..100 {
            let state = plant.step(20.0, 20.0);
            readout.offer(&state);
        }
        assert!(readout.samples().is_empty());
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut plant = Plant::new(TestCase::new(10_000.0, 50.0));
        let mut readout = Readout::new(1);
        for _ in 0..3 {
            let state = plant.step(20.0, 20.0);
            readout.offer(&state);
        }
        let csv = readout.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("time_ms,"));
        assert!(lines[1].starts_with("1,"));
    }
}
