//! Environment simulator for the aircraft-arresting target system.
//!
//! The paper's experiments ran against a real implementation whose
//! *environment* — the barrier (cable and tape drums) and the incoming
//! aircraft — was simulated and fed the target sensory data (rotation
//! sensor, pressure sensors) while consuming its actuator output
//! (pressure valves). This crate is that environment simulator:
//!
//! * [`Plant`] — continuous-time dynamics integrated at 1 ms: point-mass
//!   aircraft, cable payout geometry, hydraulic valve lag, brake tension;
//! * [`spec`] — all physical constants (BAK-12-style plausible values);
//! * [`TestCase`] / [`TestCaseGrid`] — the paper's mass/velocity
//!   envelope: 25 cases per error, v ∈ \[40, 70\] m/s, m ∈ \[8000, 20000\] kg;
//! * [`failure`] — the pessimistic failure classification of Section 3.3:
//!   retardation `r < 2.8 g`, retardation force `Fret < Fmax(m, v)`
//!   (bilinear interpolation over a specification table), stopping
//!   distance `d < 335 m`;
//! * [`Readout`] — time-series capture for figure generation and
//!   post-run analysis.
//!
//! # Example
//!
//! ```
//! use simenv::{Plant, TestCase};
//!
//! let mut plant = Plant::new(TestCase::new(12_000.0, 55.0));
//! // Command 50 bar on both valves for two seconds of flight.
//! for _ in 0..2_000 {
//!     plant.step(50.0, 50.0);
//! }
//! assert!(plant.state().velocity_ms < 55.0);
//! assert!(plant.state().distance_m > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod failure;
pub mod geometry;
pub mod plant;
pub mod readout;
pub mod spec;
pub mod testcase;

pub use failure::{Constraints, FailureCause, FailureMonitor, FmaxTable, Verdict};
pub use geometry::CableGeometry;
pub use plant::{Plant, PlantState, SensorReadout};
pub use readout::Readout;
pub use testcase::{TestCase, TestCaseGrid};
