//! Property-based tests of the plant physics and the failure
//! classifier.

use proptest::prelude::*;
use simenv::{Constraints, FailureMonitor, FmaxTable, Plant, TestCase};

fn any_case() -> impl Strategy<Value = TestCase> {
    (8_000.0f64..20_000.0, 40.0f64..70.0).prop_map(|(m, v)| TestCase::new(m, v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn energy_never_increases(case in any_case(), pressure in 0.0f64..200.0) {
        let mut plant = Plant::new(case);
        let mut prev_v = case.velocity_ms;
        for _ in 0..2_000 {
            let state = plant.step(pressure, pressure);
            prop_assert!(state.velocity_ms <= prev_v + 1e-9, "the cable cannot accelerate the aircraft");
            prev_v = state.velocity_ms;
        }
    }

    #[test]
    fn distance_is_monotone_and_velocity_nonnegative(case in any_case(), pressure in 0.0f64..200.0) {
        let mut plant = Plant::new(case);
        let mut prev_x = 0.0;
        for _ in 0..3_000 {
            let state = plant.step(pressure, pressure);
            prop_assert!(state.distance_m >= prev_x);
            prop_assert!(state.velocity_ms >= 0.0);
            prev_x = state.distance_m;
        }
    }

    #[test]
    fn more_pressure_stops_shorter(case in any_case()) {
        let run = |bar: f64| {
            let mut plant = Plant::new(case);
            while !plant.state().arrested && plant.state().time_ms < 120_000 {
                plant.step(bar, bar);
            }
            plant.state().distance_m
        };
        let soft = run(60.0);
        let hard = run(140.0);
        prop_assert!(hard <= soft + 1e-6, "140 bar stop {hard} vs 60 bar stop {soft}");
    }

    #[test]
    fn pulse_count_is_monotone(case in any_case()) {
        let mut plant = Plant::new(case);
        let mut prev = plant.pulse_count();
        for _ in 0..3_000 {
            plant.step(30.0, 30.0);
            let now = plant.pulse_count();
            prop_assert!(now >= prev);
            prop_assert!(now - prev <= 2, "payout speed bounds the per-ms delta");
            prev = now;
        }
    }

    #[test]
    fn fmax_table_is_monotone_in_both_axes(
        m in 8_000.0f64..20_000.0,
        v in 40.0f64..70.0,
        dm in 100.0f64..2_000.0,
        dv in 0.5f64..5.0,
    ) {
        let table = FmaxTable::specification();
        prop_assert!(table.limit_n(m + dm, v) >= table.limit_n(m, v));
        prop_assert!(table.limit_n(m, v + dv) >= table.limit_n(m, v));
    }

    #[test]
    fn verdict_failure_iff_some_cause(case in any_case(), pressure in 0.0f64..200.0) {
        let mut plant = Plant::new(case);
        let mut monitor = FailureMonitor::new();
        for _ in 0..20_000 {
            let state = plant.step(pressure, pressure);
            monitor.observe(&state);
        }
        let verdict = monitor.verdict(&Constraints::default(), case);
        prop_assert_eq!(verdict.failed(), !verdict.causes.is_empty());
        // A run that never arrested must be an overrun failure.
        if !verdict.arrested {
            prop_assert!(verdict.causes.contains(&simenv::FailureCause::Overrun));
        }
    }
}
