//! Crate-wide error type for parameter validation and plan construction.

use std::fmt;

use crate::Sample;

/// Errors returned while constructing or validating assertion parameters
/// and instrumentation plans.
///
/// Runtime assertion *violations* are not `Error`s — they are the expected
/// product of the mechanisms and are reported as [`crate::Violation`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// `smax` must be strictly greater than `smin` (paper Table 1, row
    /// "All").
    EmptyRange {
        /// The offending lower bound.
        smin: Sample,
        /// The offending upper bound.
        smax: Sample,
    },
    /// A rate band was given with `min > max`.
    InvertedRateBand {
        /// Which direction the band constrains.
        direction: RateDirection,
        /// The offending minimum rate.
        min: Sample,
        /// The offending maximum rate.
        max: Sample,
    },
    /// A rate was negative; paper Table 1 requires all rates to be `≥ 0`
    /// (decrease rates are expressed as magnitudes).
    NegativeRate {
        /// Which direction the rate constrains.
        direction: RateDirection,
        /// The offending rate value.
        rate: Sample,
    },
    /// The parameters do not satisfy the Table 1 constraints of any
    /// continuous class (e.g. both rate bands identically zero, which
    /// would freeze the signal forever).
    Unclassifiable,
    /// The discrete domain `D` is empty.
    EmptyDomain,
    /// A transition set `T(d)` refers to a value outside the domain `D`.
    TransitionOutsideDomain {
        /// The source value `d`.
        from: Sample,
        /// The offending target value.
        to: Sample,
    },
    /// A transition set was supplied for a value that is not in `D`.
    TransitionFromOutsideDomain {
        /// The offending source value.
        from: Sample,
    },
    /// A sequential discrete signal must define `T(d)` for every `d ∈ D`.
    MissingTransitions {
        /// The domain element with no transition set.
        value: Sample,
    },
    /// A linear sequential signal needs at least two values to traverse.
    LinearTooShort,
    /// A moded parameter set was queried for a mode it does not define.
    UnknownMode {
        /// The mode that was requested.
        mode: u16,
    },
    /// A probability handed to the coverage algebra was outside `[0, 1]`.
    InvalidProbability {
        /// Name of the offending quantity (e.g. `"Pds"`).
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// An instrumentation plan referenced a signal that is not in the
    /// inventory.
    UnknownSignal {
        /// The name that failed to resolve.
        name: String,
    },
    /// An instrumentation plan step was executed out of order.
    ProcessOrder {
        /// Description of what was attempted too early.
        detail: &'static str,
    },
}

/// Direction qualifier used by rate-related parameter errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RateDirection {
    /// The increase band (`rmin_incr`, `rmax_incr`).
    Increase,
    /// The decrease band (`rmin_decr`, `rmax_decr`).
    Decrease,
}

impl fmt::Display for RateDirection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RateDirection::Increase => f.write_str("increase"),
            RateDirection::Decrease => f.write_str("decrease"),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::EmptyRange { smin, smax } => {
                write!(
                    f,
                    "smax ({smax}) must be strictly greater than smin ({smin})"
                )
            }
            Error::InvertedRateBand {
                direction,
                min,
                max,
            } => {
                write!(
                    f,
                    "{direction} rate band has min ({min}) greater than max ({max})"
                )
            }
            Error::NegativeRate { direction, rate } => {
                write!(f, "{direction} rate must be non-negative, got {rate}")
            }
            Error::Unclassifiable => {
                f.write_str("parameters match no continuous signal class of the scheme")
            }
            Error::EmptyDomain => f.write_str("discrete domain D is empty"),
            Error::TransitionOutsideDomain { from, to } => {
                write!(
                    f,
                    "transition {from} -> {to} targets a value outside the domain"
                )
            }
            Error::TransitionFromOutsideDomain { from } => {
                write!(
                    f,
                    "transition set given for {from}, which is not in the domain"
                )
            }
            Error::MissingTransitions { value } => {
                write!(
                    f,
                    "sequential signal defines no transition set for domain value {value}"
                )
            }
            Error::LinearTooShort => {
                f.write_str("linear sequential signal needs at least two domain values")
            }
            Error::UnknownMode { mode } => write!(f, "no parameter set for mode {mode}"),
            Error::InvalidProbability { name, value } => {
                write!(f, "probability {name} = {value} is outside [0, 1]")
            }
            Error::UnknownSignal { name } => {
                write!(f, "signal `{name}` is not part of the inventory")
            }
            Error::ProcessOrder { detail } => {
                write!(f, "instrumentation process step out of order: {detail}")
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let err = Error::EmptyRange { smin: 5, smax: 5 };
        let text = err.to_string();
        assert!(text.contains("smax"));
        assert!(!text.ends_with('.'));
    }

    #[test]
    fn rate_direction_display() {
        assert_eq!(RateDirection::Increase.to_string(), "increase");
        assert_eq!(RateDirection::Decrease.to_string(), "decrease");
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<Error>();
    }
}
