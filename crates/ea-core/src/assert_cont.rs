//! The executable assertion for continuous signals — the exact test
//! procedure of paper Table 2.
//!
//! Given the current sample `s`, the previous sample `s'` and the
//! parameter set, the procedure runs:
//!
//! 1. **Test 1** `s ≤ smax` and **Test 2** `s ≥ smin` — always, in that
//!    order; failing either fails the whole assertion immediately.
//! 2. One group of alternatives selected by the *signal status*
//!    (the relation between `s` and `s'`); passing **any one** alternative
//!    passes the assertion:
//!
//! | status | tests |
//! |---|---|
//! | `s > s'` | 3a: `rmin_incr ≤ s−s' ≤ rmax_incr`; 4a: wrap allowed ∧ `rmin_decr ≤ (s'−smin)+(smax−s) ≤ rmax_decr` |
//! | `s < s'` | 3b: `rmin_decr ≤ s'−s ≤ rmax_decr`; 4b: wrap allowed ∧ `rmin_incr ≤ (smax−s')+(s−smin) ≤ rmax_incr` |
//! | `s = s'` | 3c: monotonically decreasing ∧ `rmin_decr = 0`; 4c: monotonically increasing ∧ `rmin_incr = 0`; 5c: random ∧ (`rmin_incr = 0` ∨ `rmin_decr = 0`) |

use crate::cont::ContinuousParams;
use crate::verdict::{Pass, Violation, ViolationKind};
use crate::Sample;

/// Runs the Table 2 assertion for one sample of a continuous signal.
///
/// `previous` is `None` on the very first observation, in which case only
/// the range tests (1 and 2) apply — there is no rate to check yet.
///
/// Returns which test admitted the sample, or the [`Violation`] detected.
///
/// # Example
///
/// ```
/// use ea_core::{assert_cont, ContinuousParams};
///
/// let params = ContinuousParams::builder(0, 100)
///     .increase_rate(0, 10)
///     .decrease_rate(0, 10)
///     .build()?;
/// assert!(assert_cont::check(&params, Some(50), 55).is_ok());
/// assert!(assert_cont::check(&params, Some(50), 75).is_err()); // too fast
/// # Ok::<(), ea_core::Error>(())
/// ```
#[inline]
pub fn check(
    params: &ContinuousParams,
    previous: Option<Sample>,
    current: Sample,
) -> Result<Pass, Violation> {
    // Tests 1 and 2 always run first.
    if current > params.smax() {
        return Err(Violation::new(
            ViolationKind::AboveMaximum,
            current,
            previous,
        ));
    }
    if current < params.smin() {
        return Err(Violation::new(
            ViolationKind::BelowMinimum,
            current,
            previous,
        ));
    }
    let Some(prev) = previous else {
        return Ok(Pass::FirstSample);
    };

    if current > prev {
        check_increased(params, prev, current)
    } else if current < prev {
        check_decreased(params, prev, current)
    } else {
        check_unchanged(params, current)
    }
}

/// Signal status `s > s'`: test 3a, falling back to wrap test 4a.
fn check_increased(
    params: &ContinuousParams,
    prev: Sample,
    current: Sample,
) -> Result<Pass, Violation> {
    let delta = current - prev;
    if params.increase().contains(delta) {
        return Ok(Pass::Increase);
    }
    // Test 4a: the apparent increase is really a decrease that wrapped
    // around below smin and re-entered at smax.
    if params.wrap().is_allowed() {
        let wrap_delta = (prev - params.smin()) + (params.smax() - current);
        if params.decrease().contains(wrap_delta) {
            return Ok(Pass::WrapDecrease);
        }
    }
    Err(Violation::new(
        ViolationKind::IncreaseRate,
        current,
        Some(prev),
    ))
}

/// Signal status `s < s'`: test 3b, falling back to wrap test 4b.
fn check_decreased(
    params: &ContinuousParams,
    prev: Sample,
    current: Sample,
) -> Result<Pass, Violation> {
    let delta = prev - current;
    if params.decrease().contains(delta) {
        return Ok(Pass::Decrease);
    }
    // Test 4b: the apparent decrease is really an increase that wrapped
    // around above smax and re-entered at smin.
    if params.wrap().is_allowed() {
        let wrap_delta = (params.smax() - prev) + (current - params.smin());
        if params.increase().contains(wrap_delta) {
            return Ok(Pass::WrapIncrease);
        }
    }
    Err(Violation::new(
        ViolationKind::DecreaseRate,
        current,
        Some(prev),
    ))
}

/// Signal status `s = s'`: tests 3c, 4c and 5c.
fn check_unchanged(params: &ContinuousParams, current: Sample) -> Result<Pass, Violation> {
    let incr = params.increase();
    let decr = params.decrease();

    // Test 3c: monotonically decreasing signal that may pause.
    if incr.is_zero() && decr.min() == 0 {
        return Ok(Pass::UnchangedDecreasing);
    }
    // Test 4c: monotonically increasing signal that may pause.
    if decr.is_zero() && incr.min() == 0 {
        return Ok(Pass::UnchangedIncreasing);
    }
    // Test 5c: random signal with a zero minimum rate on some side.
    if !decr.is_zero() && !incr.is_zero() && (incr.min() == 0 || decr.min() == 0) {
        return Ok(Pass::UnchangedRandom);
    }
    Err(Violation::new(
        ViolationKind::IllegalUnchanged,
        current,
        Some(current),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_params() -> ContinuousParams {
        ContinuousParams::builder(0, 1000)
            .increase_rate(0, 100)
            .decrease_rate(0, 50)
            .build()
            .unwrap()
    }

    #[test]
    fn first_sample_only_range_checked() {
        let p = random_params();
        assert_eq!(check(&p, None, 0), Ok(Pass::FirstSample));
        assert_eq!(check(&p, None, 1000), Ok(Pass::FirstSample));
        assert_eq!(
            check(&p, None, 1001).unwrap_err().kind(),
            ViolationKind::AboveMaximum
        );
        assert_eq!(
            check(&p, None, -1).unwrap_err().kind(),
            ViolationKind::BelowMinimum
        );
    }

    #[test]
    fn range_tests_run_before_rate_tests() {
        let p = random_params();
        // Out of range AND rate-violating: must report the range failure.
        let v = check(&p, Some(500), 5000).unwrap_err();
        assert_eq!(v.kind(), ViolationKind::AboveMaximum);
    }

    #[test]
    fn test_3a_increase_band() {
        let p = random_params();
        assert_eq!(check(&p, Some(100), 200), Ok(Pass::Increase));
        assert_eq!(check(&p, Some(100), 101), Ok(Pass::Increase));
        assert_eq!(
            check(&p, Some(100), 201).unwrap_err().kind(),
            ViolationKind::IncreaseRate
        );
    }

    #[test]
    fn test_3b_decrease_band() {
        let p = random_params();
        assert_eq!(check(&p, Some(100), 50), Ok(Pass::Decrease));
        assert_eq!(
            check(&p, Some(100), 49).unwrap_err().kind(),
            ViolationKind::DecreaseRate
        );
    }

    #[test]
    fn increase_band_with_positive_minimum() {
        let p = ContinuousParams::builder(0, 100)
            .increase_rate(5, 10)
            .decrease_rate(0, 10)
            .build()
            .unwrap();
        // An increase of 3 is below rmin_incr.
        assert_eq!(
            check(&p, Some(10), 13).unwrap_err().kind(),
            ViolationKind::IncreaseRate
        );
        assert_eq!(check(&p, Some(10), 15), Ok(Pass::Increase));
    }

    #[test]
    fn static_monotonic_requires_exact_step() {
        let p = ContinuousParams::builder(0, 0xFFFF)
            .increase_rate(7, 7)
            .build()
            .unwrap();
        assert_eq!(check(&p, Some(14), 21), Ok(Pass::Increase));
        assert_eq!(
            check(&p, Some(14), 22).unwrap_err().kind(),
            ViolationKind::IncreaseRate
        );
        assert_eq!(
            check(&p, Some(14), 20).unwrap_err().kind(),
            ViolationKind::IncreaseRate
        );
        // Any decrease is illegal for a monotonically increasing signal.
        assert_eq!(
            check(&p, Some(14), 7).unwrap_err().kind(),
            ViolationKind::DecreaseRate
        );
        // Staying put is illegal for a static-rate signal.
        assert_eq!(
            check(&p, Some(14), 14).unwrap_err().kind(),
            ViolationKind::IllegalUnchanged
        );
    }

    #[test]
    fn test_4b_wrap_increase() {
        // mscnt-style counter: +1 per test, wraps 0xFFFF -> 0. The wrap
        // formula of Table 2 identifies smin with smax (circular range),
        // so a counter with period 2^16 is parameterised with
        // smax = 0x10000: (smax - s') + (s - smin) = 1 for 0xFFFF -> 0.
        let p = ContinuousParams::builder(0, 0x1_0000)
            .increase_rate(1, 1)
            .wrap_allowed()
            .build()
            .unwrap();
        assert_eq!(check(&p, Some(0xFFFF), 0), Ok(Pass::WrapIncrease));
        // Wrapping to 1 would be a step of 2: violation.
        assert_eq!(
            check(&p, Some(0xFFFF), 1).unwrap_err().kind(),
            ViolationKind::DecreaseRate
        );
    }

    #[test]
    fn test_4a_wrap_decrease() {
        // A monotonically decreasing countdown that wraps smin -> smax.
        let p = ContinuousParams::builder(0, 99)
            .decrease_rate(1, 10)
            .wrap_allowed()
            .build()
            .unwrap();
        // From 2 down through 0, wrapping to 97: (2-0)+(99-97) = 4.
        assert_eq!(check(&p, Some(2), 97), Ok(Pass::WrapDecrease));
        // Too large a wrap step: (2-0)+(99-80) = 21 > 10.
        assert_eq!(
            check(&p, Some(2), 80).unwrap_err().kind(),
            ViolationKind::IncreaseRate
        );
    }

    #[test]
    fn wrap_not_allowed_blocks_wrap_paths() {
        let p = ContinuousParams::builder(0, 0xFFFF)
            .increase_rate(1, 1)
            .build()
            .unwrap();
        assert_eq!(
            check(&p, Some(0xFFFF), 0).unwrap_err().kind(),
            ViolationKind::DecreaseRate
        );
    }

    #[test]
    fn test_3c_unchanged_on_pausable_decreasing_signal() {
        let p = ContinuousParams::builder(0, 100)
            .decrease_rate(0, 5)
            .build()
            .unwrap();
        assert_eq!(check(&p, Some(50), 50), Ok(Pass::UnchangedDecreasing));
    }

    #[test]
    fn test_4c_unchanged_on_pausable_increasing_signal() {
        let p = ContinuousParams::builder(0, 100)
            .increase_rate(0, 5)
            .build()
            .unwrap();
        assert_eq!(check(&p, Some(50), 50), Ok(Pass::UnchangedIncreasing));
    }

    #[test]
    fn test_5c_unchanged_on_random_signal() {
        let p = random_params();
        assert_eq!(check(&p, Some(50), 50), Ok(Pass::UnchangedRandom));
    }

    #[test]
    fn test_5c_rejects_random_signal_that_must_move() {
        // Random signal whose both minimum rates are positive: it must
        // change every test.
        let p = ContinuousParams::builder(0, 100)
            .increase_rate(1, 5)
            .decrease_rate(1, 5)
            .build()
            .unwrap();
        assert_eq!(
            check(&p, Some(50), 50).unwrap_err().kind(),
            ViolationKind::IllegalUnchanged
        );
    }

    #[test]
    fn dynamic_monotonic_pause_requires_zero_min_rate() {
        let p = ContinuousParams::builder(0, 100)
            .increase_rate(2, 5)
            .build()
            .unwrap();
        assert_eq!(
            check(&p, Some(50), 50).unwrap_err().kind(),
            ViolationKind::IllegalUnchanged
        );
    }

    #[test]
    fn negative_domain_works() {
        let p = ContinuousParams::builder(-100, -10)
            .increase_rate(0, 20)
            .decrease_rate(0, 20)
            .build()
            .unwrap();
        assert_eq!(check(&p, Some(-50), -40), Ok(Pass::Increase));
        assert_eq!(
            check(&p, Some(-50), -5).unwrap_err().kind(),
            ViolationKind::AboveMaximum
        );
    }
}
