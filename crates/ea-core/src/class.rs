//! The signal classification scheme of paper Figure 1.
//!
//! Signals split into **continuous** and **discrete**; continuous signals
//! are *monotonic* (static or dynamic rate) or *random*; discrete signals
//! are *sequential* (linear or non-linear) or *random*. The paper's Table 4
//! abbreviates classes as e.g. `Co/Mo/St` or `Di/Se/Li`; [`SignalClass`]
//! parses and displays that notation.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// Rate flavour of a monotonic continuous signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MonotonicRate {
    /// The signal changes by exactly one constant rate each test
    /// (`rmin = rmax > 0` on the active direction).
    Static,
    /// The signal changes by any rate within a band
    /// (`rmax > rmin ≥ 0` on the active direction).
    Dynamic,
}

/// Sub-classes of continuous signals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ContinuousKind {
    /// Strictly one-directional change (increase xor decrease).
    Monotonic(MonotonicRate),
    /// May increase, decrease or stay unchanged between tests.
    Random,
}

/// Sub-classes of sequential discrete signals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SequentialKind {
    /// Traverses the valid domain in one fixed, predefined order.
    Linear,
    /// Traverses the valid domain along an arbitrary predefined
    /// transition graph (e.g. a state machine, paper Figure 3).
    NonLinear,
}

/// Sub-classes of discrete signals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DiscreteKind {
    /// Transitions restricted by per-value transition sets `T(d)`.
    Sequential(SequentialKind),
    /// Any transition within the valid domain `D` is allowed.
    Random,
}

/// A leaf of the classification tree of paper Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SignalClass {
    /// A continuous signal (models physical quantities: temperatures,
    /// pressures, velocities, …).
    Continuous(ContinuousKind),
    /// A discrete signal (models state information: operator settings,
    /// operation modes, execution sequences, …).
    Discrete(DiscreteKind),
}

impl SignalClass {
    /// Continuous / monotonic / static rate (`Co/Mo/St`).
    pub const fn continuous_static_monotonic() -> Self {
        SignalClass::Continuous(ContinuousKind::Monotonic(MonotonicRate::Static))
    }

    /// Continuous / monotonic / dynamic rate (`Co/Mo/Dy`).
    pub const fn continuous_dynamic_monotonic() -> Self {
        SignalClass::Continuous(ContinuousKind::Monotonic(MonotonicRate::Dynamic))
    }

    /// Continuous / random (`Co/Ra`).
    pub const fn continuous_random() -> Self {
        SignalClass::Continuous(ContinuousKind::Random)
    }

    /// Discrete / sequential / linear (`Di/Se/Li`).
    pub const fn discrete_linear() -> Self {
        SignalClass::Discrete(DiscreteKind::Sequential(SequentialKind::Linear))
    }

    /// Discrete / sequential / non-linear (`Di/Se/Nl`).
    pub const fn discrete_non_linear() -> Self {
        SignalClass::Discrete(DiscreteKind::Sequential(SequentialKind::NonLinear))
    }

    /// Discrete / random (`Di/Ra`).
    pub const fn discrete_random() -> Self {
        SignalClass::Discrete(DiscreteKind::Random)
    }

    /// Whether this is a continuous class.
    pub const fn is_continuous(self) -> bool {
        matches!(self, SignalClass::Continuous(_))
    }

    /// Whether this is a discrete class.
    pub const fn is_discrete(self) -> bool {
        matches!(self, SignalClass::Discrete(_))
    }

    /// Every leaf class of the scheme, in Figure 1 order.
    pub const ALL: [SignalClass; 6] = [
        SignalClass::continuous_static_monotonic(),
        SignalClass::continuous_dynamic_monotonic(),
        SignalClass::continuous_random(),
        SignalClass::discrete_linear(),
        SignalClass::discrete_non_linear(),
        SignalClass::discrete_random(),
    ];
}

impl fmt::Display for SignalClass {
    /// Formats in the paper's Table 4 abbreviation, e.g. `Co/Mo/Dy`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            SignalClass::Continuous(ContinuousKind::Monotonic(MonotonicRate::Static)) => "Co/Mo/St",
            SignalClass::Continuous(ContinuousKind::Monotonic(MonotonicRate::Dynamic)) => {
                "Co/Mo/Dy"
            }
            SignalClass::Continuous(ContinuousKind::Random) => "Co/Ra",
            SignalClass::Discrete(DiscreteKind::Sequential(SequentialKind::Linear)) => "Di/Se/Li",
            SignalClass::Discrete(DiscreteKind::Sequential(SequentialKind::NonLinear)) => {
                "Di/Se/Nl"
            }
            SignalClass::Discrete(DiscreteKind::Random) => "Di/Ra",
        };
        f.write_str(text)
    }
}

/// Error returned when parsing a class abbreviation fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSignalClassError {
    text: String,
}

impl fmt::Display for ParseSignalClassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "`{}` is not a signal class abbreviation", self.text)
    }
}

impl std::error::Error for ParseSignalClassError {}

impl FromStr for SignalClass {
    type Err = ParseSignalClassError;

    /// Parses the paper's Table 4 notation (case-insensitive), e.g.
    /// `"Co/Ra"`, `"Co/Mo/St"`, `"Di/Se/Li"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lowered = s.to_ascii_lowercase();
        let class = match lowered.as_str() {
            "co/mo/st" => SignalClass::continuous_static_monotonic(),
            "co/mo/dy" => SignalClass::continuous_dynamic_monotonic(),
            "co/ra" => SignalClass::continuous_random(),
            "di/se/li" => SignalClass::discrete_linear(),
            "di/se/nl" => SignalClass::discrete_non_linear(),
            "di/ra" => SignalClass::discrete_random(),
            _ => return Err(ParseSignalClassError { text: s.to_owned() }),
        };
        Ok(class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(SignalClass::continuous_random().to_string(), "Co/Ra");
        assert_eq!(
            SignalClass::continuous_static_monotonic().to_string(),
            "Co/Mo/St"
        );
        assert_eq!(
            SignalClass::continuous_dynamic_monotonic().to_string(),
            "Co/Mo/Dy"
        );
        assert_eq!(SignalClass::discrete_linear().to_string(), "Di/Se/Li");
        assert_eq!(SignalClass::discrete_non_linear().to_string(), "Di/Se/Nl");
        assert_eq!(SignalClass::discrete_random().to_string(), "Di/Ra");
    }

    #[test]
    fn parse_round_trips_every_class() {
        for class in SignalClass::ALL {
            let text = class.to_string();
            assert_eq!(text.parse::<SignalClass>().unwrap(), class);
        }
    }

    #[test]
    fn parse_is_case_insensitive() {
        assert_eq!(
            "CO/RA".parse::<SignalClass>().unwrap(),
            SignalClass::continuous_random()
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("Co/Xx".parse::<SignalClass>().is_err());
        assert!("".parse::<SignalClass>().is_err());
        assert!("continuous".parse::<SignalClass>().is_err());
    }

    #[test]
    fn continuity_predicates() {
        assert!(SignalClass::continuous_random().is_continuous());
        assert!(!SignalClass::continuous_random().is_discrete());
        assert!(SignalClass::discrete_random().is_discrete());
        assert!(!SignalClass::discrete_random().is_continuous());
    }

    #[test]
    fn all_lists_six_distinct_leaves() {
        let mut classes = SignalClass::ALL.to_vec();
        classes.sort();
        classes.dedup();
        assert_eq!(classes.len(), 6);
    }
}
