//! The discrete-signal parameter set `P_disc = {D, T(d)}`.
//!
//! A discrete signal has a valid domain `D` and, if *sequential*, one set
//! of valid transitions `T(d)` for every `d ∈ D`. The paper's example
//! (Figure 3) is a five-state machine with `D = {v1..v5}` and
//! `T(v1) = {v2, v4}`, `T(v2) = {v3, v4}`, `T(v3) = {v4}`, `T(v4) = {v5}`,
//! `T(v5) = {v1}`.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use crate::class::{DiscreteKind, SequentialKind, SignalClass};
use crate::error::Error;
use crate::Sample;

/// The validated parameter set of a discrete signal.
///
/// Constructed by one of three constructors matching the three discrete
/// leaf classes:
///
/// * [`DiscreteParams::random`] — any transition within `D` is legal;
/// * [`DiscreteParams::linear`] — `D` is traversed in one fixed order;
/// * [`DiscreteParams::non_linear`] — an explicit transition graph.
///
/// # Example
///
/// ```
/// use ea_core::DiscreteParams;
///
/// // Paper Figure 3: a five-state non-linear sequential signal.
/// let params = DiscreteParams::non_linear([
///     (1, vec![2, 4]),
///     (2, vec![3, 4]),
///     (3, vec![4]),
///     (4, vec![5]),
///     (5, vec![1]),
/// ])?;
/// assert!(params.transition_allowed(1, 4));
/// assert!(!params.transition_allowed(1, 3));
/// # Ok::<(), ea_core::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct DiscreteParams {
    domain: BTreeSet<Sample>,
    /// `None` for random discrete signals (any transition within `D`).
    transitions: Option<BTreeMap<Sample, BTreeSet<Sample>>>,
    class: SignalClass,
    /// Bitmask lookup tables for small domains — a pure cache over
    /// `domain`/`transitions`, rebuilt by every constructor, by
    /// deserialisation, and by [`Self::with_self_loops`]; excluded from
    /// serialisation and equality. `None` for wide domains (the B-tree
    /// path answers instead).
    dense: Option<DenseTables>,
}

impl Serialize for DiscreteParams {
    fn to_value(&self) -> serde::Value {
        // Matches the derive layout (one entry per logical field) so the
        // wire format is unchanged; the cache is not written.
        serde::Value::Object(vec![
            ("domain".into(), self.domain.to_value()),
            ("transitions".into(), self.transitions.to_value()),
            ("class".into(), self.class.to_value()),
        ])
    }
}

impl Deserialize for DiscreteParams {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let domain: BTreeSet<Sample> = serde::de_field(value, "domain")?;
        let transitions: Option<BTreeMap<Sample, BTreeSet<Sample>>> =
            serde::de_field(value, "transitions")?;
        let class: SignalClass = serde::de_field(value, "class")?;
        let dense = DenseTables::build(&domain, transitions.as_ref());
        Ok(DiscreteParams {
            domain,
            transitions,
            class,
            dense,
        })
    }
}

/// Dense tables for domains spanning at most 64 consecutive values:
/// `s ∈ D` and `s ∈ T(s')` become single shift-and-mask probes. The
/// per-tick assertion checks of small state machines (mode variables,
/// slot counters) sit on the simulator's hot path, where the B-tree
/// probes dominate the cost of a tick.
#[derive(Debug, Clone)]
struct DenseTables {
    /// Smallest domain value; bit `i` refers to sample `base + i`.
    base: Sample,
    /// Bit set ⇔ `base + i ∈ D`.
    domain_mask: u64,
    /// `masks[i]` = targets of `base + i`; `None` for random signals.
    transition_masks: Option<Vec<u64>>,
}

impl DenseTables {
    fn build(
        domain: &BTreeSet<Sample>,
        transitions: Option<&BTreeMap<Sample, BTreeSet<Sample>>>,
    ) -> Option<DenseTables> {
        let &base = domain.iter().next()?;
        let &max = domain.iter().next_back()?;
        let span = max.checked_sub(base)?;
        if !(0..64).contains(&span) {
            return None;
        }
        let mut domain_mask = 0u64;
        for &d in domain {
            domain_mask |= 1 << (d - base);
        }
        let transition_masks = transitions.map(|map| {
            let mut masks = vec![0u64; (span + 1) as usize];
            for (&from, targets) in map {
                let mut mask = 0u64;
                for &to in targets {
                    mask |= 1 << (to - base);
                }
                masks[(from - base) as usize] = mask;
            }
            masks
        });
        Some(DenseTables {
            base,
            domain_mask,
            transition_masks,
        })
    }

    #[inline]
    fn offset(&self, s: Sample) -> Option<u32> {
        let off = s.wrapping_sub(self.base);
        if (0..64).contains(&off) {
            Some(off as u32)
        } else {
            None
        }
    }

    #[inline]
    fn in_domain(&self, s: Sample) -> bool {
        self.offset(s)
            .is_some_and(|off| self.domain_mask >> off & 1 == 1)
    }

    #[inline]
    fn transition_allowed(&self, previous: Sample, current: Sample) -> bool {
        let (Some(p), Some(c)) = (self.offset(previous), self.offset(current)) else {
            return false;
        };
        if self.domain_mask >> p & 1 == 0 || self.domain_mask >> c & 1 == 0 {
            return false;
        }
        match &self.transition_masks {
            None => true,
            Some(masks) => masks[p as usize] >> c & 1 == 1,
        }
    }
}

impl PartialEq for DiscreteParams {
    fn eq(&self, other: &Self) -> bool {
        // `dense` is a cache: two parameter sets are equal iff their
        // logical content is, regardless of whether the cache is built
        // (it is absent on deserialised instances).
        self.domain == other.domain
            && self.transitions == other.transitions
            && self.class == other.class
    }
}

impl Eq for DiscreteParams {}

impl DiscreteParams {
    /// A random discrete signal: any value in `D`, any transition.
    ///
    /// # Errors
    ///
    /// [`Error::EmptyDomain`] if `domain` yields no values.
    pub fn random<I>(domain: I) -> Result<Self, Error>
    where
        I: IntoIterator<Item = Sample>,
    {
        let domain: BTreeSet<Sample> = domain.into_iter().collect();
        if domain.is_empty() {
            return Err(Error::EmptyDomain);
        }
        let dense = DenseTables::build(&domain, None);
        Ok(DiscreteParams {
            domain,
            transitions: None,
            class: SignalClass::discrete_random(),
            dense,
        })
    }

    /// A linear sequential signal traversing `order` one value after
    /// another; when `wrap` is true the last value transitions back to the
    /// first (the paper's `ms_slot_nbr` cycles 0, 1, …, 6, 0, …).
    ///
    /// # Errors
    ///
    /// * [`Error::LinearTooShort`] for fewer than two distinct values;
    /// * [`Error::TransitionOutsideDomain`] never occurs here (the order
    ///   defines the domain) but duplicated values are rejected as
    ///   [`Error::LinearTooShort`] once deduplicated.
    pub fn linear<I>(order: I, wrap: bool) -> Result<Self, Error>
    where
        I: IntoIterator<Item = Sample>,
    {
        let order: Vec<Sample> = order.into_iter().collect();
        let domain: BTreeSet<Sample> = order.iter().copied().collect();
        if domain.len() < 2 || domain.len() != order.len() {
            return Err(Error::LinearTooShort);
        }
        let mut transitions: BTreeMap<Sample, BTreeSet<Sample>> = BTreeMap::new();
        for window in order.windows(2) {
            transitions.entry(window[0]).or_default().insert(window[1]);
        }
        let last = *order.last().expect("order has at least two values");
        let entry = transitions.entry(last).or_default();
        if wrap {
            entry.insert(order[0]);
        }
        let dense = DenseTables::build(&domain, Some(&transitions));
        Ok(DiscreteParams {
            domain,
            transitions: Some(transitions),
            class: SignalClass::discrete_linear(),
            dense,
        })
    }

    /// A non-linear sequential signal with an explicit transition graph:
    /// one `(d, T(d))` pair per domain value.
    ///
    /// # Errors
    ///
    /// * [`Error::EmptyDomain`] for an empty graph;
    /// * [`Error::TransitionOutsideDomain`] if some `T(d)` targets a value
    ///   that has no own entry (every value reachable must be in `D`, and
    ///   every `d ∈ D` must define `T(d)` — supply an empty set for sink
    ///   states).
    pub fn non_linear<I, T>(graph: I) -> Result<Self, Error>
    where
        I: IntoIterator<Item = (Sample, T)>,
        T: IntoIterator<Item = Sample>,
    {
        let mut transitions: BTreeMap<Sample, BTreeSet<Sample>> = BTreeMap::new();
        for (from, targets) in graph {
            transitions.entry(from).or_default().extend(targets);
        }
        if transitions.is_empty() {
            return Err(Error::EmptyDomain);
        }
        let domain: BTreeSet<Sample> = transitions.keys().copied().collect();
        for (from, targets) in &transitions {
            for to in targets {
                if !domain.contains(to) {
                    return Err(Error::TransitionOutsideDomain {
                        from: *from,
                        to: *to,
                    });
                }
            }
        }
        let dense = DenseTables::build(&domain, Some(&transitions));
        Ok(DiscreteParams {
            domain,
            transitions: Some(transitions),
            class: SignalClass::discrete_non_linear(),
            dense,
        })
    }

    /// The valid domain `D`.
    pub fn domain(&self) -> &BTreeSet<Sample> {
        &self.domain
    }

    /// The transition set `T(d)`, or `None` when `d ∉ D` or the signal is
    /// random (in which case every transition inside `D` is legal).
    pub fn transitions_from(&self, d: Sample) -> Option<&BTreeSet<Sample>> {
        self.transitions.as_ref().and_then(|map| map.get(&d))
    }

    /// The signal class these parameters encode.
    pub const fn classify(&self) -> SignalClass {
        self.class
    }

    /// Whether the signal is sequential (has transition restrictions).
    pub const fn is_sequential(&self) -> bool {
        matches!(
            self.class,
            SignalClass::Discrete(DiscreteKind::Sequential(_))
        )
    }

    /// Whether this is a *linear* sequential signal.
    pub const fn is_linear(&self) -> bool {
        matches!(
            self.class,
            SignalClass::Discrete(DiscreteKind::Sequential(SequentialKind::Linear))
        )
    }

    /// Table 3, first assertion: `s ∈ D`.
    #[inline]
    pub fn in_domain(&self, s: Sample) -> bool {
        if let Some(dense) = &self.dense {
            return dense.in_domain(s);
        }
        self.domain.contains(&s)
    }

    /// Table 3, second assertion for sequential signals: `s ∈ T(s')`,
    /// taken strictly — an unchanged value is legal only if `d ∈ T(d)`.
    ///
    /// For signals that are sampled faster than they change (the common
    /// case for state variables), build the parameters with
    /// [`with_self_loops`](Self::with_self_loops). For signals tested
    /// exactly once per change (like the paper's `ms_slot_nbr`, tested
    /// every scheduler tick), the strict form detects stuck-at errors.
    ///
    /// For random discrete signals any pair of domain values is allowed.
    #[inline]
    pub fn transition_allowed(&self, previous: Sample, current: Sample) -> bool {
        if let Some(dense) = &self.dense {
            return dense.transition_allowed(previous, current);
        }
        if !self.in_domain(current) || !self.in_domain(previous) {
            return false;
        }
        match &self.transitions {
            None => true,
            Some(map) => map
                .get(&previous)
                .is_some_and(|targets| targets.contains(&current)),
        }
    }

    /// Adds `d ∈ T(d)` for every domain value: an unchanged sample is
    /// legal (for signals sampled faster than they change). No-op for
    /// random discrete signals.
    #[must_use]
    pub fn with_self_loops(mut self) -> Self {
        if let Some(map) = &mut self.transitions {
            for (d, targets) in map.iter_mut() {
                targets.insert(*d);
            }
            self.dense = DenseTables::build(&self.domain, self.transitions.as_ref());
        }
        self
    }

    /// An arbitrary valid value, useful as a recovery target.
    pub fn any_valid(&self) -> Sample {
        *self.domain.iter().next().expect("domain is never empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure3() -> DiscreteParams {
        DiscreteParams::non_linear([
            (1, vec![2, 4]),
            (2, vec![3, 4]),
            (3, vec![4]),
            (4, vec![5]),
            (5, vec![1]),
        ])
        .unwrap()
    }

    #[test]
    fn figure3_domain_and_transitions() {
        let params = figure3();
        assert_eq!(
            params.domain().iter().copied().collect::<Vec<_>>(),
            vec![1, 2, 3, 4, 5]
        );
        assert!(params.transition_allowed(1, 2));
        assert!(params.transition_allowed(1, 4));
        assert!(params.transition_allowed(2, 3));
        assert!(params.transition_allowed(2, 4));
        assert!(params.transition_allowed(3, 4));
        assert!(params.transition_allowed(4, 5));
        assert!(params.transition_allowed(5, 1));
        assert!(!params.transition_allowed(1, 3));
        assert!(!params.transition_allowed(1, 5));
        assert!(!params.transition_allowed(4, 1));
        assert_eq!(params.classify(), SignalClass::discrete_non_linear());
    }

    #[test]
    fn unchanged_value_is_illegal_unless_self_loops_added() {
        let strict = figure3();
        for v in 1..=5 {
            assert!(!strict.transition_allowed(v, v));
        }
        let relaxed = figure3().with_self_loops();
        for v in 1..=5 {
            assert!(relaxed.transition_allowed(v, v));
        }
        // Self-loops do not add any other transition.
        assert!(!relaxed.transition_allowed(1, 3));
    }

    #[test]
    fn linear_with_wrap_models_slot_counter() {
        let params = DiscreteParams::linear(0..7, true).unwrap();
        assert!(params.is_linear());
        for slot in 0..6 {
            assert!(params.transition_allowed(slot, slot + 1));
        }
        assert!(params.transition_allowed(6, 0));
        assert!(!params.transition_allowed(0, 2));
        assert!(!params.transition_allowed(6, 5));
    }

    #[test]
    fn linear_without_wrap_makes_last_a_sink() {
        let params = DiscreteParams::linear([10, 20, 30], false).unwrap();
        assert!(params.transition_allowed(20, 30));
        assert!(!params.transition_allowed(30, 10));
        // Staying at the sink needs an explicit self-loop.
        assert!(!params.transition_allowed(30, 30));
        assert!(params.with_self_loops().transition_allowed(30, 30));
    }

    #[test]
    fn linear_rejects_short_or_duplicated_orders() {
        assert_eq!(
            DiscreteParams::linear([1], true).unwrap_err(),
            Error::LinearTooShort
        );
        assert_eq!(
            DiscreteParams::linear([1, 1, 2], true).unwrap_err(),
            Error::LinearTooShort
        );
    }

    #[test]
    fn random_allows_any_domain_pair() {
        let params = DiscreteParams::random([2, 4, 8]).unwrap();
        assert!(params.transition_allowed(2, 8));
        assert!(params.transition_allowed(8, 2));
        assert!(!params.transition_allowed(2, 3));
        assert!(!params.in_domain(5));
        assert_eq!(params.classify(), SignalClass::discrete_random());
        assert!(params.transitions_from(2).is_none());
    }

    #[test]
    fn random_rejects_empty_domain() {
        assert_eq!(
            DiscreteParams::random(std::iter::empty()).unwrap_err(),
            Error::EmptyDomain
        );
    }

    #[test]
    fn non_linear_rejects_dangling_target() {
        let err = DiscreteParams::non_linear([(1, vec![2])]).unwrap_err();
        assert_eq!(err, Error::TransitionOutsideDomain { from: 1, to: 2 });
    }

    #[test]
    fn non_linear_sink_states_need_explicit_empty_set() {
        let params = DiscreteParams::non_linear([(1, vec![2]), (2, Vec::new())]).unwrap();
        assert!(params.transition_allowed(1, 2));
        assert!(!params.transition_allowed(2, 1));
        assert!(params.transitions_from(2).unwrap().is_empty());
    }

    #[test]
    fn any_valid_is_in_domain() {
        let params = figure3();
        assert!(params.in_domain(params.any_valid()));
    }

    /// The dense bitmask tables are a pure cache: serde round-trips
    /// preserve the logical fields (and rebuild the cache), and an
    /// instance with the cache stripped answers every query identically
    /// through the B-tree fallback.
    #[test]
    fn dense_tables_agree_with_btree_fallback() {
        let cases = [
            figure3(),
            figure3().with_self_loops(),
            DiscreteParams::linear(0..7, true).unwrap(),
            DiscreteParams::linear([10, 20, 30], false).unwrap(),
            DiscreteParams::random([2, 4, 8]).unwrap(),
            DiscreteParams::random([-3, 0, 100]).unwrap(),
        ];
        for built in cases {
            let json = serde_json::to_string(&built).unwrap();
            let thawed: DiscreteParams = serde_json::from_str(&json).unwrap();
            assert_eq!(built, thawed);
            assert_eq!(
                built.dense.is_some(),
                thawed.dense.is_some(),
                "deserialisation rebuilds the cache"
            );
            let mut stripped = built.clone();
            stripped.dense = None;
            for s in -5..=105 {
                assert_eq!(built.in_domain(s), stripped.in_domain(s), "in_domain({s})");
                for p in -5..=105 {
                    assert_eq!(
                        built.transition_allowed(p, s),
                        stripped.transition_allowed(p, s),
                        "transition_allowed({p}, {s})"
                    );
                }
            }
        }
    }

    /// Domains spanning more than 64 values skip the dense tables but
    /// answer identically through the B-tree path.
    #[test]
    fn wide_domains_fall_back_to_btrees() {
        let params = DiscreteParams::random([0, 1, 1_000]).unwrap();
        assert!(params.dense.is_none());
        assert!(params.in_domain(1_000));
        assert!(!params.in_domain(2));
        assert!(params.transition_allowed(1, 1_000));
    }
}
