//! Outcomes of executing an assertion: which test passed, or which
//! constraint was violated.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::Sample;

/// Which Table 2 / Table 3 test admitted the sample.
///
/// The numbering follows the paper exactly: tests 1 and 2 are the range
/// checks and always run; exactly one of the remaining tests must then
/// hold, chosen by the relation between the current sample `s` and the
/// previous sample `s'`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Pass {
    /// First observation of the signal: only the range tests (1, 2) ran.
    FirstSample,
    /// `s > s'` within the increase band (test 3a).
    Increase,
    /// `s > s'` explained as an allowed wrap-around decrease (test 4a).
    WrapDecrease,
    /// `s < s'` within the decrease band (test 3b).
    Decrease,
    /// `s < s'` explained as an allowed wrap-around increase (test 4b).
    WrapIncrease,
    /// `s = s'` on a monotonically decreasing signal whose minimum
    /// decrease rate is zero (test 3c).
    UnchangedDecreasing,
    /// `s = s'` on a monotonically increasing signal whose minimum
    /// increase rate is zero (test 4c).
    UnchangedIncreasing,
    /// `s = s'` on a random signal with a zero minimum rate in at least
    /// one direction (test 5c).
    UnchangedRandom,
    /// Discrete signal: `s ∈ D` (and `s ∈ T(s')` where applicable).
    Discrete,
}

/// The category of constraint that an erroneous sample violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ViolationKind {
    /// Test 1 failed: `s > smax`.
    AboveMaximum,
    /// Test 2 failed: `s < smin`.
    BelowMinimum,
    /// `s > s'` but outside the increase band (and not a legal wrap).
    IncreaseRate,
    /// `s < s'` but outside the decrease band (and not a legal wrap).
    DecreaseRate,
    /// `s = s'` but the class forbids an unchanged value (e.g. a
    /// static-rate monotonic signal must move every test).
    IllegalUnchanged,
    /// Discrete: `s ∉ D`.
    OutsideDomain,
    /// Discrete sequential: `s ∈ D` but `s ∉ T(s')`.
    IllegalTransition,
}

impl ViolationKind {
    /// A short stable identifier, useful in logs and CSV output.
    pub const fn code(self) -> &'static str {
        match self {
            ViolationKind::AboveMaximum => "above-max",
            ViolationKind::BelowMinimum => "below-min",
            ViolationKind::IncreaseRate => "incr-rate",
            ViolationKind::DecreaseRate => "decr-rate",
            ViolationKind::IllegalUnchanged => "illegal-unchanged",
            ViolationKind::OutsideDomain => "outside-domain",
            ViolationKind::IllegalTransition => "illegal-transition",
        }
    }
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// A detected error: an executable assertion found the sample outside its
/// constraints.
///
/// Carries everything a recovery mechanism or an experiment log needs: the
/// violated constraint, the offending value, and the previous (assumed
/// good) value if one existed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Violation {
    kind: ViolationKind,
    current: Sample,
    previous: Option<Sample>,
}

impl Violation {
    /// Creates a violation record.
    pub const fn new(kind: ViolationKind, current: Sample, previous: Option<Sample>) -> Self {
        Violation {
            kind,
            current,
            previous,
        }
    }

    /// The violated constraint category.
    pub const fn kind(&self) -> ViolationKind {
        self.kind
    }

    /// The sample that failed the test.
    pub const fn current(&self) -> Sample {
        self.current
    }

    /// The previous sample, if the signal had been observed before.
    pub const fn previous(&self) -> Option<Sample> {
        self.previous
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.previous {
            Some(prev) => write!(
                f,
                "{} (value {}, previous {})",
                self.kind, self.current, prev
            ),
            None => write!(f, "{} (value {})", self.kind, self.current),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_accessors() {
        let v = Violation::new(ViolationKind::AboveMaximum, 70000, Some(12));
        assert_eq!(v.kind(), ViolationKind::AboveMaximum);
        assert_eq!(v.current(), 70000);
        assert_eq!(v.previous(), Some(12));
    }

    #[test]
    fn display_mentions_values() {
        let v = Violation::new(ViolationKind::DecreaseRate, 3, Some(90));
        let text = v.to_string();
        assert!(text.contains("decr-rate"));
        assert!(text.contains('3'));
        assert!(text.contains("90"));

        let first = Violation::new(ViolationKind::OutsideDomain, 9, None);
        assert!(!first.to_string().contains("previous"));
    }

    #[test]
    fn codes_are_unique() {
        let kinds = [
            ViolationKind::AboveMaximum,
            ViolationKind::BelowMinimum,
            ViolationKind::IncreaseRate,
            ViolationKind::DecreaseRate,
            ViolationKind::IllegalUnchanged,
            ViolationKind::OutsideDomain,
            ViolationKind::IllegalTransition,
        ];
        let mut codes: Vec<_> = kinds.iter().map(|k| k.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), kinds.len());
    }
}
