//! The detector bank: all executable assertions of a system, their
//! detection log, and the "digital output pin" the paper's target raises
//! on detection.

use serde::{Deserialize, Serialize};

use crate::monitor::{Checked, SignalMonitor};
use crate::verdict::Violation;
use crate::{Millis, Sample};

/// Index of a monitor within a [`DetectorBank`].
///
/// In the paper's case study these correspond to the mechanisms EA1–EA7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MonitorId(pub usize);

/// How far the sample that triggered a detection sits from the
/// monitor's committed history — verdict metadata that lets a
/// differential trace oracle cross-check *what the assertion saw*
/// against *where the traces diverged*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DivergenceMeta {
    /// The offending sample.
    pub observed: Sample,
    /// The last committed (accepted) sample, when history existed.
    pub committed: Option<Sample>,
    /// `observed − committed` (signed), when history existed.
    pub deviation: Option<Sample>,
}

/// One raised detection: which mechanism fired, when, and why.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetectionEvent {
    /// The mechanism that detected the error.
    pub monitor: MonitorId,
    /// Timestamp in milliseconds of system time.
    pub at: Millis,
    /// The constraint violation that triggered detection.
    pub violation: Violation,
    /// Observed-vs-committed divergence at detection time.
    pub divergence: DivergenceMeta,
}

/// A bank of [`SignalMonitor`]s with a shared, time-stamped detection log.
///
/// Mechanisms can be *enabled* selectively — the paper evaluates eight
/// software versions: each of EA1–EA7 alone, plus all seven at once.
/// Disabled monitors still track signal history (their state follows the
/// signal), but they raise no detections; this mirrors recompiling the
/// target with a subset of assertions active while keeping run-to-run
/// behaviour comparable.
///
/// # Example
///
/// ```
/// use ea_core::prelude::*;
///
/// let mut bank = DetectorBank::new();
/// let speed = bank.add(SignalMonitor::continuous(
///     "speed",
///     ContinuousParams::builder(0, 100)
///         .increase_rate(0, 5)
///         .decrease_rate(0, 5)
///         .build()?,
/// ));
/// bank.observe(speed, 50, 0);
/// bank.observe(speed, 90, 7); // rate violation at t = 7 ms
/// assert_eq!(bank.events().len(), 1);
/// assert_eq!(bank.first_detection().unwrap().at, 7);
/// # Ok::<(), ea_core::Error>(())
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DetectorBank {
    monitors: Vec<SignalMonitor>,
    enabled: Vec<bool>,
    events: Vec<DetectionEvent>,
    /// Soft cap on the event log so that a screaming detector cannot eat
    /// unbounded memory during a 40 s experiment; detections beyond the
    /// cap still count in `suppressed`.
    log_cap: usize,
    suppressed: u64,
}

impl DetectorBank {
    /// Creates an empty bank with the default log capacity (65 536).
    pub fn new() -> Self {
        DetectorBank {
            monitors: Vec::new(),
            enabled: Vec::new(),
            events: Vec::new(),
            log_cap: 65_536,
            suppressed: 0,
        }
    }

    /// Overrides the event-log capacity.
    #[must_use]
    pub fn with_log_cap(mut self, cap: usize) -> Self {
        self.log_cap = cap;
        self
    }

    /// Adds a monitor (enabled) and returns its id.
    pub fn add(&mut self, monitor: SignalMonitor) -> MonitorId {
        self.monitors.push(monitor);
        self.enabled.push(true);
        MonitorId(self.monitors.len() - 1)
    }

    /// Number of monitors in the bank.
    pub fn len(&self) -> usize {
        self.monitors.len()
    }

    /// Whether the bank holds no monitors.
    pub fn is_empty(&self) -> bool {
        self.monitors.is_empty()
    }

    /// Enables or disables one mechanism.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a monitor of this bank.
    pub fn set_enabled(&mut self, id: MonitorId, enabled: bool) {
        self.enabled[id.0] = enabled;
    }

    /// Enables exactly the given mechanisms, disabling all others.
    pub fn enable_only<I>(&mut self, ids: I)
    where
        I: IntoIterator<Item = MonitorId>,
    {
        for flag in &mut self.enabled {
            *flag = false;
        }
        for id in ids {
            self.enabled[id.0] = true;
        }
    }

    /// Whether a mechanism is enabled.
    pub fn is_enabled(&self, id: MonitorId) -> bool {
        self.enabled[id.0]
    }

    /// Shared access to a monitor.
    pub fn monitor(&self, id: MonitorId) -> &SignalMonitor {
        &self.monitors[id.0]
    }

    /// Exclusive access to a monitor (e.g. for mode switching).
    pub fn monitor_mut(&mut self, id: MonitorId) -> &mut SignalMonitor {
        &mut self.monitors[id.0]
    }

    /// Looks a monitor up by signal name.
    pub fn find(&self, name: &str) -> Option<MonitorId> {
        self.monitors
            .iter()
            .position(|m| m.name() == name)
            .map(MonitorId)
    }

    /// Runs one executable assertion: mechanism `id` tests `sample` at
    /// time `at`.
    ///
    /// Returns the pass/violation verdict; when the mechanism is enabled
    /// and a violation occurs, it is appended to the detection log (the
    /// paper's "digital output pin" plus the FIC3 timestamp).
    #[inline]
    pub fn observe(
        &mut self,
        id: MonitorId,
        sample: Sample,
        at: Millis,
    ) -> Result<Checked, Violation> {
        let committed = self.monitors[id.0].previous();
        let result = self.monitors[id.0].check(sample);
        if let Err(violation) = &result {
            if self.enabled[id.0] {
                if self.events.len() < self.log_cap {
                    self.events.push(DetectionEvent {
                        monitor: id,
                        at,
                        violation: *violation,
                        divergence: DivergenceMeta {
                            observed: sample,
                            committed,
                            deviation: committed.map(|c| sample.wrapping_sub(c)),
                        },
                    });
                } else {
                    self.suppressed += 1;
                }
            }
        }
        result
    }

    /// The time-ordered detection log.
    pub fn events(&self) -> &[DetectionEvent] {
        &self.events
    }

    /// The first (earliest-logged) detection, if any — the paper's
    /// latency measurements are "first injection to first detection".
    pub fn first_detection(&self) -> Option<&DetectionEvent> {
        self.events.first()
    }

    /// Number of detections dropped after the log cap was reached.
    pub const fn suppressed(&self) -> u64 {
        self.suppressed
    }

    /// Whether any enabled mechanism has detected anything.
    pub fn any_detection(&self) -> bool {
        !self.events.is_empty()
    }

    /// Clears the log and every monitor's history (new experiment run).
    pub fn reset(&mut self) {
        self.events.clear();
        self.suppressed = 0;
        for monitor in &mut self.monitors {
            monitor.reset();
        }
    }

    /// Iterates over the monitors with their ids.
    pub fn iter(&self) -> impl Iterator<Item = (MonitorId, &SignalMonitor)> {
        self.monitors
            .iter()
            .enumerate()
            .map(|(i, m)| (MonitorId(i), m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cont::ContinuousParams;
    use crate::disc::DiscreteParams;

    fn bank_with_two() -> (DetectorBank, MonitorId, MonitorId) {
        let mut bank = DetectorBank::new();
        let a = bank.add(SignalMonitor::continuous(
            "a",
            ContinuousParams::builder(0, 100)
                .increase_rate(0, 5)
                .decrease_rate(0, 5)
                .build()
                .unwrap(),
        ));
        let b = bank.add(SignalMonitor::discrete(
            "b",
            DiscreteParams::random([1, 2]).unwrap(),
        ));
        (bank, a, b)
    }

    #[test]
    fn detections_are_logged_with_timestamps() {
        let (mut bank, a, _) = bank_with_two();
        bank.observe(a, 50, 0).unwrap();
        bank.observe(a, 51, 7).unwrap();
        assert!(bank.observe(a, 99, 14).is_err());
        let events = bank.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].at, 14);
        assert_eq!(events[0].monitor, a);
        assert!(bank.any_detection());
    }

    #[test]
    fn detections_carry_divergence_metadata() {
        let (mut bank, a, _) = bank_with_two();
        bank.observe(a, 50, 0).unwrap();
        assert!(bank.observe(a, 99, 7).is_err());
        let event = bank.events()[0];
        assert_eq!(event.divergence.observed, 99);
        assert_eq!(event.divergence.committed, Some(50));
        assert_eq!(event.divergence.deviation, Some(49));
    }

    #[test]
    fn first_sample_violation_has_no_committed_history() {
        let (mut bank, a, _) = bank_with_two();
        // Out of range on the very first sample: no history yet.
        assert!(bank.observe(a, 5_000, 0).is_err());
        let event = bank.events()[0];
        assert_eq!(event.divergence.observed, 5_000);
        assert_eq!(event.divergence.committed, None);
        assert_eq!(event.divergence.deviation, None);
    }

    #[test]
    fn disabled_mechanism_checks_but_does_not_log() {
        let (mut bank, a, b) = bank_with_two();
        bank.set_enabled(a, false);
        bank.observe(a, 50, 0).unwrap();
        assert!(bank.observe(a, 99, 7).is_err());
        assert!(bank.events().is_empty());
        assert!(!bank.is_enabled(a));
        assert!(bank.is_enabled(b));
    }

    #[test]
    fn enable_only_selects_a_single_version() {
        let (mut bank, a, b) = bank_with_two();
        bank.enable_only([b]);
        assert!(!bank.is_enabled(a));
        assert!(bank.is_enabled(b));
        assert!(bank.observe(a, 99999, 0).is_err()); // range violation
        assert!(bank.events().is_empty()); // but not logged
        assert!(bank.observe(b, 7, 0).is_err());
        assert_eq!(bank.events().len(), 1);
    }

    #[test]
    fn find_by_name() {
        let (bank, a, b) = bank_with_two();
        assert_eq!(bank.find("a"), Some(a));
        assert_eq!(bank.find("b"), Some(b));
        assert_eq!(bank.find("missing"), None);
    }

    #[test]
    fn reset_clears_log_and_history() {
        let (mut bank, a, _) = bank_with_two();
        bank.observe(a, 50, 0).unwrap();
        let _ = bank.observe(a, 99, 7);
        bank.reset();
        assert!(bank.events().is_empty());
        assert_eq!(bank.monitor(a).previous(), None);
        // After reset a big jump passes (first sample, range only).
        assert!(bank.observe(a, 90, 0).is_ok());
    }

    #[test]
    fn log_cap_suppresses_overflow() {
        let (bank, ..) = bank_with_two();
        let mut bank = bank.with_log_cap(2);
        let a = bank.find("a").unwrap();
        bank.observe(a, 0, 0).unwrap();
        for t in 1..=5 {
            let _ = bank.observe(a, 99, t); // every one violates the rate
        }
        assert_eq!(bank.events().len(), 2);
        assert_eq!(bank.suppressed(), 3);
    }

    #[test]
    fn first_detection_is_earliest() {
        let (mut bank, a, b) = bank_with_two();
        bank.observe(a, 0, 0).unwrap();
        let _ = bank.observe(b, 9, 3);
        let _ = bank.observe(a, 99, 5);
        assert_eq!(bank.first_detection().unwrap().at, 3);
        assert_eq!(bank.first_detection().unwrap().monitor, b);
    }

    #[test]
    fn len_and_iter() {
        let (bank, ..) = bank_with_two();
        assert_eq!(bank.len(), 2);
        assert!(!bank.is_empty());
        let names: Vec<_> = bank.iter().map(|(_, m)| m.name().to_owned()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
