//! Signal modes: per-mode parameter sets `P(m)`.
//!
//! The behaviour of a signal may differ between phases of operation, so a
//! signal can have several *modes*, each with its own parameter set
//! (paper Section 2.1, "Signal modes"). Mode variables are themselves
//! discrete signals, so error detection can be applied to them too —
//! [`ModedParams::mode_variable_params`] derives exactly that.

use serde::{Deserialize, Serialize};

use crate::class::SignalClass;
use crate::cont::ContinuousParams;
use crate::disc::DiscreteParams;
use crate::error::Error;
use crate::verdict::{Pass, Violation};
use crate::Sample;

/// A mode identifier (`m` in the paper's `P_cont(m)` / `P_disc(m)`).
pub type Mode = u16;

/// Either parameter flavour: `P_cont` or `P_disc`.
///
/// A [`crate::SignalMonitor`] dispatches on this to run the Table 2 or
/// Table 3 procedure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Params {
    /// Parameters of a continuous signal.
    Continuous(ContinuousParams),
    /// Parameters of a discrete signal.
    Discrete(DiscreteParams),
}

impl Params {
    /// The class this parameter set encodes.
    pub fn classify(&self) -> SignalClass {
        match self {
            Params::Continuous(p) => p.classify(),
            Params::Discrete(p) => p.classify(),
        }
    }

    /// Runs the matching executable assertion (Table 2 or Table 3).
    #[inline]
    pub fn check(&self, previous: Option<Sample>, current: Sample) -> Result<Pass, Violation> {
        match self {
            Params::Continuous(p) => crate::assert_cont::check(p, previous, current),
            Params::Discrete(p) => crate::assert_disc::check(p, previous, current),
        }
    }
}

impl From<ContinuousParams> for Params {
    fn from(params: ContinuousParams) -> Self {
        Params::Continuous(params)
    }
}

impl From<DiscreteParams> for Params {
    fn from(params: DiscreteParams) -> Self {
        Params::Discrete(params)
    }
}

/// A family of parameter sets indexed by mode.
///
/// # Example
///
/// ```
/// use ea_core::{ContinuousParams, ModedParams};
///
/// // An engine-speed signal: tight limits while idling (mode 0), wide
/// // limits under load (mode 1).
/// let idle = ContinuousParams::builder(600, 1100)
///     .increase_rate(0, 50)
///     .decrease_rate(0, 50)
///     .build()?;
/// let load = ContinuousParams::builder(600, 6500)
///     .increase_rate(0, 400)
///     .decrease_rate(0, 400)
///     .build()?;
/// let mut moded = ModedParams::new(0, idle);
/// moded.insert(1, load);
/// assert!(moded.params_for(1).is_ok());
/// assert!(moded.params_for(7).is_err());
/// # Ok::<(), ea_core::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModedParams {
    /// Sorted by mode. A sorted vector instead of a tree map: the
    /// common case is one or two modes, and [`ModedParams::params_for`]
    /// sits on the per-check hot path of every executable assertion.
    sets: Vec<(Mode, Params)>,
    initial: Mode,
}

impl ModedParams {
    /// Creates a family with one initial mode.
    pub fn new(initial: Mode, params: impl Into<Params>) -> Self {
        ModedParams {
            sets: vec![(initial, params.into())],
            initial,
        }
    }

    /// Adds or replaces the parameter set for `mode`; returns `self` for
    /// chaining via [`Self::with`].
    pub fn insert(&mut self, mode: Mode, params: impl Into<Params>) -> &mut Self {
        match self.sets.binary_search_by_key(&mode, |(m, _)| *m) {
            Ok(i) => self.sets[i].1 = params.into(),
            Err(i) => self.sets.insert(i, (mode, params.into())),
        }
        self
    }

    /// Chaining variant of [`Self::insert`].
    #[must_use]
    pub fn with(mut self, mode: Mode, params: impl Into<Params>) -> Self {
        self.insert(mode, params);
        self
    }

    /// The mode a fresh monitor starts in.
    pub const fn initial_mode(&self) -> Mode {
        self.initial
    }

    /// The parameter set `P(m)`.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownMode`] when no set was registered for `mode`.
    #[inline]
    pub fn params_for(&self, mode: Mode) -> Result<&Params, Error> {
        // Single-mode families (the common case) resolve with one
        // compare; larger families scan — they hold a handful of modes
        // at most, so a linear pass beats binary-search bookkeeping.
        if let [(m, p)] = self.sets.as_slice() {
            return if *m == mode {
                Ok(p)
            } else {
                Err(Error::UnknownMode { mode })
            };
        }
        self.sets
            .iter()
            .find(|(m, _)| *m == mode)
            .map(|(_, p)| p)
            .ok_or(Error::UnknownMode { mode })
    }

    /// Number of modes defined.
    pub fn mode_count(&self) -> usize {
        self.sets.len()
    }

    /// Iterates over `(mode, params)` pairs in mode order.
    pub fn iter(&self) -> impl Iterator<Item = (Mode, &Params)> {
        self.sets.iter().map(|(m, p)| (*m, p))
    }

    /// Derives the discrete parameters of the *mode variable* itself:
    /// a random discrete signal whose domain is the registered mode set.
    ///
    /// The paper points out that mode variables "can be classified as
    /// discrete signals in themselves, so that error detection may be
    /// implemented for them as well".
    pub fn mode_variable_params(&self) -> DiscreteParams {
        DiscreteParams::random(self.sets.iter().map(|(m, _)| Sample::from(*m)))
            .expect("a ModedParams always has at least one mode")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cont(lo: Sample, hi: Sample) -> ContinuousParams {
        ContinuousParams::builder(lo, hi)
            .increase_rate(0, 10)
            .decrease_rate(0, 10)
            .build()
            .unwrap()
    }

    #[test]
    fn lookup_by_mode() {
        let moded = ModedParams::new(0, cont(0, 10)).with(1, cont(0, 20));
        assert_eq!(moded.mode_count(), 2);
        assert_eq!(moded.initial_mode(), 0);
        match moded.params_for(1).unwrap() {
            Params::Continuous(p) => assert_eq!(p.smax(), 20),
            Params::Discrete(_) => panic!("expected continuous"),
        }
        assert_eq!(
            moded.params_for(9).unwrap_err(),
            Error::UnknownMode { mode: 9 }
        );
    }

    #[test]
    fn insert_replaces() {
        let mut moded = ModedParams::new(0, cont(0, 10));
        moded.insert(0, cont(0, 99));
        match moded.params_for(0).unwrap() {
            Params::Continuous(p) => assert_eq!(p.smax(), 99),
            Params::Discrete(_) => panic!("expected continuous"),
        }
    }

    #[test]
    fn mode_variable_is_a_discrete_signal_over_the_modes() {
        let moded = ModedParams::new(2, cont(0, 10))
            .with(5, cont(0, 20))
            .with(9, cont(0, 30));
        let mv = moded.mode_variable_params();
        assert!(mv.in_domain(2));
        assert!(mv.in_domain(5));
        assert!(mv.in_domain(9));
        assert!(!mv.in_domain(3));
    }

    #[test]
    fn params_enum_dispatches_to_right_table() {
        let c: Params = cont(0, 10).into();
        assert!(c.check(Some(5), 7).is_ok());
        assert!(c.check(Some(5), 11).is_err());

        let d: Params = DiscreteParams::random([1, 2, 3]).unwrap().into();
        assert!(d.check(Some(1), 3).is_ok());
        assert!(d.check(Some(1), 4).is_err());
    }

    #[test]
    fn iter_yields_in_mode_order() {
        let moded = ModedParams::new(3, cont(0, 10)).with(1, cont(0, 20));
        let modes: Vec<Mode> = moded.iter().map(|(m, _)| m).collect();
        assert_eq!(modes, vec![1, 3]);
    }
}
