//! Dynamic constraints: value-dependent rate bounds.
//!
//! The paper's parameters are static, but it notes that "dynamic
//! constraints as in \[Stroph & Clarke 1998\] and \[Clegg & Marzullo
//! 1996\] may also be considered" (§2.1). This module implements that
//! extension: the admissible change rate becomes a **piecewise-linear
//! function of the current value**, so a test can be tight where the
//! physics is tight.
//!
//! The canonical example is a first-order plant like the case study's
//! hydraulic valve: `dP/dt = (cmd − P)/τ` means the pressure can rise
//! fast when low but only slowly when already near the commanded
//! ceiling. A static bound must admit the worst case everywhere; a
//! [`RateProfile`] shrinks the envelope with the value and catches
//! errors the static bound lets through.
//!
//! # Example
//!
//! ```
//! use ea_core::dynamic::{DynamicParams, RateProfile};
//! use ea_core::ContinuousParams;
//!
//! // Static envelope: up to 1000 units/test anywhere in [0, 20000].
//! let base = ContinuousParams::builder(0, 20_000)
//!     .increase_rate(0, 1_000)
//!     .decrease_rate(0, 1_000)
//!     .build()?;
//! // Dynamic refinement: near the top the plant can only creep.
//! let profile = RateProfile::new([(0, 1_000), (20_000, 50)])?;
//! let params = DynamicParams::new(base).with_increase_profile(profile);
//!
//! // A +600 jump at value 19000 passes the static test…
//! assert!(ea_core::assert_cont::check(&base, Some(19_000), 19_600).is_ok());
//! // …but violates the physics-aware dynamic bound (≈ 98 at 19000).
//! assert!(params.check(Some(19_000), 19_600).is_err());
//! # Ok::<(), ea_core::Error>(())
//! ```

use serde::{Deserialize, Serialize};

use crate::cont::ContinuousParams;
use crate::error::Error;
use crate::verdict::{Pass, Violation, ViolationKind};
use crate::Sample;

/// A piecewise-linear maximum-rate profile over the signal's value
/// domain: `(value, max_rate)` knots, linearly interpolated, clamped at
/// the ends.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RateProfile {
    knots: Vec<(Sample, Sample)>,
}

impl RateProfile {
    /// Builds a profile from knots (sorted by value internally).
    ///
    /// # Errors
    ///
    /// * [`Error::EmptyDomain`] with no knots;
    /// * [`Error::NegativeRate`] if any knot's rate is negative.
    pub fn new<I>(knots: I) -> Result<Self, Error>
    where
        I: IntoIterator<Item = (Sample, Sample)>,
    {
        let mut knots: Vec<(Sample, Sample)> = knots.into_iter().collect();
        if knots.is_empty() {
            return Err(Error::EmptyDomain);
        }
        for &(_, rate) in &knots {
            if rate < 0 {
                return Err(Error::NegativeRate {
                    direction: crate::error::RateDirection::Increase,
                    rate,
                });
            }
        }
        knots.sort_by_key(|&(value, _)| value);
        Ok(RateProfile { knots })
    }

    /// Number of knots in the profile (the cost model charges the
    /// interpolation scan per knot window).
    pub fn knot_count(&self) -> usize {
        self.knots.len()
    }

    /// The maximum admissible rate at `value`.
    pub fn max_rate_at(&self, value: Sample) -> Sample {
        let first = self.knots[0];
        let last = *self.knots.last().expect("non-empty");
        if value <= first.0 {
            return first.1;
        }
        if value >= last.0 {
            return last.1;
        }
        for pair in self.knots.windows(2) {
            let (x0, r0) = pair[0];
            let (x1, r1) = pair[1];
            if value <= x1 {
                // Integer linear interpolation; x1 > x0 after sort and
                // the equal-knot case was caught by the bounds above.
                if x1 == x0 {
                    return r1;
                }
                return r0 + (r1 - r0) * (value - x0) / (x1 - x0);
            }
        }
        last.1
    }
}

/// Continuous-signal parameters with optional dynamic rate profiles.
///
/// Range tests (Table 2 tests 1 and 2) and the static bands still apply;
/// a profile *additionally* bounds the change by the rate admissible at
/// the previous value. Wrap-around is not combined with profiles — a
/// wrapping signal's "current value" is ambiguous at the seam, so the
/// static wrap tests handle it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DynamicParams {
    base: ContinuousParams,
    incr_profile: Option<RateProfile>,
    decr_profile: Option<RateProfile>,
}

impl DynamicParams {
    /// Wraps a static parameter set with no profiles yet.
    pub fn new(base: ContinuousParams) -> Self {
        DynamicParams {
            base,
            incr_profile: None,
            decr_profile: None,
        }
    }

    /// Adds a value-dependent bound on increases.
    #[must_use]
    pub fn with_increase_profile(mut self, profile: RateProfile) -> Self {
        self.incr_profile = Some(profile);
        self
    }

    /// Adds a value-dependent bound on decreases.
    #[must_use]
    pub fn with_decrease_profile(mut self, profile: RateProfile) -> Self {
        self.decr_profile = Some(profile);
        self
    }

    /// The underlying static parameters.
    pub fn base(&self) -> &ContinuousParams {
        &self.base
    }

    /// Knot count of the increase profile (0 when absent).
    pub fn increase_profile_knots(&self) -> usize {
        self.incr_profile
            .as_ref()
            .map_or(0, RateProfile::knot_count)
    }

    /// Knot count of the decrease profile (0 when absent).
    pub fn decrease_profile_knots(&self) -> usize {
        self.decr_profile
            .as_ref()
            .map_or(0, RateProfile::knot_count)
    }

    /// Runs the extended assertion: the full static Table 2 procedure,
    /// then the dynamic refinement.
    pub fn check(&self, previous: Option<Sample>, current: Sample) -> Result<Pass, Violation> {
        let pass = crate::assert_cont::check(&self.base, previous, current)?;
        let Some(prev) = previous else {
            return Ok(pass);
        };
        if current > prev {
            if let Some(profile) = &self.incr_profile {
                if current - prev > profile.max_rate_at(prev) {
                    return Err(Violation::new(
                        ViolationKind::IncreaseRate,
                        current,
                        Some(prev),
                    ));
                }
            }
        } else if current < prev {
            if let Some(profile) = &self.decr_profile {
                if prev - current > profile.max_rate_at(prev) {
                    return Err(Violation::new(
                        ViolationKind::DecreaseRate,
                        current,
                        Some(prev),
                    ));
                }
            }
        }
        Ok(pass)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> ContinuousParams {
        ContinuousParams::builder(0, 20_000)
            .increase_rate(0, 1_000)
            .decrease_rate(0, 1_000)
            .build()
            .unwrap()
    }

    #[test]
    fn profile_interpolates_and_clamps() {
        let profile = RateProfile::new([(0, 1_000), (10_000, 500), (20_000, 0)]).unwrap();
        assert_eq!(profile.max_rate_at(-5), 1_000);
        assert_eq!(profile.max_rate_at(0), 1_000);
        assert_eq!(profile.max_rate_at(5_000), 750);
        assert_eq!(profile.max_rate_at(10_000), 500);
        assert_eq!(profile.max_rate_at(15_000), 250);
        assert_eq!(profile.max_rate_at(20_000), 0);
        assert_eq!(profile.max_rate_at(90_000), 0);
    }

    #[test]
    fn unsorted_knots_are_sorted() {
        let profile = RateProfile::new([(10_000, 500), (0, 1_000)]).unwrap();
        assert_eq!(profile.max_rate_at(5_000), 750);
    }

    #[test]
    fn rejects_bad_profiles() {
        assert_eq!(
            RateProfile::new(std::iter::empty()).unwrap_err(),
            Error::EmptyDomain
        );
        assert!(matches!(
            RateProfile::new([(0, -3)]).unwrap_err(),
            Error::NegativeRate { .. }
        ));
    }

    #[test]
    fn dynamic_bound_tightens_where_static_is_loose() {
        let profile = RateProfile::new([(0, 1_000), (20_000, 50)]).unwrap();
        let params = DynamicParams::new(base()).with_increase_profile(profile);
        // Near the bottom the full static envelope applies.
        assert!(params.check(Some(100), 1_000).is_ok());
        // Near the top a jump the static test admits is rejected.
        assert!(
            crate::assert_cont::check(&base(), Some(19_000), 19_600).is_ok(),
            "static bound admits the jump"
        );
        let violation = params.check(Some(19_000), 19_600).unwrap_err();
        assert_eq!(violation.kind(), ViolationKind::IncreaseRate);
    }

    #[test]
    fn static_violations_still_reported_first() {
        let profile = RateProfile::new([(0, 1_000)]).unwrap();
        let params = DynamicParams::new(base()).with_increase_profile(profile);
        let violation = params.check(Some(100), 90_000).unwrap_err();
        assert_eq!(violation.kind(), ViolationKind::AboveMaximum);
    }

    #[test]
    fn decrease_profile_is_independent() {
        let params = DynamicParams::new(base())
            .with_decrease_profile(RateProfile::new([(0, 10), (20_000, 1_000)]).unwrap());
        // Decreases near the bottom are almost forbidden…
        assert!(params.check(Some(500), 400).is_err());
        // …while the same magnitude near the top is fine.
        assert!(params.check(Some(19_000), 18_900).is_ok());
        // Increases are untouched by the decrease profile.
        assert!(params.check(Some(500), 1_400).is_ok());
    }

    #[test]
    fn first_sample_skips_profiles() {
        let params =
            DynamicParams::new(base()).with_increase_profile(RateProfile::new([(0, 1)]).unwrap());
        assert_eq!(params.check(None, 19_999), Ok(Pass::FirstSample));
    }

    #[test]
    fn no_profile_equals_static_behaviour() {
        let params = DynamicParams::new(base());
        for (prev, current) in [(100, 900), (900, 100), (5_000, 5_000), (0, 20_000)] {
            assert_eq!(
                params.check(Some(prev), current),
                crate::assert_cont::check(&base(), Some(prev), current)
            );
        }
    }
}
