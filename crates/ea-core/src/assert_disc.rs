//! The executable assertion for discrete signals — paper Table 3.
//!
//! | class | assertions |
//! |---|---|
//! | random | `s ∈ D` |
//! | sequential | `s ∈ D` **and** `s ∈ T(s')` |
//!
//! The paper notes that `s ∈ T(s')` implies `s ∈ D`, "but both tests are
//! used nonetheless" — we keep that order so the reported violation
//! distinguishes *outside domain* from *illegal transition*.

use crate::disc::DiscreteParams;
use crate::verdict::{Pass, Violation, ViolationKind};
use crate::Sample;

/// Runs the Table 3 assertion for one sample of a discrete signal.
///
/// `previous` is `None` on the first observation; the transition test is
/// skipped then (and for random discrete signals always).
///
/// # Example
///
/// ```
/// use ea_core::{assert_disc, DiscreteParams};
///
/// let slot = DiscreteParams::linear(0..7, true)?;
/// assert!(assert_disc::check(&slot, Some(3), 4).is_ok());
/// assert!(assert_disc::check(&slot, Some(3), 5).is_err()); // skipped a slot
/// # Ok::<(), ea_core::Error>(())
/// ```
#[inline]
pub fn check(
    params: &DiscreteParams,
    previous: Option<Sample>,
    current: Sample,
) -> Result<Pass, Violation> {
    // First assertion: s ∈ D.
    if !params.in_domain(current) {
        return Err(Violation::new(
            ViolationKind::OutsideDomain,
            current,
            previous,
        ));
    }
    let Some(prev) = previous else {
        return Ok(Pass::FirstSample);
    };
    // Second assertion (sequential only): s ∈ T(s').
    if !params.transition_allowed(prev, current) {
        return Err(Violation::new(
            ViolationKind::IllegalTransition,
            current,
            Some(prev),
        ));
    }
    Ok(Pass::Discrete)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure3() -> DiscreteParams {
        DiscreteParams::non_linear([
            (1, vec![2, 4]),
            (2, vec![3, 4]),
            (3, vec![4]),
            (4, vec![5]),
            (5, vec![1]),
        ])
        .unwrap()
    }

    #[test]
    fn domain_test_runs_first() {
        let params = figure3();
        let v = check(&params, Some(1), 9).unwrap_err();
        assert_eq!(v.kind(), ViolationKind::OutsideDomain);
    }

    #[test]
    fn first_sample_needs_only_domain_membership() {
        let params = figure3();
        assert_eq!(check(&params, None, 3), Ok(Pass::FirstSample));
        assert_eq!(
            check(&params, None, 0).unwrap_err().kind(),
            ViolationKind::OutsideDomain
        );
    }

    #[test]
    fn sequential_transition_enforced() {
        let params = figure3();
        assert_eq!(check(&params, Some(1), 4), Ok(Pass::Discrete));
        assert_eq!(
            check(&params, Some(1), 5).unwrap_err().kind(),
            ViolationKind::IllegalTransition
        );
    }

    #[test]
    fn random_discrete_allows_any_domain_value() {
        let params = DiscreteParams::random([10, 20, 30]).unwrap();
        assert_eq!(check(&params, Some(10), 30), Ok(Pass::Discrete));
        assert_eq!(check(&params, Some(30), 10), Ok(Pass::Discrete));
        assert_eq!(
            check(&params, Some(10), 11).unwrap_err().kind(),
            ViolationKind::OutsideDomain
        );
    }

    #[test]
    fn staying_in_state_needs_self_loops() {
        let strict = figure3();
        assert_eq!(
            check(&strict, Some(4), 4).unwrap_err().kind(),
            ViolationKind::IllegalTransition
        );
        let relaxed = figure3().with_self_loops();
        assert_eq!(check(&relaxed, Some(4), 4), Ok(Pass::Discrete));
    }

    #[test]
    fn previous_outside_domain_is_an_illegal_transition() {
        // If the previous value was itself corrupt but undetected (e.g.
        // the assertion was just enabled), a move from it is flagged.
        let params = figure3();
        let v = check(&params, Some(99), 2).unwrap_err();
        assert_eq!(v.kind(), ViolationKind::IllegalTransition);
    }
}
