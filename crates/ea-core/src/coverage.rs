//! The error-detection coverage algebra of paper Section 2.4.
//!
//! Given that an error has occurred, define:
//!
//! * `Pem` — probability the error location is in a monitored signal;
//! * `Pen = 1 − Pem` — probability it is not;
//! * `Pprop` — probability an unmonitored error propagates to a monitored
//!   signal;
//! * `Pds` — probability an error *in* a monitored signal is detected.
//!
//! Then the total detection probability is
//! `Pdetect = (Pen·Pprop + Pem)·Pds`.
//!
//! `Pds` can be assessed independently of the error-occurrence
//! distribution (the paper's error set E1 does exactly that); `Pdetect`
//! is what a random-location campaign (error set E2) estimates directly.

use serde::{Deserialize, Serialize};

use crate::error::Error;

/// A validated probability in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Probability(f64);

impl Probability {
    /// Validates `value ∈ [0, 1]`.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidProbability`] otherwise (including NaN).
    pub fn new(name: &'static str, value: f64) -> Result<Self, Error> {
        if value.is_nan() || !(0.0..=1.0).contains(&value) {
            return Err(Error::InvalidProbability { name, value });
        }
        Ok(Probability(value))
    }

    /// The inner value.
    pub const fn value(self) -> f64 {
        self.0
    }

    /// The complement `1 − p`.
    pub fn complement(self) -> Probability {
        Probability(1.0 - self.0)
    }
}

/// The three independent quantities of the Section 2.4 expression.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoverageModel {
    p_em: Probability,
    p_prop: Probability,
    p_ds: Probability,
}

impl CoverageModel {
    /// Builds the model from raw probabilities.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidProbability`] if any argument is outside `[0, 1]`.
    pub fn new(p_em: f64, p_prop: f64, p_ds: f64) -> Result<Self, Error> {
        Ok(CoverageModel {
            p_em: Probability::new("Pem", p_em)?,
            p_prop: Probability::new("Pprop", p_prop)?,
            p_ds: Probability::new("Pds", p_ds)?,
        })
    }

    /// `Pem`: error located in a monitored signal.
    pub const fn p_em(&self) -> f64 {
        self.p_em.value()
    }

    /// `Pen = 1 − Pem`.
    pub fn p_en(&self) -> f64 {
        self.p_em.complement().value()
    }

    /// `Pprop`: unmonitored error propagates to a monitored signal.
    pub const fn p_prop(&self) -> f64 {
        self.p_prop.value()
    }

    /// `Pds`: detection given presence in a monitored signal.
    pub const fn p_ds(&self) -> f64 {
        self.p_ds.value()
    }

    /// The paper's total coverage: `Pdetect = (Pen·Pprop + Pem)·Pds`.
    pub fn p_detect(&self) -> f64 {
        (self.p_en() * self.p_prop() + self.p_em()) * self.p_ds()
    }

    /// Solves the expression backwards for `Pprop`, given a measured
    /// `Pdetect` (e.g. from error set E2) and this model's `Pem`/`Pds`.
    ///
    /// Returns `None` when the equation has no solution in `[0, 1]` —
    /// i.e. the measured coverage is inconsistent with `Pem` and `Pds`
    /// (or `Pds = 0` / `Pen = 0` makes `Pprop` unidentifiable).
    pub fn infer_p_prop(&self, p_detect: f64) -> Option<f64> {
        if self.p_ds() == 0.0 || self.p_en() == 0.0 {
            return None;
        }
        let p_prop = (p_detect / self.p_ds() - self.p_em()) / self.p_en();
        (0.0..=1.0).contains(&p_prop).then_some(p_prop)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probability_validation() {
        assert!(Probability::new("p", 0.0).is_ok());
        assert!(Probability::new("p", 1.0).is_ok());
        assert!(Probability::new("p", -0.01).is_err());
        assert!(Probability::new("p", 1.01).is_err());
        assert!(Probability::new("p", f64::NAN).is_err());
    }

    #[test]
    fn pdetect_formula() {
        // Paper discussion: with errors uniformly over monitored signals
        // (Pem = 1), Pdetect equals Pds.
        let all_monitored = CoverageModel::new(1.0, 0.0, 0.74).unwrap();
        assert!((all_monitored.p_detect() - 0.74).abs() < 1e-12);

        // No monitored locations and no propagation: nothing detected.
        let nothing = CoverageModel::new(0.0, 0.0, 0.99).unwrap();
        assert_eq!(nothing.p_detect(), 0.0);

        // Mixed: Pem = 0.2, Pprop = 0.5, Pds = 0.8
        // => (0.8*0.5 + 0.2) * 0.8 = 0.48
        let mixed = CoverageModel::new(0.2, 0.5, 0.8).unwrap();
        assert!((mixed.p_detect() - 0.48).abs() < 1e-12);
    }

    #[test]
    fn pdetect_is_monotone_in_each_argument() {
        let base = CoverageModel::new(0.3, 0.4, 0.6).unwrap();
        let more_prop = CoverageModel::new(0.3, 0.5, 0.6).unwrap();
        let more_em = CoverageModel::new(0.4, 0.4, 0.6).unwrap();
        let more_ds = CoverageModel::new(0.3, 0.4, 0.7).unwrap();
        assert!(more_prop.p_detect() > base.p_detect());
        assert!(more_em.p_detect() > base.p_detect());
        assert!(more_ds.p_detect() > base.p_detect());
    }

    #[test]
    fn infer_p_prop_round_trips() {
        let model = CoverageModel::new(0.2, 0.5, 0.8).unwrap();
        let measured = model.p_detect();
        let inferred = model.infer_p_prop(measured).unwrap();
        assert!((inferred - 0.5).abs() < 1e-12);
    }

    #[test]
    fn infer_p_prop_rejects_inconsistent_measurements() {
        let model = CoverageModel::new(0.2, 0.0, 0.5).unwrap();
        // Pdetect cannot exceed Pds: 0.6 > 0.5 is impossible.
        assert_eq!(model.infer_p_prop(0.6), None);
    }

    #[test]
    fn infer_p_prop_unidentifiable_cases() {
        let no_ds = CoverageModel::new(0.2, 0.5, 0.0).unwrap();
        assert_eq!(no_ds.infer_p_prop(0.0), None);
        let all_monitored = CoverageModel::new(1.0, 0.5, 0.9).unwrap();
        assert_eq!(all_monitored.infer_p_prop(0.9), None);
    }

    #[test]
    fn pen_is_complement() {
        let model = CoverageModel::new(0.25, 0.5, 0.9).unwrap();
        assert!((model.p_en() - 0.75).abs() < 1e-12);
    }
}
