//! The continuous-signal parameter set `P_cont` and its Table 1 validation.
//!
//! Each continuous signal is characterised by seven parameters: `smax`,
//! `smin`, `rmin_incr`, `rmax_incr`, `rmin_decr`, `rmax_decr` and `w`
//! (wrap-around allowed or not). Paper Table 1 constrains these per class:
//!
//! | Class | Constraint |
//! |---|---|
//! | All | `smax > smin`, `w ∈ {allowed, not allowed}` |
//! | Static monotonic | one direction's band is `[0, 0]`, the other's is `[r, r]` with `r > 0` |
//! | Dynamic monotonic | one direction's band is `[0, 0]`, the other's is `[rmin, rmax]` with `rmax > rmin ≥ 0` |
//! | Random | `rmax_incr ≥ rmin_incr ≥ 0` and `rmax_decr ≥ rmin_decr ≥ 0` |
//!
//! All rates are magnitudes (non-negative); the decrease band bounds how
//! much the value may *fall* per test.

use serde::{Deserialize, Serialize};

use crate::class::{ContinuousKind, MonotonicRate, SignalClass};
use crate::error::{Error, RateDirection};
use crate::Sample;

/// Whether a signal may wrap around from `smax` to `smin` (or vice versa)
/// and continue "on the other side" (paper Figure 2b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Wrap {
    /// Wrap-around is allowed; the wrap tests 4a/4b of Table 2 apply.
    Allowed,
    /// Wrap-around is a violation.
    NotAllowed,
}

impl Wrap {
    /// `true` for [`Wrap::Allowed`].
    pub const fn is_allowed(self) -> bool {
        matches!(self, Wrap::Allowed)
    }
}

/// A validated inclusive rate band `[min, max]`, both non-negative.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RateBand {
    min: Sample,
    max: Sample,
}

impl RateBand {
    /// The band `[0, 0]`: this direction of change is forbidden (used to
    /// express monotonicity).
    pub const ZERO: RateBand = RateBand { min: 0, max: 0 };

    /// Creates a band after checking `0 ≤ min ≤ max`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NegativeRate`] or [`Error::InvertedRateBand`].
    pub fn new(direction: RateDirection, min: Sample, max: Sample) -> Result<Self, Error> {
        if min < 0 {
            return Err(Error::NegativeRate {
                direction,
                rate: min,
            });
        }
        if max < 0 {
            return Err(Error::NegativeRate {
                direction,
                rate: max,
            });
        }
        if min > max {
            return Err(Error::InvertedRateBand {
                direction,
                min,
                max,
            });
        }
        Ok(RateBand { min, max })
    }

    /// Lower edge of the band.
    pub const fn min(self) -> Sample {
        self.min
    }

    /// Upper edge of the band.
    pub const fn max(self) -> Sample {
        self.max
    }

    /// Whether the band is exactly `[0, 0]`.
    pub const fn is_zero(self) -> bool {
        self.min == 0 && self.max == 0
    }

    /// Whether `delta` (a non-negative magnitude) lies within the band.
    pub const fn contains(self, delta: Sample) -> bool {
        self.min <= delta && delta <= self.max
    }
}

/// The validated seven-parameter set `P_cont` of a continuous signal.
///
/// Construct through [`ContinuousParams::builder`]; [`build`]
/// enforces the Table 1 constraints, so every constructed value maps to
/// exactly one continuous class, reported by [`classify`].
///
/// [`build`]: ContinuousParamsBuilder::build
/// [`classify`]: ContinuousParams::classify
///
/// # Example
///
/// ```
/// use ea_core::{ContinuousParams, SignalClass};
///
/// // A millisecond counter: statically increasing by 1, wrapping at the
/// // 16-bit boundary (the paper's `mscnt`).
/// let mscnt = ContinuousParams::builder(0, 0xFFFF)
///     .increase_rate(1, 1)
///     .wrap_allowed()
///     .build()?;
/// assert_eq!(mscnt.classify(), SignalClass::continuous_static_monotonic());
/// # Ok::<(), ea_core::Error>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ContinuousParams {
    smin: Sample,
    smax: Sample,
    incr: RateBand,
    decr: RateBand,
    wrap: Wrap,
    class: SignalClass,
}

impl ContinuousParams {
    /// Starts building a parameter set with the mandatory value range.
    pub fn builder(smin: Sample, smax: Sample) -> ContinuousParamsBuilder {
        ContinuousParamsBuilder {
            smin,
            smax,
            incr: (0, 0),
            decr: (0, 0),
            wrap: Wrap::NotAllowed,
        }
    }

    /// Minimum valid value `smin`.
    pub const fn smin(&self) -> Sample {
        self.smin
    }

    /// Maximum valid value `smax`.
    pub const fn smax(&self) -> Sample {
        self.smax
    }

    /// The increase-rate band `[rmin_incr, rmax_incr]`.
    pub const fn increase(&self) -> RateBand {
        self.incr
    }

    /// The decrease-rate band `[rmin_decr, rmax_decr]`.
    pub const fn decrease(&self) -> RateBand {
        self.decr
    }

    /// Wrap-around permission `w`.
    pub const fn wrap(&self) -> Wrap {
        self.wrap
    }

    /// The width of the valid range, `smax - smin`.
    pub const fn span(&self) -> Sample {
        self.smax - self.smin
    }

    /// The signal class these parameters encode, per Table 1.
    ///
    /// Classification is decided at construction time:
    ///
    /// * one band zero, other `[r, r]`, `r > 0` → static monotonic;
    /// * one band zero, other `[rmin, rmax]`, `rmax > rmin` → dynamic
    ///   monotonic;
    /// * both bands non-zero (or one band zero-width at a non-zero point
    ///   in *both* directions) → random.
    pub const fn classify(&self) -> SignalClass {
        self.class
    }

    /// Clamps `value` into `[smin, smax]`.
    pub fn clamp(&self, value: Sample) -> Sample {
        value.clamp(self.smin, self.smax)
    }

    /// Whether `value` lies in `[smin, smax]` (Table 2 tests 1 and 2).
    pub fn in_range(&self, value: Sample) -> bool {
        self.smin <= value && value <= self.smax
    }

    fn classify_bands(incr: RateBand, decr: RateBand) -> Result<SignalClass, Error> {
        let class = match (incr.is_zero(), decr.is_zero()) {
            (true, true) => return Err(Error::Unclassifiable),
            (true, false) | (false, true) => {
                let active = if incr.is_zero() { decr } else { incr };
                if active.min == active.max {
                    // active.min > 0 is implied: the band is not zero.
                    SignalClass::Continuous(ContinuousKind::Monotonic(MonotonicRate::Static))
                } else {
                    SignalClass::Continuous(ContinuousKind::Monotonic(MonotonicRate::Dynamic))
                }
            }
            (false, false) => SignalClass::Continuous(ContinuousKind::Random),
        };
        Ok(class)
    }
}

/// Builder for [`ContinuousParams`]; see paper Table 1 for the constraints
/// [`build`](Self::build) enforces.
#[derive(Debug, Clone)]
#[must_use = "call .build() to obtain the validated parameter set"]
pub struct ContinuousParamsBuilder {
    smin: Sample,
    smax: Sample,
    incr: (Sample, Sample),
    decr: (Sample, Sample),
    wrap: Wrap,
}

impl ContinuousParamsBuilder {
    /// Sets the increase-rate band `[rmin_incr, rmax_incr]`.
    pub fn increase_rate(mut self, min: Sample, max: Sample) -> Self {
        self.incr = (min, max);
        self
    }

    /// Sets the decrease-rate band `[rmin_decr, rmax_decr]` (magnitudes).
    pub fn decrease_rate(mut self, min: Sample, max: Sample) -> Self {
        self.decr = (min, max);
        self
    }

    /// Allows wrap-around (`w = allowed`).
    pub fn wrap_allowed(mut self) -> Self {
        self.wrap = Wrap::Allowed;
        self
    }

    /// Sets wrap-around permission explicitly.
    pub fn wrap(mut self, wrap: Wrap) -> Self {
        self.wrap = wrap;
        self
    }

    /// Validates against Table 1 and produces the parameter set.
    ///
    /// # Errors
    ///
    /// * [`Error::EmptyRange`] unless `smax > smin`;
    /// * [`Error::NegativeRate`] / [`Error::InvertedRateBand`] for bad
    ///   bands;
    /// * [`Error::Unclassifiable`] if both bands are `[0, 0]` (no class of
    ///   the scheme allows a signal that can never change).
    pub fn build(self) -> Result<ContinuousParams, Error> {
        if self.smax <= self.smin {
            return Err(Error::EmptyRange {
                smin: self.smin,
                smax: self.smax,
            });
        }
        let incr = RateBand::new(RateDirection::Increase, self.incr.0, self.incr.1)?;
        let decr = RateBand::new(RateDirection::Decrease, self.decr.0, self.decr.1)?;
        let class = ContinuousParams::classify_bands(incr, decr)?;
        Ok(ContinuousParams {
            smin: self.smin,
            smax: self.smax,
            incr,
            decr,
            wrap: self.wrap,
            class,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(smin: Sample, smax: Sample) -> ContinuousParamsBuilder {
        ContinuousParams::builder(smin, smax)
    }

    #[test]
    fn static_monotonic_increasing() {
        let params = p(0, 100).increase_rate(5, 5).build().unwrap();
        assert_eq!(
            params.classify(),
            SignalClass::continuous_static_monotonic()
        );
    }

    #[test]
    fn static_monotonic_decreasing() {
        let params = p(0, 100).decrease_rate(3, 3).build().unwrap();
        assert_eq!(
            params.classify(),
            SignalClass::continuous_static_monotonic()
        );
    }

    #[test]
    fn dynamic_monotonic_increasing() {
        let params = p(0, 100).increase_rate(0, 7).build().unwrap();
        assert_eq!(
            params.classify(),
            SignalClass::continuous_dynamic_monotonic()
        );
    }

    #[test]
    fn dynamic_monotonic_decreasing_with_positive_min() {
        let params = p(0, 100).decrease_rate(1, 7).build().unwrap();
        assert_eq!(
            params.classify(),
            SignalClass::continuous_dynamic_monotonic()
        );
    }

    #[test]
    fn random_when_both_directions_possible() {
        let params = p(0, 100)
            .increase_rate(0, 4)
            .decrease_rate(0, 9)
            .build()
            .unwrap();
        assert_eq!(params.classify(), SignalClass::continuous_random());
    }

    #[test]
    fn random_with_fixed_step_both_ways() {
        // Both bands are [2, 2]: not monotonic, so the scheme calls it
        // random even though each step has a fixed magnitude.
        let params = p(0, 100)
            .increase_rate(2, 2)
            .decrease_rate(2, 2)
            .build()
            .unwrap();
        assert_eq!(params.classify(), SignalClass::continuous_random());
    }

    #[test]
    fn rejects_empty_range() {
        assert_eq!(
            p(10, 10).increase_rate(1, 1).build().unwrap_err(),
            Error::EmptyRange { smin: 10, smax: 10 }
        );
        assert!(matches!(
            p(10, 5).increase_rate(1, 1).build().unwrap_err(),
            Error::EmptyRange { .. }
        ));
    }

    #[test]
    fn rejects_inverted_band() {
        assert!(matches!(
            p(0, 10).increase_rate(5, 2).build().unwrap_err(),
            Error::InvertedRateBand {
                direction: RateDirection::Increase,
                ..
            }
        ));
    }

    #[test]
    fn rejects_negative_rates() {
        assert!(matches!(
            p(0, 10).decrease_rate(-1, 2).build().unwrap_err(),
            Error::NegativeRate {
                direction: RateDirection::Decrease,
                ..
            }
        ));
    }

    #[test]
    fn rejects_frozen_signal() {
        assert_eq!(p(0, 10).build().unwrap_err(), Error::Unclassifiable);
    }

    #[test]
    fn wrap_default_not_allowed() {
        let params = p(0, 10).increase_rate(1, 1).build().unwrap();
        assert_eq!(params.wrap(), Wrap::NotAllowed);
        let wrapping = p(0, 10).increase_rate(1, 1).wrap_allowed().build().unwrap();
        assert!(wrapping.wrap().is_allowed());
    }

    #[test]
    fn accessors_round_trip() {
        let params = p(-50, 50)
            .increase_rate(1, 4)
            .decrease_rate(2, 8)
            .build()
            .unwrap();
        assert_eq!(params.smin(), -50);
        assert_eq!(params.smax(), 50);
        assert_eq!(params.span(), 100);
        assert_eq!(params.increase().min(), 1);
        assert_eq!(params.increase().max(), 4);
        assert_eq!(params.decrease().min(), 2);
        assert_eq!(params.decrease().max(), 8);
        assert!(params.in_range(0));
        assert!(!params.in_range(51));
        assert_eq!(params.clamp(1000), 50);
        assert_eq!(params.clamp(-1000), -50);
    }

    #[test]
    fn rate_band_contains() {
        let band = RateBand::new(RateDirection::Increase, 2, 5).unwrap();
        assert!(!band.contains(1));
        assert!(band.contains(2));
        assert!(band.contains(5));
        assert!(!band.contains(6));
        assert!(RateBand::ZERO.contains(0));
    }
}
