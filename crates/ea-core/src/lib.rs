//! Signal classification and executable assertions for data-error detection.
//!
//! This crate implements the primary contribution of Martin Hiller,
//! *Executable Assertions for Detecting Data Errors in Embedded Control
//! Systems* (DSN 2000): a rigorous classification scheme for software
//! signals, plus **generic error-detection algorithms that are instantiated
//! with parameters alone** — the "executable assertions" of the title.
//!
//! # The classification scheme (paper Figure 1)
//!
//! ```text
//!                      ┌ Continuous ┬ Monotonic ┬ Static rate
//!                      │            │           └ Dynamic rate
//!            Signals ──┤            └ Random
//!                      │
//!                      └ Discrete ──┬ Sequential ┬ Linear
//!                                   │            └ Non-linear
//!                                   └ Random
//! ```
//!
//! Every *continuous* signal is characterised by a seven-parameter set
//! `P_cont = {smax, smin, rmin_incr, rmax_incr, rmin_decr, rmax_decr, w}`
//! ([`ContinuousParams`]); each class constrains the parameters as given by
//! paper Table 1. Every *discrete* signal is characterised by
//! `P_disc = {D, T(d)}` — a valid domain and per-value transition sets
//! ([`DiscreteParams`]). The error-detection tests themselves are the fixed
//! procedures of paper Tables 2 and 3, implemented in [`assert_cont`] and
//! [`assert_disc`]; a violation of any constraint is interpreted as the
//! detection of an error.
//!
//! # Layered API
//!
//! * the raw assertion procedures: [`assert_cont::check`],
//!   [`assert_disc::check`] — pure functions over `(previous, current,
//!   params)`;
//! * a stateful per-signal wrapper: [`SignalMonitor`] — remembers the
//!   previous sample, the current [`Mode`], and applies a
//!   [`RecoveryStrategy`] when a violation is found;
//! * a whole-system bank: [`DetectorBank`] — owns many monitors, timestamps
//!   detections, and exposes the detection log that a fault-injection
//!   harness (or a real digital output pin) would observe;
//! * the placement *process* of paper Section 2.3: [`process`] walks the
//!   eight steps from signal inventory over FMECA-style criticality ranking
//!   to an [`process::InstrumentationPlan`];
//! * the coverage algebra of paper Section 2.4:
//!   [`coverage::CoverageModel`] computes
//!   `Pdetect = (Pen·Pprop + Pem)·Pds`, and [`stats`] provides the
//!   coverage estimators (with 95 % confidence intervals) used in the
//!   paper's Tables 7 and 9.
//!
//! # Example
//!
//! ```
//! use ea_core::prelude::*;
//!
//! // A wheel-speed style continuous random signal in [0, 3000] with a
//! // bounded change rate of 50 units per test.
//! let params = ContinuousParams::builder(0, 3000)
//!     .increase_rate(0, 50)
//!     .decrease_rate(0, 50)
//!     .build()?;
//! assert_eq!(params.classify(), SignalClass::continuous_random());
//!
//! let mut speed = SignalMonitor::continuous("wheel_speed", params);
//! assert!(speed.check(100).is_ok());
//! assert!(speed.check(140).is_ok());
//! // A bit flip in the most significant byte is caught as a range error.
//! let violation = speed.check(140 + (1 << 12)).unwrap_err();
//! assert_eq!(violation.kind(), ViolationKind::AboveMaximum);
//! # Ok::<(), ea_core::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assert_cont;
pub mod assert_disc;
pub mod class;
pub mod cont;
pub mod cost;
pub mod coverage;
pub mod detector;
pub mod disc;
pub mod dynamic;
pub mod error;
pub mod mode;
pub mod monitor;
pub mod prelude;
pub mod process;
pub mod recovery;
pub mod stats;
pub mod verdict;

pub use class::{ContinuousKind, DiscreteKind, MonotonicRate, SequentialKind, SignalClass};
pub use cont::{ContinuousParams, ContinuousParamsBuilder, Wrap};
pub use cost::CheckCost;
pub use detector::{DetectionEvent, DetectorBank, DivergenceMeta, MonitorId};
pub use disc::DiscreteParams;
pub use dynamic::{DynamicParams, RateProfile};
pub use error::Error;
pub use mode::{Mode, ModedParams, Params};
pub use monitor::SignalMonitor;
pub use process::{
    Criticality, InstrumentationPlan, InstrumentationProcess, Placement, SignalRecord, SignalRole,
};
pub use recovery::RecoveryStrategy;
pub use verdict::{Pass, Violation, ViolationKind};

/// The sample type accepted by every assertion in this crate.
///
/// The paper's case study uses 16-bit signals; using a wide signed integer
/// keeps the assertion algebra (differences, wrap-around distances) exact
/// for any source width up to 32 bits without forcing a generic API on
/// users. Narrower integers convert losslessly with `i64::from`.
pub type Sample = i64;

/// Discrete time in milliseconds, the resolution of the paper's target
/// system clock (`mscnt`).
pub type Millis = u64;
