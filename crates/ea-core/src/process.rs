//! The eight-step instrumentation process of paper Section 2.3.
//!
//! > 1. Identify the input and output signals of the system.
//! > 2. Identify the signal pathways from each input signal through the
//! >    system and to one or more output signals.
//! > 3. Identify internally generated signals that have a direct influence
//! >    on intermediate and output signals.
//! > 4. Determine which of the identified signals are the most crucial for
//! >    flawless operation (e.g. by using FMECA).
//! > 5. Classify each signal found in (4).
//! > 6. Determine values for the characterising parameters.
//! > 7. Decide on locations for the mechanisms.
//! > 8. Incorporate the mechanisms in the system.
//!
//! [`InstrumentationProcess`] walks these steps and produces an
//! [`InstrumentationPlan`], which step 8 turns into a ready
//! [`DetectorBank`] plus a placement table (the paper's Table 4).

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use crate::detector::DetectorBank;
use crate::error::Error;
use crate::mode::{ModedParams, Params};
use crate::monitor::SignalMonitor;
use crate::recovery::RecoveryStrategy;

/// How a signal relates to the system boundary (steps 1 and 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SignalRole {
    /// Arrives from a sensor or another system.
    Input,
    /// Leaves towards an actuator or another system.
    Output,
    /// Internally generated with direct influence on other signals.
    Internal,
}

/// One signal of the inventory.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SignalRecord {
    /// Signal name (unique within the inventory).
    pub name: String,
    /// Boundary role.
    pub role: SignalRole,
    /// Module that produces the signal.
    pub producer: String,
    /// Module that consumes the signal.
    pub consumer: String,
}

/// FMECA-style criticality scores for one signal (step 4).
///
/// The classic Risk Priority Number uses severity × occurrence ×
/// detection-difficulty; we keep the three factors on the customary 1–10
/// scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Criticality {
    /// Consequence severity of a failure caused by this signal (1–10).
    pub severity: u8,
    /// Likelihood of errors affecting this signal (1–10).
    pub occurrence: u8,
    /// Difficulty of detecting the failure without a mechanism (1–10).
    pub detection_difficulty: u8,
}

impl Criticality {
    /// The risk priority number `S × O × D`.
    pub fn rpn(&self) -> u32 {
        u32::from(self.severity) * u32::from(self.occurrence) * u32::from(self.detection_difficulty)
    }
}

/// A completed placement decision for one monitored signal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// The monitored signal.
    pub signal: SignalRecord,
    /// Criticality that justified monitoring it.
    pub criticality: Criticality,
    /// The parameter family (steps 5 and 6 combined: the class is implied
    /// by the parameters).
    pub params: ModedParams,
    /// The module in which the executable assertion runs (step 7).
    pub test_location: String,
    /// Recovery behaviour on detection.
    pub recovery: RecoveryStrategy,
}

/// The finished plan: everything needed to incorporate the mechanisms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstrumentationPlan {
    placements: Vec<Placement>,
}

impl InstrumentationPlan {
    /// The placement decisions, in planning order.
    pub fn placements(&self) -> &[Placement] {
        &self.placements
    }

    /// Step 8: instantiate the detector bank from the plan.
    ///
    /// Monitors are created in placement order, so `MonitorId(i)`
    /// corresponds to `placements()[i]` — in the paper's case study,
    /// EA1–EA7 in Table 6 order.
    pub fn build_bank(&self) -> DetectorBank {
        let mut bank = DetectorBank::new();
        for placement in &self.placements {
            let monitor =
                SignalMonitor::new(placement.signal.name.clone(), placement.params.clone())
                    .with_recovery(placement.recovery);
            bank.add(monitor);
        }
        bank
    }

    /// Renders the paper's Table 4 layout: signal, producer, consumer,
    /// test location, class.
    pub fn placement_table(&self) -> String {
        let mut out = String::from("Signal | Producer | Consumer | Test location | Class\n");
        for p in &self.placements {
            let class = p
                .params
                .params_for(p.params.initial_mode())
                .map(Params::classify)
                .expect("initial mode always present");
            out.push_str(&format!(
                "{} | {} | {} | {} | {}\n",
                p.signal.name, p.signal.producer, p.signal.consumer, p.test_location, class
            ));
        }
        out
    }
}

/// Walks the eight steps; methods enforce the step order at runtime.
#[derive(Debug, Clone, Default)]
pub struct InstrumentationProcess {
    inventory: BTreeMap<String, SignalRecord>,
    pathways: BTreeSet<(String, String)>,
    criticality: BTreeMap<String, Criticality>,
    selected: BTreeSet<String>,
    placements: Vec<Placement>,
}

impl InstrumentationProcess {
    /// An empty process (before step 1).
    pub fn new() -> Self {
        InstrumentationProcess::default()
    }

    /// Steps 1 and 3: register a signal of the system.
    ///
    /// Re-registering a name replaces the previous record.
    pub fn register_signal(
        &mut self,
        name: impl Into<String>,
        role: SignalRole,
        producer: impl Into<String>,
        consumer: impl Into<String>,
    ) -> &mut Self {
        let name = name.into();
        self.inventory.insert(
            name.clone(),
            SignalRecord {
                name,
                role,
                producer: producer.into(),
                consumer: consumer.into(),
            },
        );
        self
    }

    /// Step 2: record that errors in `from` can propagate to `to`.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownSignal`] if either endpoint is not registered.
    pub fn add_pathway(&mut self, from: &str, to: &str) -> Result<&mut Self, Error> {
        for name in [from, to] {
            if !self.inventory.contains_key(name) {
                return Err(Error::UnknownSignal {
                    name: name.to_owned(),
                });
            }
        }
        self.pathways.insert((from.to_owned(), to.to_owned()));
        Ok(self)
    }

    /// All signals transitively influenced by `name` (pathway closure).
    pub fn influence_of(&self, name: &str) -> BTreeSet<String> {
        let mut reached = BTreeSet::new();
        let mut frontier = vec![name.to_owned()];
        while let Some(current) = frontier.pop() {
            for (from, to) in &self.pathways {
                if *from == current && reached.insert(to.clone()) {
                    frontier.push(to.clone());
                }
            }
        }
        reached
    }

    /// Step 4 (scoring): attach FMECA scores to a signal.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownSignal`] for an unregistered name.
    pub fn score(&mut self, name: &str, criticality: Criticality) -> Result<&mut Self, Error> {
        if !self.inventory.contains_key(name) {
            return Err(Error::UnknownSignal {
                name: name.to_owned(),
            });
        }
        self.criticality.insert(name.to_owned(), criticality);
        Ok(self)
    }

    /// Step 4 (selection): mark every scored signal with
    /// `RPN ≥ threshold` as service critical.
    ///
    /// Returns the selected names in descending RPN order.
    pub fn select_critical(&mut self, threshold: u32) -> Vec<String> {
        let mut scored: Vec<(&String, u32)> = self
            .criticality
            .iter()
            .map(|(name, c)| (name, c.rpn()))
            .filter(|(_, rpn)| *rpn >= threshold)
            .collect();
        scored.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        self.selected = scored.iter().map(|(name, _)| (*name).clone()).collect();
        scored.into_iter().map(|(name, _)| name.clone()).collect()
    }

    /// Explicit selection variant of step 4 (e.g. when the FMECA was done
    /// outside this tool).
    ///
    /// # Errors
    ///
    /// [`Error::UnknownSignal`] for an unregistered name. Signals without
    /// scores get a default maximal criticality.
    pub fn select_by_name<I, S>(&mut self, names: I) -> Result<(), Error>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        for name in names {
            let name = name.into();
            if !self.inventory.contains_key(&name) {
                return Err(Error::UnknownSignal { name });
            }
            self.criticality.entry(name.clone()).or_insert(Criticality {
                severity: 10,
                occurrence: 10,
                detection_difficulty: 10,
            });
            self.selected.insert(name);
        }
        Ok(())
    }

    /// Steps 5–7: classify a selected signal (the class is carried by the
    /// parameters), fix its parameters, and decide the test location.
    ///
    /// # Errors
    ///
    /// * [`Error::UnknownSignal`] if the signal is unregistered;
    /// * [`Error::ProcessOrder`] if the signal was never selected in
    ///   step 4.
    pub fn place(
        &mut self,
        name: &str,
        params: ModedParams,
        test_location: impl Into<String>,
        recovery: RecoveryStrategy,
    ) -> Result<&mut Self, Error> {
        let record = self
            .inventory
            .get(name)
            .cloned()
            .ok_or_else(|| Error::UnknownSignal {
                name: name.to_owned(),
            })?;
        if !self.selected.contains(name) {
            return Err(Error::ProcessOrder {
                detail: "place() before the signal was selected in step 4",
            });
        }
        let criticality = self.criticality[name];
        self.placements.push(Placement {
            signal: record,
            criticality,
            params,
            test_location: test_location.into(),
            recovery,
        });
        Ok(self)
    }

    /// Finishes the process, yielding the plan for step 8.
    ///
    /// # Errors
    ///
    /// [`Error::ProcessOrder`] if some selected signal has no placement —
    /// the process demands that every service-critical signal be covered.
    pub fn finish(self) -> Result<InstrumentationPlan, Error> {
        let placed: BTreeSet<&str> = self
            .placements
            .iter()
            .map(|p| p.signal.name.as_str())
            .collect();
        for name in &self.selected {
            if !placed.contains(name.as_str()) {
                return Err(Error::ProcessOrder {
                    detail: "finish() with a selected signal still unplaced",
                });
            }
        }
        Ok(InstrumentationPlan {
            placements: self.placements,
        })
    }

    /// The signal inventory gathered so far.
    pub fn inventory(&self) -> impl Iterator<Item = &SignalRecord> {
        self.inventory.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cont::ContinuousParams;

    fn speed_params() -> ModedParams {
        ModedParams::new(
            0,
            ContinuousParams::builder(0, 100)
                .increase_rate(0, 5)
                .decrease_rate(0, 5)
                .build()
                .unwrap(),
        )
    }

    fn crit(s: u8, o: u8, d: u8) -> Criticality {
        Criticality {
            severity: s,
            occurrence: o,
            detection_difficulty: d,
        }
    }

    #[test]
    fn rpn_multiplies() {
        assert_eq!(crit(10, 5, 2).rpn(), 100);
    }

    #[test]
    fn full_walkthrough_produces_bank() {
        let mut proc = InstrumentationProcess::new();
        proc.register_signal("sensor", SignalRole::Input, "SENSE", "CTRL")
            .register_signal("cmd", SignalRole::Output, "CTRL", "ACT");
        proc.add_pathway("sensor", "cmd").unwrap();
        proc.score("sensor", crit(9, 6, 8)).unwrap();
        proc.score("cmd", crit(10, 5, 9)).unwrap();
        let selected = proc.select_critical(100);
        assert_eq!(selected.len(), 2);
        // cmd has RPN 450, sensor 432: descending order.
        assert_eq!(selected[0], "cmd");
        proc.place(
            "sensor",
            speed_params(),
            "CTRL",
            RecoveryStrategy::HoldPrevious,
        )
        .unwrap();
        proc.place("cmd", speed_params(), "ACT", RecoveryStrategy::Clamp)
            .unwrap();
        let plan = proc.finish().unwrap();
        assert_eq!(plan.placements().len(), 2);
        let bank = plan.build_bank();
        assert_eq!(bank.len(), 2);
        assert!(bank.find("sensor").is_some());
        assert!(bank.find("cmd").is_some());
    }

    #[test]
    fn pathway_requires_registered_signals() {
        let mut proc = InstrumentationProcess::new();
        proc.register_signal("a", SignalRole::Input, "M", "N");
        assert!(matches!(
            proc.add_pathway("a", "ghost").unwrap_err(),
            Error::UnknownSignal { .. }
        ));
    }

    #[test]
    fn influence_closure_is_transitive() {
        let mut proc = InstrumentationProcess::new();
        for name in ["a", "b", "c", "d"] {
            proc.register_signal(name, SignalRole::Internal, "M", "M");
        }
        proc.add_pathway("a", "b").unwrap();
        proc.add_pathway("b", "c").unwrap();
        proc.add_pathway("d", "a").unwrap();
        let influence = proc.influence_of("a");
        assert!(influence.contains("b"));
        assert!(influence.contains("c"));
        assert!(!influence.contains("d"));
        assert!(!influence.contains("a"));
    }

    #[test]
    fn threshold_filters_selection() {
        let mut proc = InstrumentationProcess::new();
        proc.register_signal("hot", SignalRole::Internal, "M", "M")
            .register_signal("cold", SignalRole::Internal, "M", "M");
        proc.score("hot", crit(10, 10, 10)).unwrap();
        proc.score("cold", crit(1, 1, 1)).unwrap();
        let selected = proc.select_critical(500);
        assert_eq!(selected, vec!["hot".to_owned()]);
    }

    #[test]
    fn place_requires_selection() {
        let mut proc = InstrumentationProcess::new();
        proc.register_signal("a", SignalRole::Input, "M", "N");
        let err = proc
            .place("a", speed_params(), "N", RecoveryStrategy::None)
            .unwrap_err();
        assert!(matches!(err, Error::ProcessOrder { .. }));
    }

    #[test]
    fn finish_requires_full_coverage_of_selection() {
        let mut proc = InstrumentationProcess::new();
        proc.register_signal("a", SignalRole::Input, "M", "N");
        proc.select_by_name(["a"]).unwrap();
        let err = proc.finish().unwrap_err();
        assert!(matches!(err, Error::ProcessOrder { .. }));
    }

    #[test]
    fn select_by_name_validates() {
        let mut proc = InstrumentationProcess::new();
        assert!(matches!(
            proc.select_by_name(["ghost"]).unwrap_err(),
            Error::UnknownSignal { .. }
        ));
    }

    #[test]
    fn placement_table_mentions_class_notation() {
        let mut proc = InstrumentationProcess::new();
        proc.register_signal("v", SignalRole::Input, "SENSE", "CTRL");
        proc.select_by_name(["v"]).unwrap();
        proc.place("v", speed_params(), "CTRL", RecoveryStrategy::HoldPrevious)
            .unwrap();
        let plan = proc.finish().unwrap();
        let table = plan.placement_table();
        assert!(table.contains("Co/Ra"));
        assert!(table.contains("SENSE"));
    }
}
