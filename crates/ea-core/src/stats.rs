//! Coverage estimators and latency aggregation for fault-injection
//! experiments.
//!
//! The paper computes `P(d) = nd/ne` style estimates with 95 % confidence
//! intervals "according to the formulas for coverage estimation in
//! [Powell et al. 1995]". For a simple-sampling campaign those reduce to
//! binomial proportion estimates; we provide both the normal
//! approximation the paper's ± notation suggests and the Wilson score
//! interval (better behaved near 0 and 1).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::Millis;

/// Two-sided z quantile for 95 % confidence.
pub const Z_95: f64 = 1.959_963_985;

/// A detected/total proportion with its estimator machinery.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Proportion {
    detected: u64,
    total: u64,
}

impl Proportion {
    /// Creates a proportion from counts (`detected ≤ total` is clamped).
    pub fn new(detected: u64, total: u64) -> Self {
        Proportion {
            detected: detected.min(total),
            total,
        }
    }

    /// Adds one trial with the given outcome.
    pub fn record(&mut self, detected: bool) {
        self.total += 1;
        if detected {
            self.detected += 1;
        }
    }

    /// Merges another proportion (e.g. partial campaign results).
    pub fn merge(&mut self, other: Proportion) {
        self.detected += other.detected;
        self.total += other.total;
    }

    /// Numerator `nd`.
    pub const fn detected(&self) -> u64 {
        self.detected
    }

    /// Denominator `ne`.
    pub const fn total(&self) -> u64 {
        self.total
    }

    /// Whether no trial has been recorded.
    pub const fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The point estimate `nd/ne`, or `None` with no trials.
    pub fn estimate(&self) -> Option<f64> {
        (self.total > 0).then(|| self.detected as f64 / self.total as f64)
    }

    /// Normal-approximation half-width `z·√(p(1−p)/n)`.
    ///
    /// This is the ± the paper prints next to every percentage; it is
    /// zero (and the paper prints no interval) when the estimate is
    /// exactly 0 or 1.
    pub fn half_width_normal(&self, z: f64) -> Option<f64> {
        let p = self.estimate()?;
        let n = self.total as f64;
        Some(z * (p * (1.0 - p) / n).sqrt())
    }

    /// Wilson score interval `(lo, hi)` at quantile `z`.
    pub fn interval_wilson(&self, z: f64) -> Option<(f64, f64)> {
        let p = self.estimate()?;
        let n = self.total as f64;
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let centre = (p + z2 / (2.0 * n)) / denom;
        let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
        Some(((centre - half).max(0.0), (centre + half).min(1.0)))
    }

    /// Statistical equivalence gate for golden-table regression checks:
    /// two proportions are equivalent when their Wilson score intervals
    /// at quantile `z` overlap (Powell-style coverage estimation gives
    /// each campaign measurement an interval, not a point; two runs of
    /// the same system should produce overlapping intervals, while a
    /// disabled detector collapses a cell to 0 far outside the golden
    /// interval). Two empty proportions are equivalent; an empty one
    /// never matches a populated one.
    pub fn equivalent(&self, other: &Proportion, z: f64) -> bool {
        match (self.interval_wilson(z), other.interval_wilson(z)) {
            (None, None) => true,
            (Some((lo_a, hi_a)), Some((lo_b, hi_b))) => lo_a <= hi_b && lo_b <= hi_a,
            _ => false,
        }
    }

    /// Formats as the paper does: `55.5±4.1` (percent), or `100.0` with
    /// no interval when the estimate is degenerate, or `-` when empty.
    pub fn paper_cell(&self) -> String {
        match self.estimate() {
            None => "-".to_owned(),
            Some(p) if p == 0.0 && self.detected == 0 => {
                // The paper leaves cells with no detection empty.
                "-".to_owned()
            }
            Some(p) if p == 1.0 || p == 0.0 => format!("{:.1}", p * 100.0),
            Some(p) => {
                let half = self
                    .half_width_normal(Z_95)
                    .expect("estimate exists, so does the half-width");
                format!("{:.1}±{:.1}", p * 100.0, half * 100.0)
            }
        }
    }
}

impl fmt::Display for Proportion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.detected, self.total)
    }
}

/// Min / average / max aggregation of detection latencies, in
/// milliseconds (the paper's Table 8 cells).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    count: u64,
    sum: u128,
    min: Option<Millis>,
    max: Option<Millis>,
}

impl LatencyStats {
    /// An empty aggregation.
    pub fn new() -> Self {
        LatencyStats::default()
    }

    /// Records one latency observation.
    pub fn record(&mut self, latency: Millis) {
        self.count += 1;
        self.sum += u128::from(latency);
        self.min = Some(self.min.map_or(latency, |m| m.min(latency)));
        self.max = Some(self.max.map_or(latency, |m| m.max(latency)));
    }

    /// Merges another aggregation.
    pub fn merge(&mut self, other: LatencyStats) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }

    /// Number of observations.
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// Minimum latency, if any observation was recorded.
    pub const fn min(&self) -> Option<Millis> {
        self.min
    }

    /// Maximum latency, if any observation was recorded.
    pub const fn max(&self) -> Option<Millis> {
        self.max
    }

    /// Mean latency, if any observation was recorded.
    pub fn average(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Tolerant comparison for golden-table regression checks: two
    /// latency aggregations are consistent when both are empty or their
    /// observed `[min, max]` ranges overlap. Latencies have no
    /// binomial interval, so range overlap is the per-cell tolerance.
    pub fn consistent_with(&self, other: &LatencyStats) -> bool {
        match ((self.min, self.max), (other.min, other.max)) {
            ((None, _), (None, _)) => true,
            ((Some(min_a), Some(max_a)), (Some(min_b), Some(max_b))) => {
                min_a <= max_b && min_b <= max_a
            }
            _ => false,
        }
    }

    /// Formats one Table 8 cell triple: `(min, avg, max)` or `-`.
    pub fn paper_cell(&self) -> String {
        match (self.min, self.average(), self.max) {
            (Some(min), Some(avg), Some(max)) => {
                format!("{min}/{avg:.0}/{max}")
            }
            _ => "-".to_owned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportion_estimate_and_counts() {
        let mut p = Proportion::new(0, 0);
        assert!(p.is_empty());
        assert_eq!(p.estimate(), None);
        p.record(true);
        p.record(false);
        p.record(true);
        p.record(true);
        assert_eq!(p.detected(), 3);
        assert_eq!(p.total(), 4);
        assert_eq!(p.estimate(), Some(0.75));
    }

    #[test]
    fn normal_half_width_matches_hand_computation() {
        // 222 of 400: p = 0.555, z·√(p(1−p)/400) ≈ 0.0487
        let p = Proportion::new(222, 400);
        let half = p.half_width_normal(Z_95).unwrap();
        assert!((half - 0.0487).abs() < 5e-4, "half = {half}");
    }

    #[test]
    fn degenerate_estimates_have_zero_width() {
        let all = Proportion::new(400, 400);
        assert_eq!(all.half_width_normal(Z_95), Some(0.0));
        assert_eq!(all.paper_cell(), "100.0");
        let none = Proportion::new(0, 400);
        assert_eq!(none.paper_cell(), "-");
    }

    #[test]
    fn wilson_interval_is_inside_unit_range_and_contains_estimate() {
        for (nd, ne) in [(0u64, 10u64), (1, 10), (5, 10), (10, 10), (399, 400)] {
            let p = Proportion::new(nd, ne);
            let (lo, hi) = p.interval_wilson(Z_95).unwrap();
            let est = p.estimate().unwrap();
            assert!((0.0..=1.0).contains(&lo));
            assert!((0.0..=1.0).contains(&hi));
            assert!(lo <= est + 1e-12 && est <= hi + 1e-12);
        }
    }

    #[test]
    fn paper_cell_formats_percentage_pm() {
        let p = Proportion::new(222, 400);
        let cell = p.paper_cell();
        assert!(cell.starts_with("55.5±"), "cell = {cell}");
    }

    #[test]
    fn merge_proportions() {
        let mut a = Proportion::new(3, 10);
        a.merge(Proportion::new(7, 10));
        assert_eq!(a.detected(), 10);
        assert_eq!(a.total(), 20);
    }

    #[test]
    fn clamps_impossible_counts() {
        let p = Proportion::new(10, 4);
        assert_eq!(p.detected(), 4);
    }

    #[test]
    fn latency_aggregation() {
        let mut l = LatencyStats::new();
        assert_eq!(l.average(), None);
        assert_eq!(l.paper_cell(), "-");
        for ms in [10, 30, 20] {
            l.record(ms);
        }
        assert_eq!(l.min(), Some(10));
        assert_eq!(l.max(), Some(30));
        assert_eq!(l.average(), Some(20.0));
        assert_eq!(l.count(), 3);
        assert_eq!(l.paper_cell(), "10/20/30");
    }

    #[test]
    fn latency_merge() {
        let mut a = LatencyStats::new();
        a.record(5);
        let mut b = LatencyStats::new();
        b.record(100);
        b.record(50);
        a.merge(b);
        assert_eq!(a.min(), Some(5));
        assert_eq!(a.max(), Some(100));
        assert_eq!(a.count(), 3);

        let mut empty = LatencyStats::new();
        empty.merge(a);
        assert_eq!(empty.min(), Some(5));
    }

    #[test]
    fn display_proportion() {
        assert_eq!(Proportion::new(3, 9).to_string(), "3/9");
    }

    #[test]
    fn powell_estimate_matches_hand_computation() {
        // Hand-computed per Powell et al. simple sampling: c^ = nd/ne,
        // half-width z·√(c^(1−c^)/ne).
        // nd = 130, ne = 200: c^ = 0.65,
        // √(0.65·0.35/200) = √0.0011375 = 0.03372684..., ×1.959963985
        // = 0.06610... .
        let p = Proportion::new(130, 200);
        assert_eq!(p.estimate(), Some(0.65));
        let half = p.half_width_normal(Z_95).unwrap();
        assert!((half - 0.066_103).abs() < 1e-5, "half = {half}");

        // nd = 45, ne = 50: c^ = 0.9, √(0.9·0.1/50) = 0.04242640...,
        // ×1.959963985 = 0.08315... .
        let p = Proportion::new(45, 50);
        let half = p.half_width_normal(Z_95).unwrap();
        assert!((half - 0.083_154).abs() < 1e-5, "half = {half}");
    }

    #[test]
    fn powell_wilson_matches_hand_computation() {
        // Wilson at nd = 8, ne = 10, z = 1.959963985:
        // centre = (0.8 + z²/20) / (1 + z²/10) = 0.99207.../1.38415...
        // half = (z/denom)·√(0.8·0.2/10 + z²/400)
        // → interval [0.490162, 0.943318].
        let p = Proportion::new(8, 10);
        let (lo, hi) = p.interval_wilson(Z_95).unwrap();
        assert!((lo - 0.490_162).abs() < 1e-5, "lo = {lo}");
        assert!((hi - 0.943_318).abs() < 1e-5, "hi = {hi}");
    }

    #[test]
    fn zero_trial_estimator_is_undefined() {
        let empty = Proportion::new(0, 0);
        assert_eq!(empty.estimate(), None);
        assert_eq!(empty.half_width_normal(Z_95), None);
        assert_eq!(empty.interval_wilson(Z_95), None);
        assert_eq!(empty.paper_cell(), "-");
    }

    #[test]
    fn all_detected_estimator_is_degenerate_but_wilson_is_not() {
        let all = Proportion::new(25, 25);
        assert_eq!(all.estimate(), Some(1.0));
        // Normal approximation collapses to zero width at c^ = 1...
        assert_eq!(all.half_width_normal(Z_95), Some(0.0));
        // ...while Wilson keeps an honest lower bound:
        // lo = ((1 + z²/50) − (z/denom-style half)) / (1 + z²/25)
        //    ≈ 0.866808 at ne = 25.
        let (lo, hi) = all.interval_wilson(Z_95).unwrap();
        assert!((lo - 0.866_808).abs() < 1e-5, "lo = {lo}");
        assert_eq!(hi, 1.0);
    }

    #[test]
    fn equivalent_accepts_overlapping_campaigns() {
        // Two campaigns of the same system: 20/25 and 23/25 detected.
        // Wilson intervals ≈ [0.609, 0.911] and [0.751, 0.977] overlap.
        let golden = Proportion::new(20, 25);
        let rerun = Proportion::new(23, 25);
        assert!(golden.equivalent(&rerun, Z_95));
        assert!(rerun.equivalent(&golden, Z_95));
    }

    #[test]
    fn equivalent_rejects_disabled_detector() {
        // Golden: 24/25 detected. Disabled detector: 0/25. The Wilson
        // intervals [0.804, 0.999] and [0.0, 0.133] are disjoint.
        let golden = Proportion::new(24, 25);
        let disabled = Proportion::new(0, 25);
        assert!(!golden.equivalent(&disabled, Z_95));
    }

    #[test]
    fn equivalent_handles_empty_cells() {
        let empty = Proportion::new(0, 0);
        assert!(empty.equivalent(&empty, Z_95));
        assert!(!empty.equivalent(&Proportion::new(3, 10), Z_95));
        assert!(!Proportion::new(3, 10).equivalent(&empty, Z_95));
    }

    #[test]
    fn latency_consistency_is_range_overlap() {
        let mut golden = LatencyStats::new();
        golden.record(4);
        golden.record(120);
        let mut overlapping = LatencyStats::new();
        overlapping.record(100);
        overlapping.record(400);
        let mut disjoint = LatencyStats::new();
        disjoint.record(10_000);
        assert!(golden.consistent_with(&overlapping));
        assert!(!golden.consistent_with(&disjoint));
        let empty = LatencyStats::new();
        assert!(empty.consistent_with(&empty));
        assert!(!empty.consistent_with(&golden));
        assert!(!golden.consistent_with(&empty));
    }
}
