//! Coverage estimators and latency aggregation for fault-injection
//! experiments.
//!
//! The paper computes `P(d) = nd/ne` style estimates with 95 % confidence
//! intervals "according to the formulas for coverage estimation in
//! [Powell et al. 1995]". For a simple-sampling campaign those reduce to
//! binomial proportion estimates; we provide both the normal
//! approximation the paper's ± notation suggests and the Wilson score
//! interval (better behaved near 0 and 1).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::Millis;

/// Two-sided z quantile for 95 % confidence.
pub const Z_95: f64 = 1.959_963_985;

/// A detected/total proportion with its estimator machinery.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Proportion {
    detected: u64,
    total: u64,
}

impl Proportion {
    /// Creates a proportion from counts (`detected ≤ total` is clamped).
    pub fn new(detected: u64, total: u64) -> Self {
        Proportion {
            detected: detected.min(total),
            total,
        }
    }

    /// Adds one trial with the given outcome.
    pub fn record(&mut self, detected: bool) {
        self.total += 1;
        if detected {
            self.detected += 1;
        }
    }

    /// Merges another proportion (e.g. partial campaign results).
    pub fn merge(&mut self, other: Proportion) {
        self.detected += other.detected;
        self.total += other.total;
    }

    /// Numerator `nd`.
    pub const fn detected(&self) -> u64 {
        self.detected
    }

    /// Denominator `ne`.
    pub const fn total(&self) -> u64 {
        self.total
    }

    /// Whether no trial has been recorded.
    pub const fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The point estimate `nd/ne`, or `None` with no trials.
    pub fn estimate(&self) -> Option<f64> {
        (self.total > 0).then(|| self.detected as f64 / self.total as f64)
    }

    /// Normal-approximation half-width `z·√(p(1−p)/n)`.
    ///
    /// This is the ± the paper prints next to every percentage; it is
    /// zero (and the paper prints no interval) when the estimate is
    /// exactly 0 or 1.
    pub fn half_width_normal(&self, z: f64) -> Option<f64> {
        let p = self.estimate()?;
        let n = self.total as f64;
        Some(z * (p * (1.0 - p) / n).sqrt())
    }

    /// Wilson score interval `(lo, hi)` at quantile `z`.
    pub fn interval_wilson(&self, z: f64) -> Option<(f64, f64)> {
        let p = self.estimate()?;
        let n = self.total as f64;
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let centre = (p + z2 / (2.0 * n)) / denom;
        let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
        Some(((centre - half).max(0.0), (centre + half).min(1.0)))
    }

    /// Formats as the paper does: `55.5±4.1` (percent), or `100.0` with
    /// no interval when the estimate is degenerate, or `-` when empty.
    pub fn paper_cell(&self) -> String {
        match self.estimate() {
            None => "-".to_owned(),
            Some(p) if p == 0.0 && self.detected == 0 => {
                // The paper leaves cells with no detection empty.
                "-".to_owned()
            }
            Some(p) if p == 1.0 || p == 0.0 => format!("{:.1}", p * 100.0),
            Some(p) => {
                let half = self
                    .half_width_normal(Z_95)
                    .expect("estimate exists, so does the half-width");
                format!("{:.1}±{:.1}", p * 100.0, half * 100.0)
            }
        }
    }
}

impl fmt::Display for Proportion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.detected, self.total)
    }
}

/// Min / average / max aggregation of detection latencies, in
/// milliseconds (the paper's Table 8 cells).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    count: u64,
    sum: u128,
    min: Option<Millis>,
    max: Option<Millis>,
}

impl LatencyStats {
    /// An empty aggregation.
    pub fn new() -> Self {
        LatencyStats::default()
    }

    /// Records one latency observation.
    pub fn record(&mut self, latency: Millis) {
        self.count += 1;
        self.sum += u128::from(latency);
        self.min = Some(self.min.map_or(latency, |m| m.min(latency)));
        self.max = Some(self.max.map_or(latency, |m| m.max(latency)));
    }

    /// Merges another aggregation.
    pub fn merge(&mut self, other: LatencyStats) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }

    /// Number of observations.
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// Minimum latency, if any observation was recorded.
    pub const fn min(&self) -> Option<Millis> {
        self.min
    }

    /// Maximum latency, if any observation was recorded.
    pub const fn max(&self) -> Option<Millis> {
        self.max
    }

    /// Mean latency, if any observation was recorded.
    pub fn average(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Formats one Table 8 cell triple: `(min, avg, max)` or `-`.
    pub fn paper_cell(&self) -> String {
        match (self.min, self.average(), self.max) {
            (Some(min), Some(avg), Some(max)) => {
                format!("{min}/{avg:.0}/{max}")
            }
            _ => "-".to_owned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportion_estimate_and_counts() {
        let mut p = Proportion::new(0, 0);
        assert!(p.is_empty());
        assert_eq!(p.estimate(), None);
        p.record(true);
        p.record(false);
        p.record(true);
        p.record(true);
        assert_eq!(p.detected(), 3);
        assert_eq!(p.total(), 4);
        assert_eq!(p.estimate(), Some(0.75));
    }

    #[test]
    fn normal_half_width_matches_hand_computation() {
        // 222 of 400: p = 0.555, z·√(p(1−p)/400) ≈ 0.0487
        let p = Proportion::new(222, 400);
        let half = p.half_width_normal(Z_95).unwrap();
        assert!((half - 0.0487).abs() < 5e-4, "half = {half}");
    }

    #[test]
    fn degenerate_estimates_have_zero_width() {
        let all = Proportion::new(400, 400);
        assert_eq!(all.half_width_normal(Z_95), Some(0.0));
        assert_eq!(all.paper_cell(), "100.0");
        let none = Proportion::new(0, 400);
        assert_eq!(none.paper_cell(), "-");
    }

    #[test]
    fn wilson_interval_is_inside_unit_range_and_contains_estimate() {
        for (nd, ne) in [(0u64, 10u64), (1, 10), (5, 10), (10, 10), (399, 400)] {
            let p = Proportion::new(nd, ne);
            let (lo, hi) = p.interval_wilson(Z_95).unwrap();
            let est = p.estimate().unwrap();
            assert!((0.0..=1.0).contains(&lo));
            assert!((0.0..=1.0).contains(&hi));
            assert!(lo <= est + 1e-12 && est <= hi + 1e-12);
        }
    }

    #[test]
    fn paper_cell_formats_percentage_pm() {
        let p = Proportion::new(222, 400);
        let cell = p.paper_cell();
        assert!(cell.starts_with("55.5±"), "cell = {cell}");
    }

    #[test]
    fn merge_proportions() {
        let mut a = Proportion::new(3, 10);
        a.merge(Proportion::new(7, 10));
        assert_eq!(a.detected(), 10);
        assert_eq!(a.total(), 20);
    }

    #[test]
    fn clamps_impossible_counts() {
        let p = Proportion::new(10, 4);
        assert_eq!(p.detected(), 4);
    }

    #[test]
    fn latency_aggregation() {
        let mut l = LatencyStats::new();
        assert_eq!(l.average(), None);
        assert_eq!(l.paper_cell(), "-");
        for ms in [10, 30, 20] {
            l.record(ms);
        }
        assert_eq!(l.min(), Some(10));
        assert_eq!(l.max(), Some(30));
        assert_eq!(l.average(), Some(20.0));
        assert_eq!(l.count(), 3);
        assert_eq!(l.paper_cell(), "10/20/30");
    }

    #[test]
    fn latency_merge() {
        let mut a = LatencyStats::new();
        a.record(5);
        let mut b = LatencyStats::new();
        b.record(100);
        b.record(50);
        a.merge(b);
        assert_eq!(a.min(), Some(5));
        assert_eq!(a.max(), Some(100));
        assert_eq!(a.count(), 3);

        let mut empty = LatencyStats::new();
        empty.merge(a);
        assert_eq!(empty.min(), Some(5));
    }

    #[test]
    fn display_proportion() {
        assert_eq!(Proportion::new(3, 9).to_string(), "3/9");
    }
}
