//! Recovery: returning a signal to a valid state after detection.
//!
//! The paper (Section 2): "Should an error be detected, measures can be
//! taken to recover from the error, and the signal can be returned to a
//! valid state." The strategies here are deliberately simple — they are
//! what a low-cost embedded system can afford per-signal.

use serde::{Deserialize, Serialize};

use crate::mode::Params;
use crate::verdict::{Violation, ViolationKind};
use crate::Sample;

/// How a monitor repairs a signal value after a violation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum RecoveryStrategy {
    /// Leave the erroneous value in place (detection only).
    None,
    /// Replace the value with the previous (assumed good) sample; falls
    /// back to clamping when there is no previous sample.
    #[default]
    HoldPrevious,
    /// Clamp a continuous value into `[smin, smax]`; for discrete signals
    /// fall back to the previous sample or any valid domain value.
    Clamp,
    /// Replace the value with a fixed, known-safe value.
    Force(Sample),
    /// Project the previous sample forward by the most plausible legal
    /// rate: previous + `rmin_incr` for rate violations upward, previous −
    /// `rmin_decr` downward. Approximates the "best estimate" recovery of
    /// model-based schemes while staying parameter-only.
    RateProject,
}

impl RecoveryStrategy {
    /// Computes the replacement value for a violated sample.
    ///
    /// Always returns a value that the parameters accept as a *fresh*
    /// observation (in range / in domain), so a recovered monitor can
    /// re-seed its history from it.
    pub fn recover(self, params: &Params, violation: &Violation) -> Sample {
        match self {
            RecoveryStrategy::None => violation.current(),
            RecoveryStrategy::Force(value) => value,
            RecoveryStrategy::HoldPrevious => match violation.previous() {
                Some(prev) => prev,
                None => fallback_valid(params, violation),
            },
            RecoveryStrategy::Clamp => fallback_valid(params, violation),
            RecoveryStrategy::RateProject => rate_project(params, violation),
        }
    }
}

/// A valid value with no history: clamp for continuous, previous-or-any
/// for discrete.
fn fallback_valid(params: &Params, violation: &Violation) -> Sample {
    match params {
        Params::Continuous(p) => p.clamp(violation.current()),
        Params::Discrete(p) => match violation.previous() {
            Some(prev) if p.in_domain(prev) => prev,
            _ => p.any_valid(),
        },
    }
}

fn rate_project(params: &Params, violation: &Violation) -> Sample {
    let Params::Continuous(p) = params else {
        return fallback_valid(params, violation);
    };
    let Some(prev) = violation.previous() else {
        return p.clamp(violation.current());
    };
    let projected = match violation.kind() {
        ViolationKind::IncreaseRate => prev + p.increase().min().max(0),
        ViolationKind::DecreaseRate => prev - p.decrease().min().max(0),
        ViolationKind::AboveMaximum => prev + p.increase().min(),
        ViolationKind::BelowMinimum => prev - p.decrease().min(),
        _ => prev,
    };
    p.clamp(projected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cont::ContinuousParams;
    use crate::disc::DiscreteParams;

    fn cont_params() -> Params {
        ContinuousParams::builder(0, 100)
            .increase_rate(2, 10)
            .decrease_rate(3, 10)
            .build()
            .unwrap()
            .into()
    }

    fn disc_params() -> Params {
        DiscreteParams::random([5, 6, 7]).unwrap().into()
    }

    #[test]
    fn none_keeps_the_bad_value() {
        let v = Violation::new(ViolationKind::AboveMaximum, 5000, Some(50));
        assert_eq!(RecoveryStrategy::None.recover(&cont_params(), &v), 5000);
    }

    #[test]
    fn hold_previous_restores_history() {
        let v = Violation::new(ViolationKind::AboveMaximum, 5000, Some(50));
        assert_eq!(
            RecoveryStrategy::HoldPrevious.recover(&cont_params(), &v),
            50
        );
    }

    #[test]
    fn hold_previous_without_history_clamps() {
        let v = Violation::new(ViolationKind::AboveMaximum, 5000, None);
        assert_eq!(
            RecoveryStrategy::HoldPrevious.recover(&cont_params(), &v),
            100
        );
    }

    #[test]
    fn clamp_continuous() {
        let v = Violation::new(ViolationKind::BelowMinimum, -44, Some(10));
        assert_eq!(RecoveryStrategy::Clamp.recover(&cont_params(), &v), 0);
    }

    #[test]
    fn clamp_discrete_prefers_previous_domain_value() {
        let v = Violation::new(ViolationKind::OutsideDomain, 9, Some(6));
        assert_eq!(RecoveryStrategy::Clamp.recover(&disc_params(), &v), 6);
        let v_no_hist = Violation::new(ViolationKind::OutsideDomain, 9, None);
        let recovered = RecoveryStrategy::Clamp.recover(&disc_params(), &v_no_hist);
        assert!([5, 6, 7].contains(&recovered));
    }

    #[test]
    fn force_is_unconditional() {
        let v = Violation::new(ViolationKind::OutsideDomain, 9, Some(6));
        assert_eq!(RecoveryStrategy::Force(7).recover(&disc_params(), &v), 7);
    }

    #[test]
    fn rate_project_steps_by_minimum_rate() {
        let v_up = Violation::new(ViolationKind::IncreaseRate, 90, Some(40));
        assert_eq!(
            RecoveryStrategy::RateProject.recover(&cont_params(), &v_up),
            42
        );
        let v_down = Violation::new(ViolationKind::DecreaseRate, 2, Some(40));
        assert_eq!(
            RecoveryStrategy::RateProject.recover(&cont_params(), &v_down),
            37
        );
    }

    #[test]
    fn rate_project_clamps_at_the_boundary() {
        let v = Violation::new(ViolationKind::AboveMaximum, 7000, Some(100));
        let recovered = RecoveryStrategy::RateProject.recover(&cont_params(), &v);
        assert_eq!(recovered, 100);
    }

    #[test]
    fn rate_project_on_discrete_falls_back() {
        let v = Violation::new(ViolationKind::OutsideDomain, 9, Some(6));
        assert_eq!(RecoveryStrategy::RateProject.recover(&disc_params(), &v), 6);
    }
}
