//! Convenience re-exports of the types most applications need.
//!
//! ```
//! use ea_core::prelude::*;
//! ```

pub use crate::class::{ContinuousKind, DiscreteKind, MonotonicRate, SequentialKind, SignalClass};
pub use crate::cont::{ContinuousParams, ContinuousParamsBuilder, Wrap};
pub use crate::coverage::CoverageModel;
pub use crate::detector::{DetectionEvent, DetectorBank, DivergenceMeta, MonitorId};
pub use crate::disc::DiscreteParams;
pub use crate::dynamic::{DynamicParams, RateProfile};
pub use crate::error::Error;
pub use crate::mode::{Mode, ModedParams, Params};
pub use crate::monitor::SignalMonitor;
pub use crate::process::{
    Criticality, InstrumentationPlan, InstrumentationProcess, Placement, SignalRecord, SignalRole,
};
pub use crate::recovery::RecoveryStrategy;
pub use crate::stats::{LatencyStats, Proportion, Z_95};
pub use crate::verdict::{Pass, Violation, ViolationKind};
pub use crate::{Millis, Sample};
