//! Stateful per-signal monitoring: one [`SignalMonitor`] per monitored
//! signal, holding the previous sample, current mode and recovery policy.

use serde::{Deserialize, Serialize};

use crate::error::Error;
use crate::mode::{Mode, ModedParams, Params};
use crate::recovery::RecoveryStrategy;
use crate::verdict::{Pass, Violation};
use crate::Sample;

/// The result of a successful [`SignalMonitor::check`] including recovery
/// information when a violation occurred but was repaired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Checked {
    /// Which test admitted the (possibly recovered) sample.
    pub pass: Pass,
    /// The value the monitor committed as the new "previous" sample.
    pub committed: Sample,
}

/// A stateful executable-assertion instance for one signal.
///
/// Wraps a [`ModedParams`] family with the signal's runtime state: the
/// previous sample `s'`, the current mode, and what to do on detection.
/// Each call to [`check`](Self::check) is one execution of the paper's
/// test routine for this signal.
///
/// # Example
///
/// ```
/// use ea_core::prelude::*;
///
/// let slot = DiscreteParams::linear(0..7, true)?;
/// let mut monitor = SignalMonitor::discrete("ms_slot_nbr", slot);
/// for expected in [0, 1, 2, 3] {
///     assert!(monitor.check(expected).is_ok());
/// }
/// // A bit flip turns 3 into 7: outside the domain.
/// assert!(monitor.check(7).is_err());
/// # Ok::<(), ea_core::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SignalMonitor {
    name: String,
    params: ModedParams,
    mode: Mode,
    previous: Option<Sample>,
    recovery: RecoveryStrategy,
    checks: u64,
    violations: u64,
}

impl SignalMonitor {
    /// Creates a monitor from a full per-mode parameter family.
    pub fn new(name: impl Into<String>, params: ModedParams) -> Self {
        let mode = params.initial_mode();
        SignalMonitor {
            name: name.into(),
            params,
            mode,
            previous: None,
            recovery: RecoveryStrategy::default(),
            checks: 0,
            violations: 0,
        }
    }

    /// Convenience constructor for a single-mode continuous signal.
    pub fn continuous(name: impl Into<String>, params: crate::ContinuousParams) -> Self {
        SignalMonitor::new(name, ModedParams::new(0, params))
    }

    /// Convenience constructor for a single-mode discrete signal.
    pub fn discrete(name: impl Into<String>, params: crate::DiscreteParams) -> Self {
        SignalMonitor::new(name, ModedParams::new(0, params))
    }

    /// Sets the recovery strategy applied on detection.
    #[must_use]
    pub fn with_recovery(mut self, recovery: RecoveryStrategy) -> Self {
        self.recovery = recovery;
        self
    }

    /// The signal name this monitor guards.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The current mode.
    pub const fn mode(&self) -> Mode {
        self.mode
    }

    /// The previous committed sample, if any.
    pub const fn previous(&self) -> Option<Sample> {
        self.previous
    }

    /// Total number of checks executed.
    pub const fn checks(&self) -> u64 {
        self.checks
    }

    /// Total number of violations detected.
    pub const fn violations(&self) -> u64 {
        self.violations
    }

    /// The active parameter set for the current mode.
    pub fn active_params(&self) -> &Params {
        self.params
            .params_for(self.mode)
            .expect("mode transitions are validated in set_mode")
    }

    /// Switches the signal to another operating mode.
    ///
    /// The previous-sample history is kept: the paper's scheme keys the
    /// constraint *set* by mode but the signal itself is continuous in
    /// time. Call [`reset`](Self::reset) too if the mode switch implies a
    /// discontinuity.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownMode`] if no parameter set is registered for
    /// `mode`.
    pub fn set_mode(&mut self, mode: Mode) -> Result<(), Error> {
        self.params.params_for(mode)?;
        self.mode = mode;
        Ok(())
    }

    /// Forgets the previous sample (e.g. after system reset).
    pub fn reset(&mut self) {
        self.previous = None;
    }

    /// Executes the executable assertion on one sample.
    ///
    /// On success the sample is committed as the new previous value. On
    /// violation the configured [`RecoveryStrategy`] computes a repaired
    /// value which is committed instead, and the violation is returned so
    /// the caller can log it, raise the detection pin, and (optionally)
    /// write the repaired value back with [`Self::last_committed`].
    #[inline]
    pub fn check(&mut self, sample: Sample) -> Result<Checked, Violation> {
        self.checks += 1;
        let params = self
            .params
            .params_for(self.mode)
            .expect("mode validated at set_mode");
        match params.check(self.previous, sample) {
            Ok(pass) => {
                self.previous = Some(sample);
                Ok(Checked {
                    pass,
                    committed: sample,
                })
            }
            Err(violation) => {
                self.violations += 1;
                let repaired = self.recovery.recover(params, &violation);
                self.previous = Some(repaired);
                Err(violation)
            }
        }
    }

    /// The value the monitor last committed (recovered value after a
    /// violation, the sample itself after a pass).
    pub const fn last_committed(&self) -> Option<Sample> {
        self.previous
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cont::ContinuousParams;
    use crate::disc::DiscreteParams;
    use crate::verdict::ViolationKind;

    fn speed_params() -> ContinuousParams {
        ContinuousParams::builder(0, 1000)
            .increase_rate(0, 50)
            .decrease_rate(0, 50)
            .build()
            .unwrap()
    }

    #[test]
    fn commits_good_samples_as_history() {
        let mut m = SignalMonitor::continuous("v", speed_params());
        m.check(100).unwrap();
        assert_eq!(m.previous(), Some(100));
        m.check(140).unwrap();
        assert_eq!(m.previous(), Some(140));
        assert_eq!(m.checks(), 2);
        assert_eq!(m.violations(), 0);
    }

    #[test]
    fn violation_recovers_history_with_default_strategy() {
        let mut m = SignalMonitor::continuous("v", speed_params());
        m.check(100).unwrap();
        let violation = m.check(900).unwrap_err();
        assert_eq!(violation.kind(), ViolationKind::IncreaseRate);
        // HoldPrevious: history stays at the last good value.
        assert_eq!(m.previous(), Some(100));
        assert_eq!(m.violations(), 1);
        // The next plausible sample is judged against the recovered value.
        assert!(m.check(120).is_ok());
    }

    #[test]
    fn recovery_none_poisons_history() {
        let mut m =
            SignalMonitor::continuous("v", speed_params()).with_recovery(RecoveryStrategy::None);
        m.check(100).unwrap();
        let _ = m.check(900).unwrap_err();
        assert_eq!(m.previous(), Some(900));
        // 900 -> 910 now looks like a small step and passes: exactly the
        // error-propagation hazard recovery exists to prevent.
        assert!(m.check(910).is_ok());
    }

    #[test]
    fn mode_switch_changes_constraints() {
        let tight = ContinuousParams::builder(0, 100)
            .increase_rate(0, 5)
            .decrease_rate(0, 5)
            .build()
            .unwrap();
        let wide = ContinuousParams::builder(0, 10_000)
            .increase_rate(0, 1000)
            .decrease_rate(0, 1000)
            .build()
            .unwrap();
        let moded = ModedParams::new(0, tight).with(1, wide);
        let mut m = SignalMonitor::new("pressure", moded);
        m.check(50).unwrap();
        assert!(m.check(500).is_err()); // violates tight mode
        m.set_mode(1).unwrap();
        assert!(m.check(450).is_ok()); // fine in wide mode
        assert!(m.set_mode(9).is_err());
        assert_eq!(m.mode(), 1);
    }

    #[test]
    fn reset_forgets_history() {
        let mut m = SignalMonitor::continuous("v", speed_params());
        m.check(100).unwrap();
        m.reset();
        assert_eq!(m.previous(), None);
        // A large jump after reset is only range-checked.
        assert!(m.check(990).is_ok());
    }

    #[test]
    fn discrete_monitor_tracks_transitions() {
        let mut m = SignalMonitor::discrete(
            "state",
            DiscreteParams::non_linear([(1, vec![2]), (2, vec![1])])
                .unwrap()
                .with_self_loops(),
        );
        assert!(m.check(1).is_ok());
        assert!(m.check(2).is_ok());
        assert!(m.check(2).is_ok()); // unchanged
        assert!(m.check(1).is_ok());
        let v = m.check(5).unwrap_err();
        assert_eq!(v.kind(), ViolationKind::OutsideDomain);
        // Recovery held the previous good state.
        assert_eq!(m.last_committed(), Some(1));
    }

    #[test]
    fn name_is_preserved() {
        let m = SignalMonitor::continuous("SetValue", speed_params());
        assert_eq!(m.name(), "SetValue");
    }
}
