//! Deterministic op-count cost model for the executable assertions.
//!
//! The DETOx line of work (see the repository's PAPERS.md) searches the
//! detection-probability-vs-CPU-overhead Pareto front over assertion
//! subsets. That search needs a *cost* per assertion that is stable
//! across hosts and runs — wall-clock samples alone drift with cache
//! state and CPU frequency. This module derives a deterministic cost
//! from the structure of each parameter set: how many comparisons and
//! bitmask probes one steady-state execution of the Table 2 / Table 3
//! procedure performs.
//!
//! The model counts the **worst-case passing path** with a previous
//! sample committed (the steady state of a monitored signal; the
//! first-sample path is strictly cheaper):
//!
//! * continuous ([`assert_cont`](crate::assert_cont)): tests 1 and 2
//!   (2 comparisons), status determination (2), the active rate-band
//!   test (2), plus the wrap fallback when `w = allowed` (1 flag test +
//!   2 band comparisons);
//! * discrete ([`assert_disc`](crate::assert_disc)) on the dense
//!   bitmask tables that every small-domain signal uses: `s ∈ D` is an
//!   offset check (2 comparisons) plus one mask probe, and the
//!   sequential transition test re-offsets both samples (4 comparisons)
//!   and probes two domain bits plus one transition bit. Random
//!   discrete signals skip the transition mask. Domains too wide for
//!   the dense tables fall back to B-tree lookups, modelled as
//!   `ceil(log2 |D|)` comparisons per probe;
//! * moded families add the mode lookup of
//!   [`ModedParams::params_for`]: one comparison for the single-mode
//!   common case, a full scan otherwise (worst case);
//! * dynamic refinements ([`DynamicParams`]) add the profile's
//!   knot-window scan on top of the static procedure.
//!
//! Costs are totalled as plain operation counts so callers can weight
//! comparisons and probes separately if their target's instruction
//! timings differ.

use serde::{Deserialize, Serialize};

use crate::cont::ContinuousParams;
use crate::disc::DiscreteParams;
use crate::dynamic::DynamicParams;
use crate::mode::{ModedParams, Params};
use crate::monitor::SignalMonitor;

/// Operation counts for one steady-state execution of an executable
/// assertion: the deterministic half of the profiling layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CheckCost {
    /// Scalar comparisons (range, status, rate-band, offset and mode
    /// tests).
    pub comparisons: u32,
    /// Bitmask probes against the dense domain/transition tables (or
    /// their B-tree equivalents, converted to comparison counts when
    /// the domain is too wide for the tables).
    pub mask_probes: u32,
}

impl CheckCost {
    /// The zero cost (used as the additive identity when summing).
    pub const ZERO: CheckCost = CheckCost {
        comparisons: 0,
        mask_probes: 0,
    };

    /// Total primitive operations, weighting probes like comparisons.
    pub const fn total_ops(self) -> u32 {
        self.comparisons + self.mask_probes
    }

    /// Component-wise sum.
    #[must_use]
    pub const fn plus(self, other: CheckCost) -> CheckCost {
        CheckCost {
            comparisons: self.comparisons + other.comparisons,
            mask_probes: self.mask_probes + other.mask_probes,
        }
    }
}

/// Cost of one steady-state Table 2 execution for `params`.
pub fn continuous_cost(params: &ContinuousParams) -> CheckCost {
    // Tests 1+2 (2), status (2), active band (2); wrap adds the flag
    // test plus the fallback band (test 4a/4b).
    let wrap = if params.wrap().is_allowed() { 3 } else { 0 };
    CheckCost {
        comparisons: 6 + wrap,
        mask_probes: 0,
    }
}

/// Cost of one steady-state Table 3 execution for `params`.
pub fn discrete_cost(params: &DiscreteParams) -> CheckCost {
    let domain = params.domain();
    let span_is_dense = match (domain.iter().next(), domain.iter().next_back()) {
        (Some(&min), Some(&max)) => max.checked_sub(min).is_some_and(|span| span < 64),
        _ => false,
    };
    if span_is_dense {
        // in_domain: offset (2) + domain probe (1).
        // transition_allowed: two offsets (4) + two domain probes + the
        // transition probe (sequential only).
        let transition_probes = if params.is_sequential() { 3 } else { 2 };
        CheckCost {
            comparisons: 6,
            mask_probes: 1 + transition_probes,
        }
    } else {
        // B-tree fallback: every probe is a tree descent of
        // ceil(log2 |D|) comparisons; in_domain runs one, the
        // transition test runs two domain lookups plus (sequential
        // only) a target-set lookup.
        let depth = usize::BITS - (domain.len().max(1) - 1).leading_zeros();
        let lookups = if params.is_sequential() { 4 } else { 3 };
        CheckCost {
            comparisons: lookups * depth.max(1),
            mask_probes: 0,
        }
    }
}

/// Cost of the [`Params::check`] dispatch for either flavour.
pub fn params_cost(params: &Params) -> CheckCost {
    match params {
        Params::Continuous(p) => continuous_cost(p),
        Params::Discrete(p) => discrete_cost(p),
    }
}

/// Cost of one check through a [`ModedParams`] family: the
/// `params_for` lookup plus the worst mode's assertion cost.
pub fn moded_cost(params: &ModedParams) -> CheckCost {
    let lookup = CheckCost {
        comparisons: params.mode_count() as u32,
        mask_probes: 0,
    };
    params
        .iter()
        .map(|(_, p)| params_cost(p))
        .max_by_key(|c| c.total_ops())
        .unwrap_or(CheckCost::ZERO)
        .plus(lookup)
}

/// Cost of one [`DynamicParams::check`]: the static procedure plus the
/// profile refinement (knot-window scan, 2 comparisons per window,
/// plus the final bound test).
pub fn dynamic_cost(params: &DynamicParams) -> CheckCost {
    let static_cost = continuous_cost(params.base());
    let profile_cost = |knots: usize| -> u32 {
        if knots == 0 {
            0
        } else {
            2 * knots as u32 + 1
        }
    };
    // Only one direction's profile runs per check; charge the pricier.
    let refinement = params
        .increase_profile_knots()
        .max(params.decrease_profile_knots());
    static_cost.plus(CheckCost {
        comparisons: profile_cost(refinement),
        mask_probes: 0,
    })
}

/// Cost of one [`SignalMonitor::check`]: the mode lookup (1 comparison
/// for the single-mode families all of the case study's EAs use) plus
/// the active parameter set's assertion cost.
pub fn monitor_cost(monitor: &SignalMonitor) -> CheckCost {
    params_cost(monitor.active_params()).plus(CheckCost {
        comparisons: 1,
        mask_probes: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cont(wrap: bool) -> ContinuousParams {
        let b = ContinuousParams::builder(0, 1_000)
            .increase_rate(0, 50)
            .decrease_rate(0, 50);
        if wrap { b.wrap_allowed() } else { b }.build().unwrap()
    }

    #[test]
    fn continuous_wrap_costs_more() {
        let plain = continuous_cost(&cont(false));
        let wrapping = continuous_cost(&cont(true));
        assert_eq!(plain.comparisons, 6);
        assert_eq!(wrapping.comparisons, 9);
        assert_eq!(plain.mask_probes, 0);
    }

    #[test]
    fn sequential_discrete_costs_one_probe_more_than_random() {
        let seq = DiscreteParams::linear(0..7, true).unwrap();
        let rand = DiscreteParams::random(0..7).unwrap();
        let seq_cost = discrete_cost(&seq);
        let rand_cost = discrete_cost(&rand);
        assert_eq!(seq_cost.comparisons, rand_cost.comparisons);
        assert_eq!(seq_cost.mask_probes, rand_cost.mask_probes + 1);
    }

    #[test]
    fn wide_domains_are_charged_tree_descents() {
        let wide = DiscreteParams::random((0..100).map(|k| k * 10)).unwrap();
        let cost = discrete_cost(&wide);
        assert_eq!(cost.mask_probes, 0);
        // 100 values → depth 7, three lookups.
        assert_eq!(cost.comparisons, 21);
    }

    #[test]
    fn moded_families_charge_lookup_plus_worst_mode() {
        let tight = cont(false);
        let moded = ModedParams::new(0, tight).with(1, cont(true));
        let cost = moded_cost(&moded);
        // Worst mode is the wrapping one (9) plus a 2-mode scan.
        assert_eq!(cost.comparisons, 11);
    }

    #[test]
    fn dynamic_refinement_adds_knot_scan() {
        use crate::dynamic::RateProfile;
        let base = cont(false);
        let plain = dynamic_cost(&DynamicParams::new(base));
        assert_eq!(plain, continuous_cost(&base));
        let refined = dynamic_cost(
            &DynamicParams::new(base)
                .with_increase_profile(RateProfile::new([(0, 50), (1_000, 5)]).unwrap()),
        );
        assert_eq!(refined.comparisons, plain.comparisons + 5);
    }

    #[test]
    fn monitor_cost_adds_the_mode_lookup() {
        let monitor = SignalMonitor::continuous("v", cont(false));
        assert_eq!(monitor_cost(&monitor).comparisons, 7);
    }

    #[test]
    fn costs_sum_component_wise() {
        let a = CheckCost {
            comparisons: 3,
            mask_probes: 1,
        };
        let b = CheckCost {
            comparisons: 4,
            mask_probes: 2,
        };
        let sum = a.plus(b);
        assert_eq!(sum.comparisons, 7);
        assert_eq!(sum.mask_probes, 3);
        assert_eq!(sum.total_ops(), 10);
        assert_eq!(CheckCost::ZERO.plus(a), a);
    }
}
