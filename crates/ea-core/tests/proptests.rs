//! Property-based tests on the assertion algebra of ea-core.
//!
//! Invariants exercised:
//! * legal trajectories (generated to satisfy the parameters) never fire;
//! * out-of-range samples always fire with the right violation kind;
//! * wrap-around arithmetic agrees with modular arithmetic on the circle;
//! * discrete walks along the transition graph never fire, jumps off the
//!   graph always do;
//! * recovery always commits a value acceptable to the parameters;
//! * the statistics estimators stay inside [0, 1] and contain the point
//!   estimate.

use ea_core::prelude::*;
use proptest::prelude::*;

/// Strategy for a valid continuous-random parameter set plus a legal
/// trajectory through it.
fn random_cont_params() -> impl Strategy<Value = ContinuousParams> {
    (
        -1000i64..1000,
        1i64..2000,
        0i64..10,
        0i64..50,
        0i64..10,
        0i64..50,
        any::<bool>(),
    )
        .prop_map(|(smin, span, imin, iextra, dmin, dextra, wrap)| {
            let builder = ContinuousParams::builder(smin, smin + span)
                .increase_rate(imin, imin + iextra + 1)
                .decrease_rate(dmin, dmin + dextra + 1);
            let builder = if wrap {
                builder.wrap_allowed()
            } else {
                builder
            };
            builder.build().expect("constructed within table 1 limits")
        })
}

proptest! {
    #[test]
    fn in_range_first_sample_never_fires(params in random_cont_params(), frac in 0.0f64..=1.0) {
        let value = params.smin()
            + ((params.span() as f64) * frac) as i64;
        prop_assert!(ea_core::assert_cont::check(&params, None, value).is_ok());
    }

    #[test]
    fn out_of_range_always_fires(params in random_cont_params(), excess in 1i64..100_000) {
        let above = params.smax() + excess;
        let below = params.smin() - excess;
        let v_above = ea_core::assert_cont::check(&params, None, above).unwrap_err();
        prop_assert_eq!(v_above.kind(), ViolationKind::AboveMaximum);
        let v_below = ea_core::assert_cont::check(&params, None, below).unwrap_err();
        prop_assert_eq!(v_below.kind(), ViolationKind::BelowMinimum);
    }

    #[test]
    fn legal_increase_passes(params in random_cont_params(), prev_frac in 0.0f64..=1.0, step_frac in 0.0f64..=1.0) {
        let incr = params.increase();
        let delta = incr.min() + ((incr.max() - incr.min()) as f64 * step_frac) as i64;
        let prev = params.smin() + ((params.span() as f64) * prev_frac) as i64;
        let current = prev + delta;
        prop_assume!(delta > 0);
        prop_assume!(current <= params.smax());
        prop_assert!(ea_core::assert_cont::check(&params, Some(prev), current).is_ok());
    }

    #[test]
    fn legal_decrease_passes(params in random_cont_params(), prev_frac in 0.0f64..=1.0, step_frac in 0.0f64..=1.0) {
        let decr = params.decrease();
        let delta = decr.min() + ((decr.max() - decr.min()) as f64 * step_frac) as i64;
        let prev = params.smin() + ((params.span() as f64) * prev_frac) as i64;
        let current = prev - delta;
        prop_assume!(delta > 0);
        prop_assume!(current >= params.smin());
        prop_assert!(ea_core::assert_cont::check(&params, Some(prev), current).is_ok());
    }

    #[test]
    fn too_fast_increase_fires(params in random_cont_params(), prev_frac in 0.0f64..=1.0, excess in 1i64..1000) {
        let prev = params.smin() + ((params.span() as f64) * prev_frac) as i64;
        let current = prev + params.increase().max() + excess;
        prop_assume!(current <= params.smax());
        // Unless wrap-around happens to legalise it as a decrease, this
        // must fire; with wrap enabled it may legally pass, so only
        // assert for the non-wrapping case.
        if !params.wrap().is_allowed() {
            let v = ea_core::assert_cont::check(&params, Some(prev), current).unwrap_err();
            prop_assert_eq!(v.kind(), ViolationKind::IncreaseRate);
        }
    }

    #[test]
    fn wrap_agrees_with_circle_arithmetic(
        period in 10i64..5000,
        prev_off in 0i64..5000,
        step in 1i64..100,
    ) {
        // A circular counter over [0, period] (smax identified with smin)
        // advancing by `step` each test, with band exactly [step, step].
        // A step of a full period aliases to "unchanged", which Table 2
        // rightly treats as a stuck signal — exclude it.
        prop_assume!(step < period);
        let prev = prev_off % period;
        let params = ContinuousParams::builder(0, period)
            .increase_rate(step, step)
            .wrap_allowed()
            .build()
            .unwrap();
        let current = (prev + step) % period;
        let result = ea_core::assert_cont::check(&params, Some(prev), current);
        prop_assert!(result.is_ok(), "prev={prev} current={current} period={period} step={step}: {result:?}");
    }

    #[test]
    fn wrap_with_wrong_step_fires(
        period in 10i64..5000,
        prev_off in 0i64..5000,
        step in 1i64..100,
        error in 1i64..50,
    ) {
        let prev = prev_off % period;
        let params = ContinuousParams::builder(0, period)
            .increase_rate(step, step)
            .wrap_allowed()
            .build()
            .unwrap();
        let wrong = (prev + step + error) % period;
        prop_assume!(step + error < period); // otherwise it aliases a legal step
        prop_assume!(wrong != prev); // unchanged is a different test family
        let result = ea_core::assert_cont::check(&params, Some(prev), wrong);
        prop_assert!(result.is_err(), "prev={prev} wrong={wrong}");
    }

    #[test]
    fn monitor_recovery_keeps_history_in_range(
        params in random_cont_params(),
        samples in proptest::collection::vec(-200_000i64..200_000, 1..60),
    ) {
        let mut monitor = SignalMonitor::continuous("x", params)
            .with_recovery(RecoveryStrategy::Clamp);
        for s in samples {
            let _ = monitor.check(s);
            let committed = monitor.last_committed().unwrap();
            prop_assert!(params.in_range(committed), "committed {committed} out of range");
        }
    }

    #[test]
    fn linear_walk_never_fires(len in 2usize..20, laps in 1usize..4) {
        let order: Vec<i64> = (0..len as i64).collect();
        let params = DiscreteParams::linear(order.clone(), true).unwrap();
        let mut monitor = SignalMonitor::discrete("seq", params);
        for _ in 0..laps {
            for &v in &order {
                prop_assert!(monitor.check(v).is_ok());
            }
        }
    }

    #[test]
    fn linear_skip_fires(len in 3usize..20, skip in 2usize..10) {
        let order: Vec<i64> = (0..len as i64).collect();
        prop_assume!(skip < len);
        let params = DiscreteParams::linear(order, false).unwrap();
        let mut monitor = SignalMonitor::discrete("seq", params);
        monitor.check(0).unwrap();
        let v = monitor.check(skip as i64).unwrap_err();
        prop_assert_eq!(v.kind(), ViolationKind::IllegalTransition);
    }

    #[test]
    fn discrete_random_domain_is_the_only_constraint(
        domain in proptest::collection::btree_set(-100i64..100, 2..20),
        a_idx in 0usize..20,
        b_idx in 0usize..20,
    ) {
        let values: Vec<i64> = domain.iter().copied().collect();
        let params = DiscreteParams::random(values.clone()).unwrap();
        let a = values[a_idx % values.len()];
        let b = values[b_idx % values.len()];
        prop_assert!(ea_core::assert_disc::check(&params, Some(a), b).is_ok());
    }

    #[test]
    fn proportion_wilson_contains_estimate(nd in 0u64..500, extra in 0u64..500) {
        let ne = nd + extra;
        prop_assume!(ne > 0);
        let p = Proportion::new(nd, ne);
        let est = p.estimate().unwrap();
        let (lo, hi) = p.interval_wilson(Z_95).unwrap();
        prop_assert!(lo <= est + 1e-12);
        prop_assert!(est <= hi + 1e-12);
        prop_assert!((0.0..=1.0).contains(&lo));
        prop_assert!((0.0..=1.0).contains(&hi));
    }

    #[test]
    fn coverage_pdetect_bounded(pem in 0.0f64..=1.0, pprop in 0.0f64..=1.0, pds in 0.0f64..=1.0) {
        let model = CoverageModel::new(pem, pprop, pds).unwrap();
        let pd = model.p_detect();
        prop_assert!((0.0..=1.0).contains(&pd));
        // Pdetect can never exceed Pds.
        prop_assert!(pd <= pds + 1e-12);
    }

    #[test]
    fn latency_stats_invariants(samples in proptest::collection::vec(0u64..100_000, 1..100)) {
        let mut stats = LatencyStats::new();
        for &s in &samples {
            stats.record(s);
        }
        let min = stats.min().unwrap();
        let max = stats.max().unwrap();
        let avg = stats.average().unwrap();
        prop_assert!(min as f64 <= avg + 1e-9);
        prop_assert!(avg <= max as f64 + 1e-9);
        prop_assert_eq!(stats.count(), samples.len() as u64);
    }
}
