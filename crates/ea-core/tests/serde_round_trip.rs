//! Parameter sets are plain data: they serialise, travel (e.g. as a
//! calibration file downloaded to a target), and deserialise into
//! working assertions. These tests pin the JSON round trip for every
//! parameter flavour.

use ea_core::prelude::*;

#[test]
fn continuous_params_round_trip() {
    let params = ContinuousParams::builder(-100, 8_000)
        .increase_rate(2, 40)
        .decrease_rate(0, 25)
        .wrap_allowed()
        .build()
        .unwrap();
    let json = serde_json::to_string(&params).unwrap();
    let back: ContinuousParams = serde_json::from_str(&json).unwrap();
    assert_eq!(back, params);
    assert_eq!(back.classify(), SignalClass::continuous_random());
}

#[test]
fn discrete_params_round_trip() {
    let params = DiscreteParams::non_linear([
        (1, vec![2, 4]),
        (2, vec![3, 4]),
        (3, vec![4]),
        (4, vec![5]),
        (5, vec![1]),
    ])
    .unwrap()
    .with_self_loops();
    let json = serde_json::to_string(&params).unwrap();
    let back: DiscreteParams = serde_json::from_str(&json).unwrap();
    assert_eq!(back, params);
    assert!(back.transition_allowed(4, 4));
    assert!(!back.transition_allowed(4, 1));
}

#[test]
fn moded_params_round_trip_preserves_initial_mode() {
    let tight = ContinuousParams::builder(0, 100)
        .increase_rate(0, 5)
        .decrease_rate(0, 5)
        .build()
        .unwrap();
    let wide = ContinuousParams::builder(0, 10_000)
        .increase_rate(0, 500)
        .decrease_rate(0, 500)
        .build()
        .unwrap();
    let moded = ModedParams::new(3, tight).with(9, wide);
    let json = serde_json::to_string(&moded).unwrap();
    let back: ModedParams = serde_json::from_str(&json).unwrap();
    assert_eq!(back, moded);
    assert_eq!(back.initial_mode(), 3);
    assert_eq!(back.mode_count(), 2);
}

#[test]
fn dynamic_params_round_trip() {
    let base = ContinuousParams::builder(0, 20_000)
        .increase_rate(0, 1_000)
        .decrease_rate(0, 1_000)
        .build()
        .unwrap();
    let params = DynamicParams::new(base)
        .with_increase_profile(RateProfile::new([(0, 1_000), (20_000, 50)]).unwrap());
    let json = serde_json::to_string(&params).unwrap();
    let back: DynamicParams = serde_json::from_str(&json).unwrap();
    assert_eq!(back, params);
    assert!(back.check(Some(19_000), 19_600).is_err());
}

#[test]
fn monitor_state_round_trip_resumes_history() {
    let params = ContinuousParams::builder(0, 1_000)
        .increase_rate(0, 50)
        .decrease_rate(0, 50)
        .build()
        .unwrap();
    let mut monitor = SignalMonitor::continuous("speed", params);
    monitor.check(500).unwrap();
    monitor.check(540).unwrap();
    let json = serde_json::to_string(&monitor).unwrap();
    let mut back: SignalMonitor = serde_json::from_str(&json).unwrap();
    assert_eq!(back.previous(), Some(540));
    assert_eq!(back.checks(), 2);
    // The restored monitor continues exactly where the original stopped.
    assert!(back.check(560).is_ok());
    assert!(back.check(900).is_err());
}

#[test]
fn instrumentation_plan_round_trip() {
    let plan = {
        let mut process = InstrumentationProcess::new();
        process.register_signal("v", SignalRole::Input, "S", "C");
        process.select_by_name(["v"]).unwrap();
        let params = ContinuousParams::builder(0, 10)
            .increase_rate(0, 2)
            .decrease_rate(0, 2)
            .build()
            .unwrap();
        process
            .place(
                "v",
                ModedParams::new(0, params),
                "C",
                RecoveryStrategy::Clamp,
            )
            .unwrap();
        process.finish().unwrap()
    };
    let json = serde_json::to_string(&plan).unwrap();
    let back: InstrumentationPlan = serde_json::from_str(&json).unwrap();
    assert_eq!(back, plan);
    let bank = back.build_bank();
    assert_eq!(bank.len(), 1);
}

#[test]
fn signal_class_serialises_stably() {
    for class in SignalClass::ALL {
        let json = serde_json::to_string(&class).unwrap();
        let back: SignalClass = serde_json::from_str(&json).unwrap();
        assert_eq!(back, class);
    }
}
