//! Generators for the paper's figures.
//!
//! * Figure 1 — the classification scheme (ASCII rendering);
//! * Figure 2 — example series for the three continuous signal shapes,
//!   with a self-check that each series satisfies exactly its own class;
//! * Figure 3 — the five-state non-linear sequential example;
//! * Figure 5/6 — the software architecture and assertion locations
//!   (rendered from the live instrumentation plan, not hard-coded).

use ea_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Figure 1 as an ASCII tree.
pub fn fig1_taxonomy() -> String {
    let mut out = String::from("Figure 1. Signal classification scheme.\n");
    out.push_str(
        "Signals\n\
         ├── Continuous\n\
         │   ├── Monotonic\n\
         │   │   ├── Static   (Co/Mo/St)\n\
         │   │   └── Dynamic  (Co/Mo/Dy)\n\
         │   └── Random       (Co/Ra)\n\
         └── Discrete\n\
             ├── Sequential\n\
             │   ├── Linear     (Di/Se/Li)\n\
             │   └── Non-linear (Di/Se/Nl)\n\
             └── Random         (Di/Ra)\n",
    );
    out
}

/// One Figure 2 series with the parameters that admit it.
#[derive(Debug, Clone)]
pub struct Fig2Series {
    /// Sub-figure label: `(a)`, `(b)` or `(c)`.
    pub label: &'static str,
    /// The signal class the series illustrates.
    pub class: SignalClass,
    /// The generated samples.
    pub samples: Vec<Sample>,
    /// Parameters under which the series is violation-free.
    pub params: ContinuousParams,
}

impl Fig2Series {
    /// Renders the series as `t,value` CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("t,value\n");
        for (t, v) in self.samples.iter().enumerate() {
            out.push_str(&format!("{t},{v}\n"));
        }
        out
    }

    /// Number of violations the series produces under `params`.
    pub fn violations_under(&self, params: &ContinuousParams) -> usize {
        let mut previous = None;
        let mut violations = 0;
        for &s in &self.samples {
            if ea_core::assert_cont::check(params, previous, s).is_err() {
                violations += 1;
            }
            previous = Some(s);
        }
        violations
    }
}

/// Generates the three Figure 2 series: (a) random, (b) static monotonic
/// with wrap-around, (c) dynamic monotonic.
pub fn fig2_series(seed: u64, len: usize) -> [Fig2Series; 3] {
    let mut rng = StdRng::seed_from_u64(seed);

    // (a) Random continuous: bounded walk in [0, 1000], step ≤ 40.
    let params_a = ContinuousParams::builder(0, 1_000)
        .increase_rate(0, 40)
        .decrease_rate(0, 40)
        .build()
        .expect("valid random parameters");
    let mut value: Sample = 500;
    let samples_a: Vec<Sample> = (0..len)
        .map(|_| {
            let step = rng.gen_range(-40i64..=40);
            value = (value + step).clamp(0, 1_000);
            value
        })
        .collect();

    // (b) Static monotonic with wrap-around: sawtooth of slope 25 over a
    // circular range [0, 500] (smax identified with smin).
    let params_b = ContinuousParams::builder(0, 500)
        .increase_rate(25, 25)
        .wrap_allowed()
        .build()
        .expect("valid static parameters");
    let samples_b: Vec<Sample> = (0..len).map(|t| (25 * t as i64) % 500).collect();

    // (c) Dynamic monotonic: decreasing with a rate in [0, 30].
    let params_c = ContinuousParams::builder(0, 2_000)
        .decrease_rate(0, 30)
        .build()
        .expect("valid dynamic parameters");
    let mut level: Sample = 2_000;
    let samples_c: Vec<Sample> = (0..len)
        .map(|_| {
            level = (level - rng.gen_range(0i64..=30)).max(0);
            level
        })
        .collect();

    [
        Fig2Series {
            label: "(a)",
            class: SignalClass::continuous_random(),
            samples: samples_a,
            params: params_a,
        },
        Fig2Series {
            label: "(b)",
            class: SignalClass::continuous_static_monotonic(),
            samples: samples_b,
            params: params_b,
        },
        Fig2Series {
            label: "(c)",
            class: SignalClass::continuous_dynamic_monotonic(),
            samples: samples_c,
            params: params_c,
        },
    ]
}

/// The Figure 3 example: five states, transitions
/// `T(v1) = {v2, v4}`, `T(v2) = {v3, v4}`, `T(v3) = {v4}`,
/// `T(v4) = {v5}`, `T(v5) = {v1}`.
pub fn fig3_state_machine() -> DiscreteParams {
    DiscreteParams::non_linear([
        (1, vec![2, 4]),
        (2, vec![3, 4]),
        (3, vec![4]),
        (4, vec![5]),
        (5, vec![1]),
    ])
    .expect("the paper's example is a valid graph")
}

/// Figure 5/6: the software architecture with assertion locations,
/// rendered from the live instrumentation plan (Table 4 content).
pub fn fig5_architecture() -> String {
    let plan = arrestor::placement_plan().expect("static plan");
    let mut out = String::from(
        "Figure 5/6. Software architecture and assertion locations.\n\
         \n\
         ms_slot_nbr[T]   mscnt[T]\n\
              CLOCK ──────────┬──────────► CALC ◄── i[T]\n\
         Rotation sensor ► DIST_S ── pulscnt[T] ──┘ │\n\
         Pressure sensor ► PRES_S ── IsValue[T] ─► V_REG ◄─ SetValue[T]\n\
         V_REG ── OutValue[T] ─► PRES_A ► Pressure valve\n\
         \n\
         [T] = executable assertion (Table 4):\n\n",
    );
    out.push_str(&plan.placement_table());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_mentions_all_six_leaves() {
        let text = fig1_taxonomy();
        for class in SignalClass::ALL {
            assert!(text.contains(&class.to_string()), "missing {class}");
        }
    }

    #[test]
    fn fig2_series_pass_their_own_class() {
        for series in fig2_series(7, 200) {
            assert_eq!(series.params.classify(), series.class);
            assert_eq!(
                series.violations_under(&series.params),
                0,
                "series {} violates its own parameters",
                series.label
            );
        }
    }

    #[test]
    fn fig2_series_fail_foreign_classes() {
        let [random, static_mono, dynamic_mono] = fig2_series(7, 200);
        // The random walk decreases somewhere: the monotonic params
        // reject it.
        assert!(random.violations_under(&static_mono.params) > 0);
        assert!(random.violations_under(&dynamic_mono.params) > 0);
        // The sawtooth increases: the decreasing params reject it.
        assert!(static_mono.violations_under(&dynamic_mono.params) > 0);
        // The decreasing series violates the fixed-slope sawtooth params.
        assert!(dynamic_mono.violations_under(&static_mono.params) > 0);
    }

    #[test]
    fn fig2_is_seed_deterministic() {
        let a = fig2_series(42, 50);
        let b = fig2_series(42, 50);
        assert_eq!(a[0].samples, b[0].samples);
        assert_eq!(a[2].samples, b[2].samples);
    }

    #[test]
    fn fig2_csv_shape() {
        let [random, ..] = fig2_series(1, 10);
        let csv = random.to_csv();
        assert_eq!(csv.lines().count(), 11);
        assert!(csv.starts_with("t,value\n"));
    }

    #[test]
    fn fig3_matches_paper_transitions() {
        let params = fig3_state_machine();
        assert!(params.transition_allowed(5, 1));
        assert!(!params.transition_allowed(4, 1));
        assert_eq!(params.domain().len(), 5);
    }

    #[test]
    fn fig5_contains_table4() {
        let text = fig5_architecture();
        assert!(text.contains("V_REG"));
        assert!(text.contains("Co/Mo/St"));
        assert!(text.contains("pulscnt"));
    }
}
