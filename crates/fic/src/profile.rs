//! Per-assertion cost profiling: what each executable assertion costs.
//!
//! The paper reports *coverage* per mechanism (Tables 7–9) but is
//! silent about *cost* — yet the placement process of §2.3 explicitly
//! trades detection probability against CPU overhead. This module
//! closes that gap with a cost league table per campaign, combining:
//!
//! * **measured check counts** — every [`ea_core::SignalMonitor`]
//!   tallies its executions; [`TrialExecution::ea_checks`] carries the
//!   per-trial tally out of the worker and a [`ProfileRecorder`] folds
//!   it across the campaign (lock-free atomics, same zero-cost
//!   `Option`-handle contract as [`crate::telemetry`]);
//! * **a deterministic op model** — [`ea_core::cost`] charges each
//!   mechanism the comparisons and mask probes one steady-state check
//!   performs, so the league table is stable across hosts;
//! * **an optional wall-clock view** — [`sample_wall_ns`] drives each
//!   mechanism alone with a legal steady-state signal and batch-times
//!   thousands of checks per [`std::time::Instant`] pair. Sampling
//!   happens once at report time, never in the campaign hot loop.
//!
//! The artefact is a schema-versioned [`ProfileReport`] under
//! `results/profile/`, keyed by the same EA identity that
//! [`crate::attribution`] uses — the direct input to `detox_report`,
//! which joins cost × attribution into a Pareto table of assertion
//! subsets.
//!
//! Determinism contract: profiling observes monitors that already ran;
//! it never changes what a trial executes. The differential suite
//! (`tests/profile_equivalence.rs`) pins journals, tables and
//! attribution byte-identical with profiling on and off.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use arrestor::{build_detectors, EaId, EaSet};
use ea_core::Params;
use serde::{Deserialize, Serialize};

use crate::experiment::TrialExecution;
use crate::telemetry::RunMetadata;

/// Schema version stamped into every profile report. Bump on any
/// breaking change to [`ProfileReport`] or [`EaCostRow`].
pub const PROFILE_SCHEMA_VERSION: u32 = 1;

/// Artefact discriminator of a profile report.
pub const PROFILE_KIND: &str = "assertion-cost-profile";

/// Campaign-wide accumulator for per-mechanism check counts.
///
/// Shared by `Arc` between the campaign driver and its workers, like
/// the telemetry [`crate::telemetry::Registry`]. All methods are
/// lock-free; recording order does not matter (pure sums).
#[derive(Debug, Default)]
pub struct ProfileRecorder {
    ea_checks: [AtomicU64; 7],
    trials: AtomicU64,
    pruned: AtomicU64,
}

impl ProfileRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        ProfileRecorder::default()
    }

    /// Folds one executed trial's per-mechanism check counts.
    pub fn record_execution(&self, execution: &TrialExecution) {
        for (slot, &n) in self.ea_checks.iter().zip(execution.ea_checks.iter()) {
            slot.fetch_add(n, Ordering::Relaxed);
        }
        self.trials.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a trial answered from the prune cache: it never executed,
    /// so it contributes no checks — the league table reflects what the
    /// campaign actually ran.
    pub fn record_prune(&self) {
        self.pruned.fetch_add(1, Ordering::Relaxed);
    }

    /// Accumulated per-mechanism check counts in EA1..EA7 order.
    pub fn checks(&self) -> [u64; 7] {
        let mut out = [0u64; 7];
        for (slot, n) in out.iter_mut().zip(self.ea_checks.iter()) {
            *slot = n.load(Ordering::Relaxed);
        }
        out
    }

    /// Executed (non-pruned) trials folded so far.
    pub fn trials(&self) -> u64 {
        self.trials.load(Ordering::Relaxed)
    }

    /// Pruned trials observed so far.
    pub fn pruned_trials(&self) -> u64 {
        self.pruned.load(Ordering::Relaxed)
    }
}

/// One mechanism's row in the cost league table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EaCostRow {
    /// Mechanism name, `EA1`..`EA7` — the same identity attribution
    /// reports use.
    pub ea: String,
    /// The monitored signal (Table 6 pairing).
    pub signal: String,
    /// The module the assertion executes in (Table 4).
    pub location: String,
    /// Checks executed across the campaign.
    pub checks: u64,
    /// Deterministic comparisons per steady-state check.
    pub comparisons_per_check: u32,
    /// Deterministic mask probes per steady-state check.
    pub mask_probes_per_check: u32,
    /// `comparisons_per_check + mask_probes_per_check`.
    pub ops_per_check: u32,
    /// `checks × ops_per_check` — the league-table sort key.
    pub total_ops: u64,
    /// Sampled wall-clock nanoseconds per check, when a wall view was
    /// taken (host-dependent; never part of the deterministic model).
    pub wall_ns_per_check: Option<f64>,
}

/// The end-of-campaign profile artefact (`results/profile/*.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileReport {
    /// [`PROFILE_SCHEMA_VERSION`].
    pub schema_version: u32,
    /// Always [`PROFILE_KIND`].
    pub kind: String,
    /// Which binary produced the report.
    pub producer: String,
    /// Run attribution (same shape as telemetry reports).
    pub run: RunMetadata,
    /// Executed (non-pruned) trials folded into the counts.
    pub trials: u64,
    /// Trials answered from the prune cache (zero checks contributed).
    pub pruned_trials: u64,
    /// One row per mechanism, EA1..EA7 order.
    pub per_ea: Vec<EaCostRow>,
}

impl ProfileReport {
    /// Assembles a report from a recorder, attaching the deterministic
    /// op model and an optional wall-clock sample.
    pub fn assemble(
        producer: &str,
        run: RunMetadata,
        recorder: &ProfileRecorder,
        wall_ns: Option<[f64; 7]>,
    ) -> Self {
        let checks = recorder.checks();
        let costs = build_detectors(EaSet::ALL).check_costs();
        let per_ea = EaId::ALL
            .iter()
            .map(|&ea| {
                let k = ea.index();
                let cost = costs[k];
                EaCostRow {
                    ea: ea.to_string(),
                    signal: ea.signal_name().to_owned(),
                    location: ea.test_location().to_owned(),
                    checks: checks[k],
                    comparisons_per_check: cost.comparisons,
                    mask_probes_per_check: cost.mask_probes,
                    ops_per_check: cost.total_ops(),
                    total_ops: checks[k] * u64::from(cost.total_ops()),
                    wall_ns_per_check: wall_ns.map(|w| w[k]),
                }
            })
            .collect();
        ProfileReport {
            schema_version: PROFILE_SCHEMA_VERSION,
            kind: PROFILE_KIND.to_owned(),
            producer: producer.to_owned(),
            run,
            trials: recorder.trials(),
            pruned_trials: recorder.pruned_trials(),
            per_ea,
        }
    }

    /// Structural schema validation (used by `detox_report` before
    /// joining and by tests): version, discriminator, the seven rows in
    /// EA order, and the arithmetic invariants of each row.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema_version != PROFILE_SCHEMA_VERSION {
            return Err(format!(
                "schema_version {} (this build reads {})",
                self.schema_version, PROFILE_SCHEMA_VERSION
            ));
        }
        if self.kind != PROFILE_KIND {
            return Err(format!("unexpected kind `{}`", self.kind));
        }
        if self.per_ea.len() != 7 {
            return Err(format!("{} rows (want the seven EAs)", self.per_ea.len()));
        }
        for (k, row) in self.per_ea.iter().enumerate() {
            let ea = EaId::from_index(k).expect("k < 7");
            if row.ea != ea.to_string() {
                return Err(format!("row {k} names `{}` (want `{ea}`)", row.ea));
            }
            if row.signal != ea.signal_name() {
                return Err(format!("{ea}: signal `{}`", row.signal));
            }
            if row.ops_per_check != row.comparisons_per_check + row.mask_probes_per_check {
                return Err(format!("{ea}: ops_per_check is not comparisons + probes"));
            }
            if row.total_ops != row.checks * u64::from(row.ops_per_check) {
                return Err(format!("{ea}: total_ops != checks × ops_per_check"));
            }
            if row
                .wall_ns_per_check
                .is_some_and(|w| !w.is_finite() || w < 0.0)
            {
                return Err(format!("{ea}: wall_ns_per_check not a finite non-negative"));
            }
        }
        Ok(())
    }
}

/// Writes `report` as pretty JSON to `dir/<label>.json`, creating the
/// directory (same layout contract as telemetry reports).
///
/// # Errors
///
/// Any filesystem failure.
pub fn write_report(dir: &Path, label: &str, report: &ProfileReport) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{label}.json"));
    let json = serde_json::to_string_pretty(report).expect("report serialises");
    std::fs::write(&path, format!("{json}\n"))?;
    Ok(path)
}

/// Renders the cost league table, most expensive mechanism first.
pub fn render_league(report: &ProfileReport) -> String {
    let mut rows: Vec<&EaCostRow> = report.per_ea.iter().collect();
    rows.sort_by(|a, b| b.total_ops.cmp(&a.total_ops).then(a.ea.cmp(&b.ea)));
    let grand_total: u64 = rows.iter().map(|r| r.total_ops).sum();
    let mut out = String::new();
    out.push_str("assertion cost league table\n");
    out.push_str("---------------------------\n");
    out.push_str(
        "EA   signal       location  checks      ops/check  total ops     share  wall ns/check\n",
    );
    for row in rows {
        let share = if grand_total == 0 {
            0.0
        } else {
            100.0 * row.total_ops as f64 / grand_total as f64
        };
        let wall = row
            .wall_ns_per_check
            .map_or_else(|| "-".to_owned(), |w| format!("{w:.1}"));
        out.push_str(&format!(
            "{:<4} {:<12} {:<9} {:<11} {:<10} {:<13} {:>5.1}%  {}\n",
            row.ea,
            row.signal,
            row.location,
            row.checks,
            row.ops_per_check,
            row.total_ops,
            share,
            wall,
        ));
    }
    out.push_str(&format!(
        "trials {} (+{} pruned), grand total {} ops\n",
        report.trials, report.pruned_trials, grand_total
    ));
    out
}

/// A legal steady-state drive sequence for `params`, `len` samples.
///
/// Continuous signals walk a triangle wave inside the rate bands
/// (wrapping at the seam when `w = allowed`, holding at `smax` for
/// monotonic counters whose band admits a zero step); sequential
/// discrete signals follow their transition graph; random discrete
/// signals alternate between two domain values. Every consecutive pair
/// satisfies the assertion, so the sampled timing is the *passing*
/// path — the cost a healthy system pays.
fn drive_sequence(params: &Params, len: usize) -> Vec<u16> {
    let mut out = Vec::with_capacity(len);
    match params {
        Params::Continuous(p) => {
            let step = |band: ea_core::cont::RateBand| -> i64 {
                if band.max() == 0 {
                    0
                } else {
                    band.min().max(1).min(band.max())
                }
            };
            let up = step(p.increase());
            let down = step(p.decrease());
            let mut v = p.smin();
            let mut rising = true;
            for _ in 0..len {
                out.push(v.clamp(0, i64::from(u16::MAX)) as u16);
                if rising {
                    if v + up > p.smax() || up == 0 {
                        if p.wrap().is_allowed() {
                            v = p.smin();
                        } else if down > 0 {
                            rising = false;
                            v -= down;
                        }
                        // else hold at v: legal iff rmin_incr = 0,
                        // which is exactly the monotonic counters'
                        // parameterisation (EA3, EA4).
                    } else {
                        v += up;
                    }
                } else if v - down < p.smin() || down == 0 {
                    rising = true;
                    v += up.min(p.smax() - v);
                } else {
                    v -= down;
                }
            }
        }
        Params::Discrete(p) => {
            let mut v = p.any_valid();
            for _ in 0..len {
                out.push(v.clamp(0, i64::from(u16::MAX)) as u16);
                v = p
                    .transitions_from(v)
                    .and_then(|t| t.iter().next().copied())
                    .unwrap_or_else(|| {
                        // Random discrete: any domain value is legal;
                        // alternate to exercise the transition test.
                        let mut iter = p.domain().iter().copied();
                        let first = iter.next().expect("domain is never empty");
                        let second = iter.next().unwrap_or(first);
                        if v == first {
                            second
                        } else {
                            first
                        }
                    });
            }
        }
    }
    out
}

/// Samples wall-clock nanoseconds per check for each mechanism.
///
/// Each EA runs **alone** in a fresh bank against its legal drive
/// sequence; a batch of checks is timed with a single
/// [`Instant`] pair and the minimum over a few repetitions is taken
/// (minimum, not mean — scheduling noise only ever adds time). This
/// runs once at report-emission time and costs a few milliseconds; the
/// campaign hot loop never sees a clock.
pub fn sample_wall_ns() -> [f64; 7] {
    const BATCH: usize = 4096;
    const REPS: usize = 3;
    let mut out = [0.0f64; 7];
    for ea in EaId::ALL {
        let mut detectors = build_detectors(EaSet::only(ea));
        let sequence = {
            let monitor = detectors.bank().monitor(ea_core::MonitorId(ea.index()));
            drive_sequence(monitor.active_params(), BATCH)
        };
        let mut at: u64 = 0;
        // Warm-up: populate the previous-sample history and caches.
        for &v in sequence.iter().take(64) {
            detectors.check(ea, v, at);
            at += 1;
        }
        let mut best = f64::INFINITY;
        for _ in 0..REPS {
            let start = Instant::now();
            for &v in &sequence {
                detectors.check(ea, v, at);
                at += 1;
            }
            let per_check = start.elapsed().as_nanos() as f64 / BATCH as f64;
            best = best.min(per_check);
        }
        out[ea.index()] = best;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_meta() -> RunMetadata {
        RunMetadata {
            git_sha: "test".to_owned(),
            workers: 1,
            checkpointing: true,
            cases_per_error: 4,
            observation_ms: 2_000,
            shard: None,
        }
    }

    #[test]
    fn recorder_sums_executions_and_prunes() {
        let recorder = ProfileRecorder::new();
        let execution = TrialExecution {
            ea_checks: [1, 2, 3, 4, 5, 6, 7],
            ..TrialExecution::default()
        };
        recorder.record_execution(&execution);
        recorder.record_execution(&execution);
        recorder.record_prune();
        assert_eq!(recorder.checks(), [2, 4, 6, 8, 10, 12, 14]);
        assert_eq!(recorder.trials(), 2);
        assert_eq!(recorder.pruned_trials(), 1);
    }

    #[test]
    fn report_round_trips_and_validates() {
        let recorder = ProfileRecorder::new();
        let execution = TrialExecution {
            ea_checks: [10, 10, 10, 10, 10, 10, 10],
            ..TrialExecution::default()
        };
        recorder.record_execution(&execution);
        let report = ProfileReport::assemble("test", run_meta(), &recorder, None);
        report.validate().expect("assembled report is valid");
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: ProfileReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn validate_rejects_broken_arithmetic() {
        let recorder = ProfileRecorder::new();
        let mut report = ProfileReport::assemble("test", run_meta(), &recorder, None);
        report.per_ea[3].total_ops += 1;
        assert!(report.validate().unwrap_err().contains("total_ops"));
        let mut wrong_kind = ProfileReport::assemble("test", run_meta(), &recorder, None);
        wrong_kind.kind = "telemetry".to_owned();
        assert!(wrong_kind.validate().is_err());
    }

    #[test]
    fn league_table_sorts_by_total_ops() {
        let recorder = ProfileRecorder::new();
        // EA5 (discrete, priciest per check) gets the most checks too.
        let execution = TrialExecution {
            ea_checks: [1, 1, 1, 1, 1_000, 1, 1],
            ..TrialExecution::default()
        };
        recorder.record_execution(&execution);
        let report = ProfileReport::assemble("test", run_meta(), &recorder, Some([5.0; 7]));
        let table = render_league(&report);
        let first_row = table.lines().nth(3).expect("header + first row");
        assert!(first_row.starts_with("EA5"), "got: {first_row}");
        assert!(table.contains("5.0"));
    }

    #[test]
    fn drive_sequences_are_legal_for_every_mechanism() {
        for ea in EaId::ALL {
            let mut detectors = build_detectors(EaSet::only(ea));
            let sequence = {
                let monitor = detectors.bank().monitor(ea_core::MonitorId(ea.index()));
                drive_sequence(monitor.active_params(), 512)
            };
            assert_eq!(sequence.len(), 512);
            for (at, &v) in sequence.iter().enumerate() {
                detectors.check(ea, v, at as u64);
            }
            assert!(
                detectors.events().is_empty(),
                "{ea}: drive sequence tripped {} violations",
                detectors.events().len()
            );
        }
    }

    #[test]
    fn wall_sampler_returns_positive_finite_times() {
        for ns in sample_wall_ns() {
            assert!(ns.is_finite() && ns > 0.0, "sampled {ns} ns/check");
        }
    }
}
