//! Parameter calibration by fault injection (paper §2.2: "the
//! parameters may be calibrated using fault injection experiments").
//!
//! For a sweep of rate-bound scales, each point runs (a) the golden grid
//! without injections, counting **false positives**, and (b) an E1-style
//! error subset, counting **detections**. The designer reads the sweep
//! to pick the tightest bound that stays false-positive-free: below it,
//! the assertions fire on healthy behaviour; far above it, coverage is
//! thrown away.

use arrestor::{EaSet, RunConfig, System};
use serde::{Deserialize, Serialize};

use crate::error_set::E1Error;
use crate::protocol::Protocol;

/// One point of the calibration sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CalibrationPoint {
    /// Rate-bound scale, percent of the physics-derived value.
    pub rate_scale_percent: u16,
    /// Golden runs that (wrongly) raised a detection.
    pub false_positive_runs: u64,
    /// Total golden runs.
    pub golden_runs: u64,
    /// Injected runs with at least one detection.
    pub detected_runs: u64,
    /// Total injected runs.
    pub injected_runs: u64,
}

impl CalibrationPoint {
    /// Detection probability at this point.
    pub fn detection_rate(&self) -> f64 {
        if self.injected_runs == 0 {
            0.0
        } else {
            self.detected_runs as f64 / self.injected_runs as f64
        }
    }

    /// Whether this point is usable (no false positives).
    pub fn clean(&self) -> bool {
        self.false_positive_runs == 0
    }
}

fn run(
    protocol: &Protocol,
    scale: u16,
    flip: Option<memsim::BitFlip>,
    case: simenv::TestCase,
) -> bool {
    let config = RunConfig {
        observation_ms: protocol.observation_ms,
        version: EaSet::ALL,
        rate_scale_percent: Some(scale),
        ..RunConfig::default()
    };
    let mut system = System::new(case, config);
    let period = protocol.injection_period_ms.max(1);
    while system.time_ms() < protocol.observation_ms {
        let t = system.time_ms();
        if let Some(flip) = flip {
            if t > 0 && t.is_multiple_of(period) {
                system.inject(flip);
            }
        }
        system.tick();
    }
    system.detected()
}

/// Sweeps the given scales over golden runs and the error subset.
pub fn sweep(protocol: &Protocol, errors: &[E1Error], scales: &[u16]) -> Vec<CalibrationPoint> {
    let cases = protocol.grid.cases();
    scales
        .iter()
        .map(|&scale| {
            let mut point = CalibrationPoint {
                rate_scale_percent: scale,
                false_positive_runs: 0,
                golden_runs: 0,
                detected_runs: 0,
                injected_runs: 0,
            };
            for case in &cases {
                point.golden_runs += 1;
                point.false_positive_runs += u64::from(run(protocol, scale, None, *case));
            }
            for error in errors {
                for case in &cases {
                    point.injected_runs += 1;
                    point.detected_runs += u64::from(run(protocol, scale, Some(error.flip), *case));
                }
            }
            point
        })
        .collect()
}

/// Renders the sweep as a table.
pub fn render(points: &[CalibrationPoint]) -> String {
    let mut out =
        String::from("Rate-bound calibration sweep (scale % of physics-derived bounds)\n");
    out.push_str(&format!(
        "{:>8}{:>16}{:>14}{:>10}\n",
        "scale", "false positives", "detections", "usable"
    ));
    for p in points {
        out.push_str(&format!(
            "{:>7}%{:>9}/{:<6}{:>8}/{:<5}{:>10}\n",
            p.rate_scale_percent,
            p.false_positive_runs,
            p.golden_runs,
            p.detected_runs,
            p.injected_runs,
            if p.clean() { "yes" } else { "NO" },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error_set;
    use arrestor::EaId;

    #[test]
    fn tighter_bounds_detect_at_least_as_much() {
        let protocol = Protocol::scaled(1, 6_000);
        // Mid-bit SetValue errors: exactly the ones the bound position
        // decides about.
        let errors: Vec<_> = error_set::e1()
            .into_iter()
            .filter(|e| e.ea == EaId::Ea1 && (9..=11).contains(&e.signal_bit))
            .collect();
        let points = sweep(&protocol, &errors, &[25, 100, 400]);
        assert_eq!(points.len(), 3);
        // Detection is monotone non-increasing in the scale.
        assert!(points[0].detection_rate() >= points[1].detection_rate());
        assert!(points[1].detection_rate() >= points[2].detection_rate());
        // The physics-derived bound (100 %) is false-positive free.
        assert!(points[1].clean(), "derived bounds must be golden-clean");
        // Over-tight bounds eventually fire on healthy behaviour.
        let very_tight = sweep(&protocol, &[], &[5]);
        assert!(
            !very_tight[0].clean(),
            "a 5 % bound must reject healthy set-point ramps"
        );
    }

    #[test]
    fn render_flags_unusable_points() {
        let points = vec![
            CalibrationPoint {
                rate_scale_percent: 50,
                false_positive_runs: 2,
                golden_runs: 4,
                detected_runs: 4,
                injected_runs: 4,
            },
            CalibrationPoint {
                rate_scale_percent: 100,
                false_positive_runs: 0,
                golden_runs: 4,
                detected_runs: 3,
                injected_runs: 4,
            },
        ];
        let text = render(&points);
        assert!(text.contains("NO"));
        assert!(text.contains("yes"));
    }
}
