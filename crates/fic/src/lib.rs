//! FIC³-style fault-injection campaign controller.
//!
//! The paper's experiment system (Fault Injection Campaign Control
//! Computer, Figure 7) downloads error parameters into the target,
//! triggers time-based SWIFI bit flips, records detections reported on a
//! digital output pin, and stores environment readouts for failure
//! analysis. This crate reproduces that instrument and the paper's two
//! campaigns:
//!
//! * **E1** ([`error_set::e1`]): one bit flip per bit position of each of
//!   the seven monitored 16-bit signals — 112 errors, 25 test cases
//!   each, evaluated for the eight software versions (EA1..EA7 alone,
//!   plus all seven). Estimates `Pds` (Tables 7 and 8).
//! * **E2** ([`error_set::e2`]): 200 bit flips drawn uniformly with
//!   replacement from the application RAM (150) and stack (50) areas.
//!   Estimates `Pdetect` (Table 9).
//!
//! Protocol constants (Section 3.4) live in [`Protocol`]: injections
//! repeat every 20 ms, the observation window is 40 s, detection means
//! *at least one* report in the window, latency is first injection →
//! first detection.
//!
//! Because the experiment is detection-only (the pin has no feedback
//! into the control flow), a single run with all mechanisms active
//! yields each version's verdict exactly: version `EAk`'s detection is
//! "EAk fired at least once". The campaign therefore runs each
//! ⟨error, test case⟩ pair once and derives all eight versions from the
//! per-mechanism detection log — behaviourally identical to the paper's
//! eight recompiled versions, at an eighth of the compute (DESIGN.md §4).
//!
//! # Example
//!
//! ```
//! use fic::{error_set, CampaignRunner, Protocol};
//!
//! // A miniature E1 campaign: a 2 × 2 test-case grid, 2 s windows.
//! let protocol = Protocol::scaled(2, 2_000);
//! let runner = CampaignRunner::new(protocol);
//! let errors = error_set::e1();
//! let report = runner.run_e1(&errors[..4]); // first 4 errors only
//! assert_eq!(report.trials(), 4 * 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attribution;
pub mod calibration;
pub mod campaign;
pub mod cli;
pub mod convergence;
pub mod coverage_report;
pub mod error_set;
pub mod experiment;
pub mod figures;
pub mod fleet;
pub mod golden;
pub mod journal;
pub mod profile;
pub mod protocol;
pub mod prune;
pub mod recovery_study;
pub mod results;
pub mod tables;
pub mod telemetry;
pub mod trace;

pub use attribution::{
    AttributionAggregate, AttributionEvent, AttributionReport, Decomposition, MonitoredMap,
};
pub use campaign::{
    AttributionSink, CampaignRunner, CampaignTelemetry, CheckpointCache, ConvergenceSink,
    ProgressOptions,
};
pub use convergence::{CampaignCoverage, ConvergenceAggregate, ConvergenceReport};
pub use error_set::{E1Error, E2Error};
pub use experiment::{
    fault_free_prefix, fault_free_prefix_recorded, run_trial, run_trial_checkpointed,
    run_trial_checkpointed_recorded, run_trial_recorded, run_trial_traced, Trial,
};
pub use fleet::{FleetError, FleetSummary, Server, ServerOptions, WorkerOptions, WorkerSummary};
pub use journal::{CampaignKind, Journal, JournalError, JournalWriter, ShardSpec, TrialRecord};
pub use profile::{ProfileRecorder, ProfileReport};
pub use protocol::Protocol;
pub use prune::{InertMap, PruneCache, PruneClass};
pub use results::{E1Report, E2Report, SignalRow};
pub use trace::{ReferenceCache, ReproBundle, SignalDivergence, TraceDiff};
