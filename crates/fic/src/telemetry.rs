//! Campaign telemetry: a dependency-free metrics registry, live
//! progress stream, and end-of-campaign reports.
//!
//! A long fault-injection campaign used to be a black box: checkpoint
//! cache behaviour, settle-detector effectiveness, journal flush cost
//! and worker utilisation were invisible without a debugger. This
//! module is the instrument panel. It follows the same philosophy as
//! the vendored serde/rand shims — no external dependency, a small
//! API surface shaped exactly like the well-known thing it stands in
//! for (a Prometheus-style registry) — and the same zero-cost contract
//! as [`arrestor::RunConfig`]'s `trace` flag: every instrumented call
//! site is gated on an `Option`, so a campaign run without telemetry
//! executes the identical instruction stream it always did.
//!
//! Three layers:
//!
//! * **Metrics** — [`Counter`], [`Gauge`] and fixed-bucket
//!   [`Histogram`], all lock-free atomics; [`Registry`] hands out
//!   shared handles by name and freezes the whole catalogue into a
//!   [`TelemetrySnapshot`]. Snapshots merge associatively and
//!   commutatively (the same algebra as the campaign reports), so
//!   per-shard telemetry merges exactly like per-shard journals.
//! * **Progress** — [`Progress`] renders a throttled single-line TTY
//!   status (trials done/total, trials/sec, ETA, cache hit rate) and
//!   optionally appends periodic machine-readable snapshot events to a
//!   JSONL stream (`--telemetry-jsonl`). Snapshot events are monotone
//!   in `trials_done`.
//! * **Reports** — [`TelemetryReport`] is the end-of-campaign
//!   artefact: schema-versioned JSON under `results/telemetry/` plus a
//!   human summary table ([`render_summary`]) on stderr.
//!
//! Determinism: trial results never depend on telemetry, and no
//! wall-clock value is ever written into a result-bearing artefact
//! (tables, reports, journals, goldens). Timing lives only in
//! telemetry files, which the golden checks do not read.
//!
//! See `OBSERVABILITY.md` for the metric catalogue and the report
//! schema.

use std::collections::BTreeMap;
use std::io::{self, IsTerminal, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use serde::{Deserialize, Serialize};

/// Schema version stamped into every telemetry report and every JSONL
/// snapshot event. Bump on any breaking change to
/// [`TelemetrySnapshot`], [`TelemetryReport`] or the progress-event
/// shape.
pub const SCHEMA_VERSION: u32 = 1;

/// A monotone event/occurrence count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds `n` occurrences.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one occurrence.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value (worker count, queue depth).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the value.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram of `u64` observations.
///
/// Buckets are defined by inclusive upper bounds; an observation lands
/// in the first bucket whose bound is `≥` the value, or in the
/// implicit overflow bucket past the last bound. Bounds are fixed at
/// construction, so histograms recorded by different workers (or
/// different shards) over the same metric merge by plain
/// bucket-wise addition — the merge is associative and commutative,
/// which the telemetry property tests pin down.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    /// `bounds.len() + 1` buckets; the last one is overflow.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    /// `u64::MAX` until the first observation.
    min: AtomicU64,
    /// 0 until the first observation (observations of 0 are fine: the
    /// count disambiguates).
    max: AtomicU64,
}

impl Histogram {
    /// A histogram over the given inclusive upper bounds (must be
    /// strictly increasing and non-empty).
    pub fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Exponential bounds: `start, start·factor, …` (`count` bounds).
    pub fn exponential(start: u64, factor: u64, count: usize) -> Vec<u64> {
        let mut bounds = Vec::with_capacity(count);
        let mut bound = start.max(1);
        for _ in 0..count {
            bounds.push(bound);
            bound = bound.saturating_mul(factor.max(2));
        }
        bounds
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        let idx = self
            .bounds
            .partition_point(|&bound| bound < value)
            .min(self.buckets.len() - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Freezes the histogram into a serialisable snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: (count > 0).then(|| self.min.load(Ordering::Relaxed)),
            max: (count > 0).then(|| self.max.load(Ordering::Relaxed)),
        }
    }
}

/// A frozen [`Histogram`]: bucket counts plus summary statistics.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Inclusive upper bounds; `buckets` has one extra overflow slot.
    pub bounds: Vec<u64>,
    /// Observations per bucket (last = overflow).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation, if any.
    pub min: Option<u64>,
    /// Largest observation, if any.
    pub max: Option<u64>,
}

impl HistogramSnapshot {
    /// Mean observation, if any were recorded.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Merges another snapshot of the same metric (bucket-wise sum).
    ///
    /// # Panics
    ///
    /// When the bucket bounds differ — snapshots of two different
    /// metrics cannot be combined meaningfully.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        assert_eq!(
            self.bounds, other.bounds,
            "merging histograms with different bucket bounds"
        );
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }
}

#[derive(Debug)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A thread-safe, name-keyed metric registry.
///
/// Call sites obtain shared handles once (get-or-create, behind a
/// short-lived lock) and then update them lock-free on the hot path.
/// [`Registry::snapshot`] freezes every registered metric into a
/// [`TelemetrySnapshot`] with deterministic (sorted) ordering.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// When `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut metrics = self.metrics.lock().expect("registry lock");
        match metrics
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric `{name}` is not a counter"),
        }
    }

    /// The gauge named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// When `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut metrics = self.metrics.lock().expect("registry lock");
        match metrics
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric `{name}` is not a gauge"),
        }
    }

    /// The histogram named `name` with the given bounds, created on
    /// first use (later callers inherit the first bounds).
    ///
    /// # Panics
    ///
    /// When `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Arc<Histogram> {
        let mut metrics = self.metrics.lock().expect("registry lock");
        match metrics
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new(bounds))))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric `{name}` is not a histogram"),
        }
    }

    /// Freezes every registered metric.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let metrics = self.metrics.lock().expect("registry lock");
        let mut snapshot = TelemetrySnapshot::new();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => {
                    snapshot.counters.insert(name.clone(), c.get());
                }
                Metric::Gauge(g) => {
                    snapshot.gauges.insert(name.clone(), g.get());
                }
                Metric::Histogram(h) => {
                    snapshot.histograms.insert(name.clone(), h.snapshot());
                }
            }
        }
        snapshot
    }
}

/// An RAII span timer: records the elapsed wall-clock time (in
/// microseconds) into a histogram when dropped.
///
/// ```
/// use fic::telemetry::{Histogram, SpanTimer};
/// use std::sync::Arc;
///
/// let hist = Arc::new(Histogram::new(&Histogram::exponential(1, 4, 10)));
/// {
///     let _span = SpanTimer::start(Arc::clone(&hist));
///     // ... timed work ...
/// }
/// assert_eq!(hist.count(), 1);
/// ```
#[derive(Debug)]
pub struct SpanTimer {
    histogram: Arc<Histogram>,
    start: Instant,
}

impl SpanTimer {
    /// Starts timing into `histogram`.
    pub fn start(histogram: Arc<Histogram>) -> Self {
        SpanTimer {
            histogram,
            start: Instant::now(),
        }
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        let micros = u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.histogram.record(micros);
    }
}

/// A frozen view of a [`Registry`]: every metric by name, in sorted
/// (deterministic) order.
#[derive(Debug, Clone, Default, PartialEq, Eq, Deserialize)]
pub struct TelemetrySnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

// The metric maps serialize as JSON *objects* (external tooling reads
// `snapshot.counters["campaign.trials"]`), not the vendored facade's
// default `[key, value]` pair-array form for maps. The derived
// Deserialize accepts both, so either representation parses back.
impl Serialize for TelemetrySnapshot {
    fn to_value(&self) -> serde::Value {
        fn object<V: Serialize>(map: &BTreeMap<String, V>) -> serde::Value {
            serde::Value::Object(map.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
        }
        serde::Value::Object(vec![
            ("counters".to_owned(), object(&self.counters)),
            ("gauges".to_owned(), object(&self.gauges)),
            ("histograms".to_owned(), object(&self.histograms)),
        ])
    }
}

impl TelemetrySnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        TelemetrySnapshot::default()
    }

    /// A counter's value (0 when absent, as for an untouched counter).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Merges another snapshot: counters add, gauges keep the maximum
    /// (the only gauge semantics that stay commutative), histograms
    /// merge bucket-wise. Used to combine per-shard telemetry; the
    /// operation is associative and permutation-invariant (see
    /// `prop_telemetry`).
    pub fn merge(&mut self, other: &TelemetrySnapshot) {
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, value) in &other.gauges {
            let slot = self.gauges.entry(name.clone()).or_insert(0);
            *slot = (*slot).max(*value);
        }
        for (name, hist) in &other.histograms {
            match self.histograms.get_mut(name) {
                Some(mine) => mine.merge(hist),
                None => {
                    self.histograms.insert(name.clone(), hist.clone());
                }
            }
        }
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (version 0.0.4): `# HELP` / `# TYPE` per family, counters and
    /// gauges as single samples, histograms as cumulative
    /// `_bucket{le="…"}` series plus `_sum` and `_count`.
    ///
    /// Metric names are sanitised for Prometheus (every character
    /// outside `[a-zA-Z0-9_:]` becomes `_`); the HELP line carries the
    /// original dotted name, so [`TelemetrySnapshot::from_prometheus`]
    /// reconstructs the exact registry names and the exposition
    /// round-trips losslessly. Histogram min/max — which the format has
    /// no series for — travel on `# MIN` / `# MAX` comment lines, which
    /// standard scrapers skip.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let m = prometheus_name(name);
            out.push_str(&format!("# HELP {m} {name}\n# TYPE {m} counter\n"));
            out.push_str(&format!("{m} {value}\n"));
        }
        for (name, value) in &self.gauges {
            let m = prometheus_name(name);
            out.push_str(&format!("# HELP {m} {name}\n# TYPE {m} gauge\n"));
            out.push_str(&format!("{m} {value}\n"));
        }
        for (name, h) in &self.histograms {
            let m = prometheus_name(name);
            out.push_str(&format!("# HELP {m} {name}\n# TYPE {m} histogram\n"));
            let mut cumulative = 0u64;
            for (bound, bucket) in h.bounds.iter().zip(&h.buckets) {
                cumulative += bucket;
                out.push_str(&format!("{m}_bucket{{le=\"{bound}\"}} {cumulative}\n"));
            }
            out.push_str(&format!("{m}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!("{m}_sum {}\n", h.sum));
            out.push_str(&format!("{m}_count {}\n", h.count));
            if let (Some(min), Some(max)) = (h.min, h.max) {
                out.push_str(&format!("# MIN {m} {min}\n# MAX {m} {max}\n"));
            }
        }
        out
    }

    /// Parses a [`TelemetrySnapshot::to_prometheus`] exposition back
    /// into a snapshot. `telemetry_check --metrics` uses this to prove
    /// an exported exposition still carries exactly the snapshot it was
    /// rendered from.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first malformed line or
    /// structural inconsistency (unknown family, bucket sums
    /// disagreeing with `_count`, …).
    pub fn from_prometheus(text: &str) -> Result<TelemetrySnapshot, String> {
        #[derive(Default)]
        struct HistAcc {
            bounds: Vec<u64>,
            cumulative: Vec<u64>,
            inf: Option<u64>,
            sum: Option<u64>,
            count: Option<u64>,
            min: Option<u64>,
            max: Option<u64>,
        }
        let mut help: BTreeMap<String, String> = BTreeMap::new();
        let mut kinds: BTreeMap<String, String> = BTreeMap::new();
        let mut counters: BTreeMap<String, u64> = BTreeMap::new();
        let mut gauges: BTreeMap<String, u64> = BTreeMap::new();
        let mut hists: BTreeMap<String, HistAcc> = BTreeMap::new();
        let parse_u64 = |s: &str, k: usize| {
            s.parse::<u64>()
                .map_err(|e| format!("line {}: `{s}`: {e}", k + 1))
        };
        for (k, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('#') {
                let mut words = rest.split_whitespace();
                let directive = words.next().unwrap_or("");
                let name = words.next().unwrap_or("").to_owned();
                let tail = words.collect::<Vec<_>>().join(" ");
                match directive {
                    "HELP" => {
                        help.insert(name, tail);
                    }
                    "TYPE" => {
                        kinds.insert(name, tail);
                    }
                    "MIN" => hists.entry(name).or_default().min = Some(parse_u64(&tail, k)?),
                    "MAX" => hists.entry(name).or_default().max = Some(parse_u64(&tail, k)?),
                    // Any other comment is legal in the format; skip it.
                    _ => {}
                }
                continue;
            }
            let (series, value) = line
                .rsplit_once(' ')
                .ok_or_else(|| format!("line {}: no sample value", k + 1))?;
            let value = parse_u64(value, k)?;
            if let Some((base, labels)) = series.split_once('{') {
                let family = base.strip_suffix("_bucket").ok_or_else(|| {
                    format!("line {}: labelled non-bucket series `{base}`", k + 1)
                })?;
                let le = labels
                    .strip_prefix("le=\"")
                    .and_then(|l| l.strip_suffix("\"}"))
                    .ok_or_else(|| format!("line {}: expected le=\"…\" label", k + 1))?;
                let acc = hists.entry(family.to_owned()).or_default();
                if le == "+Inf" {
                    acc.inf = Some(value);
                } else {
                    acc.bounds.push(parse_u64(le, k)?);
                    acc.cumulative.push(value);
                }
            } else if kinds.get(series).is_some_and(|kind| kind == "counter") {
                counters.insert(series.to_owned(), value);
            } else if kinds.get(series).is_some_and(|kind| kind == "gauge") {
                gauges.insert(series.to_owned(), value);
            } else if let Some(family) = series.strip_suffix("_sum") {
                hists.entry(family.to_owned()).or_default().sum = Some(value);
            } else if let Some(family) = series.strip_suffix("_count") {
                hists.entry(family.to_owned()).or_default().count = Some(value);
            } else {
                return Err(format!("line {}: series `{series}` has no TYPE", k + 1));
            }
        }
        let original = |m: &str| {
            help.get(m)
                .cloned()
                .ok_or_else(|| format!("family `{m}` has no HELP line to carry its name"))
        };
        let mut snapshot = TelemetrySnapshot::new();
        for (m, value) in counters {
            snapshot.counters.insert(original(&m)?, value);
        }
        for (m, value) in gauges {
            snapshot.gauges.insert(original(&m)?, value);
        }
        for (m, acc) in hists {
            if kinds.get(&m).map(String::as_str) != Some("histogram") {
                return Err(format!("family `{m}` has histogram series but no TYPE"));
            }
            let count = acc
                .count
                .ok_or_else(|| format!("histogram `{m}`: no _count"))?;
            let sum = acc.sum.ok_or_else(|| format!("histogram `{m}`: no _sum"))?;
            if acc.inf != Some(count) {
                return Err(format!("histogram `{m}`: +Inf bucket != _count"));
            }
            let mut buckets = Vec::with_capacity(acc.bounds.len() + 1);
            let mut previous = 0u64;
            for &cumulative in &acc.cumulative {
                buckets.push(
                    cumulative.checked_sub(previous).ok_or_else(|| {
                        format!("histogram `{m}`: cumulative buckets not monotone")
                    })?,
                );
                previous = cumulative;
            }
            buckets.push(
                count
                    .checked_sub(previous)
                    .ok_or_else(|| format!("histogram `{m}`: bucket total exceeds _count"))?,
            );
            snapshot.histograms.insert(
                original(&m)?,
                HistogramSnapshot {
                    bounds: acc.bounds,
                    buckets,
                    count,
                    sum,
                    min: acc.min,
                    max: acc.max,
                },
            );
        }
        Ok(snapshot)
    }
}

/// A registry name mapped into the Prometheus metric-name alphabet:
/// every character outside `[a-zA-Z0-9_:]` becomes `_`.
fn prometheus_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Run metadata attached to every telemetry report, making the numbers
/// attributable: which code, which machine shape, which configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunMetadata {
    /// `git rev-parse HEAD` of the working tree, or `unknown`.
    pub git_sha: String,
    /// Resolved worker-thread count.
    pub workers: usize,
    /// Whether checkpointed trial execution was enabled.
    pub checkpointing: bool,
    /// Test cases per error (the grid size).
    pub cases_per_error: usize,
    /// Observation window, ms.
    pub observation_ms: u64,
    /// Shard as `k/n` when the campaign ran sharded.
    pub shard: Option<String>,
}

impl RunMetadata {
    /// Metadata for a protocol-driven campaign run.
    pub fn for_run(
        protocol: &crate::Protocol,
        checkpointing: bool,
        shard: Option<(usize, usize)>,
    ) -> Self {
        RunMetadata {
            git_sha: git_sha(),
            workers: protocol.effective_workers().max(1),
            checkpointing,
            cases_per_error: protocol.cases_per_error(),
            observation_ms: protocol.observation_ms,
            shard: shard.map(|(k, n)| format!("{k}/{n}")),
        }
    }
}

/// The HEAD commit of the enclosing git checkout, or `unknown`.
///
/// Shells out to `git`; any failure (no git, not a checkout) degrades
/// to `unknown` rather than an error — telemetry must never fail a
/// campaign.
pub fn git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

/// The end-of-campaign telemetry artefact (`results/telemetry/*.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetryReport {
    /// [`SCHEMA_VERSION`].
    pub schema_version: u32,
    /// Artefact discriminator, always `"campaign-telemetry"`.
    pub kind: String,
    /// Which binary produced the report (`full_campaign`, `table7`, …).
    pub producer: String,
    /// Run attribution.
    pub run: RunMetadata,
    /// The frozen metric catalogue.
    pub snapshot: TelemetrySnapshot,
}

impl TelemetryReport {
    /// Assembles a report from a frozen registry.
    pub fn assemble(producer: &str, run: RunMetadata, snapshot: TelemetrySnapshot) -> Self {
        TelemetryReport {
            schema_version: SCHEMA_VERSION,
            kind: "campaign-telemetry".to_owned(),
            producer: producer.to_owned(),
            run,
            snapshot,
        }
    }

    /// Structural schema validation (used by `telemetry_check` and the
    /// CI smoke job): version, discriminator, histogram invariants.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema_version != SCHEMA_VERSION {
            return Err(format!(
                "schema_version {} (this build reads {})",
                self.schema_version, SCHEMA_VERSION
            ));
        }
        if self.kind != "campaign-telemetry" {
            return Err(format!("unexpected kind `{}`", self.kind));
        }
        for (name, h) in &self.snapshot.histograms {
            if h.buckets.len() != h.bounds.len() + 1 {
                return Err(format!(
                    "histogram `{name}`: {} buckets for {} bounds (want bounds+1)",
                    h.buckets.len(),
                    h.bounds.len()
                ));
            }
            if h.buckets.iter().sum::<u64>() != h.count {
                return Err(format!("histogram `{name}`: bucket sum != count"));
            }
            if h.bounds.windows(2).any(|w| w[0] >= w[1]) {
                return Err(format!("histogram `{name}`: bounds not increasing"));
            }
            if (h.count == 0) != (h.min.is_none() || h.max.is_none()) {
                return Err(format!("histogram `{name}`: min/max vs count mismatch"));
            }
        }
        Ok(())
    }
}

/// Writes `report` as pretty JSON to `dir/<label>.json`, creating the
/// directory.
///
/// # Errors
///
/// Any filesystem failure.
pub fn write_report(dir: &Path, label: &str, report: &TelemetryReport) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{label}.json"));
    let json = serde_json::to_string_pretty(report).expect("report serialises");
    std::fs::write(&path, format!("{json}\n"))?;
    Ok(path)
}

/// Renders the human summary table printed on stderr at the end of a
/// campaign. Counters and gauges print as aligned `name value` rows;
/// histograms print `count / mean / min / max`.
pub fn render_summary(snapshot: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    out.push_str("telemetry summary\n");
    out.push_str("-----------------\n");
    let width = snapshot
        .counters
        .keys()
        .chain(snapshot.gauges.keys())
        .chain(snapshot.histograms.keys())
        .map(String::len)
        .max()
        .unwrap_or(0);
    for (name, value) in &snapshot.counters {
        out.push_str(&format!("{name:<width$}  {value}\n"));
    }
    for (name, value) in &snapshot.gauges {
        out.push_str(&format!("{name:<width$}  {value}\n"));
    }
    for (name, h) in &snapshot.histograms {
        match (h.mean(), h.min, h.max) {
            (Some(mean), Some(min), Some(max)) => out.push_str(&format!(
                "{name:<width$}  n={} mean={mean:.1} min={min} max={max}\n",
                h.count
            )),
            _ => out.push_str(&format!("{name:<width$}  n=0\n")),
        }
    }
    out
}

/// One machine-readable progress event on the `--telemetry-jsonl`
/// stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProgressEvent {
    /// [`SCHEMA_VERSION`].
    pub schema_version: u32,
    /// Event discriminator, always `"progress"`.
    pub event: String,
    /// Campaign phase label (`e1`, `e2`, …).
    pub phase: String,
    /// Trials completed so far (monotone within a stream).
    pub trials_done: u64,
    /// Total trials this campaign will run.
    pub trials_total: u64,
    /// Wall-clock seconds since the campaign started.
    pub elapsed_s: f64,
    /// Throughput over the whole campaign so far.
    pub trials_per_s: f64,
    /// Checkpoint-cache hits so far.
    pub cache_hits: u64,
    /// Checkpoint-cache misses (prefix builds) so far.
    pub cache_misses: u64,
    /// Trials stopped early by the settle detector so far.
    pub settled: u64,
}

/// Live campaign progress: a throttled single-line TTY status on
/// stderr plus an optional JSONL snapshot stream.
///
/// The collector thread calls [`Progress::on_trial`] once per
/// completed trial; rendering and stream appends are throttled (by
/// wall clock for the TTY line, by trial count for the stream) so the
/// emitter never becomes the bottleneck it is measuring.
#[derive(Debug)]
pub struct Progress {
    phase: String,
    total: u64,
    done: u64,
    started: Instant,
    /// Next wall-clock instant at which the TTY line may repaint.
    next_render: Instant,
    /// Trials between JSONL snapshot events.
    stream_every: u64,
    /// Trials done at the last JSONL event.
    last_streamed: u64,
    stream: Option<std::fs::File>,
    tty: bool,
    cache_hits: Option<Arc<Counter>>,
    cache_misses: Option<Arc<Counter>>,
    settled: Option<Arc<Counter>>,
    /// Recent `(instant, trials_done)` samples for the windowed rate
    /// behind the ETA. The whole-run mean goes stale after a heavily
    /// pruned or cache-warm opening phase; the window tracks what the
    /// campaign is doing *now*.
    window: std::collections::VecDeque<(Instant, u64)>,
    /// How far back the window reaches ([`RATE_WINDOW`]; tests shrink
    /// it to exercise pruning without multi-second sleeps).
    rate_window: std::time::Duration,
}

/// Minimum wall-clock gap between TTY repaints.
const RENDER_EVERY: std::time::Duration = std::time::Duration::from_millis(200);

/// How much history the ETA's sliding rate window keeps.
const RATE_WINDOW: std::time::Duration = std::time::Duration::from_secs(10);

/// Cap on retained rate-window samples, so a very fast phase does not
/// hoard memory before time-based pruning kicks in.
const RATE_WINDOW_SAMPLES: usize = 2_048;

impl Progress {
    /// A progress emitter for `total` trials in phase `phase`. With
    /// `stream`, a [`ProgressEvent`] is appended roughly every
    /// `stream_every` trials (plus one final event at completion).
    pub fn new(phase: &str, total: u64, stream: Option<std::fs::File>, stream_every: u64) -> Self {
        Progress {
            phase: phase.to_owned(),
            total,
            done: 0,
            started: Instant::now(),
            next_render: Instant::now(),
            stream_every: stream_every.max(1),
            last_streamed: 0,
            stream,
            tty: io::stderr().is_terminal(),
            cache_hits: None,
            cache_misses: None,
            settled: None,
            window: std::collections::VecDeque::new(),
            rate_window: RATE_WINDOW,
        }
    }

    /// Opens (appending) the JSONL stream at `path` and returns the
    /// file, creating parent directories.
    ///
    /// # Errors
    ///
    /// Any filesystem failure.
    pub fn open_stream(path: &Path) -> io::Result<std::fs::File> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
    }

    /// Suppresses the TTY status line when `enabled` is false; the
    /// JSONL stream is unaffected. (Even when enabled, the line only
    /// renders when stderr actually is a terminal.)
    #[must_use]
    pub fn with_tty(mut self, enabled: bool) -> Self {
        self.tty = self.tty && enabled;
        self
    }

    /// Attaches the cache/settle counters surfaced in the status line
    /// and the stream events.
    #[must_use]
    pub fn with_counters(
        mut self,
        cache_hits: Arc<Counter>,
        cache_misses: Arc<Counter>,
        settled: Arc<Counter>,
    ) -> Self {
        self.cache_hits = Some(cache_hits);
        self.cache_misses = Some(cache_misses);
        self.settled = Some(settled);
        self
    }

    /// Records one completed trial; repaints/streams when due.
    pub fn on_trial(&mut self) {
        self.done += 1;
        let now = Instant::now();
        self.window.push_back((now, self.done));
        while self.window.len() > RATE_WINDOW_SAMPLES
            || self
                .window
                .front()
                .is_some_and(|(t, _)| now.duration_since(*t) > self.rate_window)
        {
            self.window.pop_front();
        }
        if self.done >= self.last_streamed + self.stream_every || self.done == self.total {
            self.stream_event();
        }
        if self.tty && (now >= self.next_render || self.done == self.total) {
            self.next_render = now + RENDER_EVERY;
            self.render();
        }
    }

    /// Throughput over the sliding `RATE_WINDOW` of recent trials —
    /// the rate the ETA extrapolates from. Falls back to the whole-run
    /// mean while the window holds fewer than two samples (or no
    /// measurable time), so early renders never divide by zero.
    pub fn recent_trials_per_s(&self) -> f64 {
        if let (Some((t0, d0)), Some((t1, d1))) = (self.window.front(), self.window.back()) {
            let span = t1.duration_since(*t0).as_secs_f64();
            if span > 0.0 && d1 > d0 {
                return (d1 - d0) as f64 / span;
            }
        }
        self.event().trials_per_s
    }

    /// Finishes the phase: emits a final stream event (if one is
    /// pending) and terminates the TTY status line.
    pub fn finish(&mut self) {
        if self.done > self.last_streamed {
            self.stream_event();
        }
        if self.tty {
            self.render();
            eprintln!();
        }
    }

    /// The current event, as it would be streamed.
    pub fn event(&self) -> ProgressEvent {
        let elapsed_s = self.started.elapsed().as_secs_f64();
        ProgressEvent {
            schema_version: SCHEMA_VERSION,
            event: "progress".to_owned(),
            phase: self.phase.clone(),
            trials_done: self.done,
            trials_total: self.total,
            elapsed_s,
            trials_per_s: if elapsed_s > 0.0 {
                self.done as f64 / elapsed_s
            } else {
                0.0
            },
            cache_hits: self.cache_hits.as_ref().map_or(0, |c| c.get()),
            cache_misses: self.cache_misses.as_ref().map_or(0, |c| c.get()),
            settled: self.settled.as_ref().map_or(0, |c| c.get()),
        }
    }

    fn stream_event(&mut self) {
        self.last_streamed = self.done;
        let event = self.event();
        if let Some(file) = &mut self.stream {
            let line = serde_json::to_string(&event).expect("event serialises");
            // Telemetry must never fail the campaign: a full disk
            // degrades to a silent stop of the stream.
            if writeln!(file, "{line}").is_err() {
                self.stream = None;
            }
        }
    }

    fn render(&self) {
        let event = self.event();
        // The ETA extrapolates the *windowed* rate: after a pruned or
        // cache-warm opening burst the whole-run mean can overstate
        // current throughput by an order of magnitude.
        let recent = self.recent_trials_per_s();
        let eta = if recent > 0.0 && self.total > self.done {
            format!("  ETA {:.1}s", (self.total - self.done) as f64 / recent)
        } else {
            String::new()
        };
        let lookups = event.cache_hits + event.cache_misses;
        let cache = if lookups > 0 {
            format!(
                "  cache {:.1}%",
                100.0 * event.cache_hits as f64 / lookups as f64
            )
        } else {
            String::new()
        };
        eprint!(
            "\r[{}] {}/{} trials  {:.1} trials/s{eta}{cache}  settled {}   ",
            self.phase, self.done, self.total, event.trials_per_s, event.settled
        );
        let _ = io::stderr().flush();
    }
}

/// Bucket bounds (ms) for detection-latency and settle-stop
/// histograms: decade-ish resolution from one tick to the full 40 s
/// window.
pub fn latency_bounds_ms() -> Vec<u64> {
    vec![
        1, 2, 5, 10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 20_000, 40_000,
    ]
}

/// Bucket bounds (µs) for span timers: 1 µs to ~67 s, factor 4.
pub fn span_bounds_us() -> Vec<u64> {
    Histogram::exponential(1, 4, 14)
}

/// Bucket bounds for small cardinalities (batch sizes, captures).
pub fn small_count_bounds() -> Vec<u64> {
    vec![1, 2, 4, 8, 16, 32, 64, 128, 256]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_version_is_pinned() {
        // Consumers (CI validation, OBSERVABILITY.md, external tooling)
        // key on this value; bumping it is a deliberate breaking
        // change, not a side effect.
        assert_eq!(SCHEMA_VERSION, 1);
        let report = TelemetryReport::assemble(
            "test",
            RunMetadata {
                git_sha: "abc".into(),
                workers: 1,
                checkpointing: true,
                cases_per_error: 4,
                observation_ms: 1_000,
                shard: None,
            },
            TelemetrySnapshot::new(),
        );
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"schema_version\":1"), "json = {json}");
        assert!(json.contains("\"kind\":\"campaign-telemetry\""));
        report.validate().unwrap();
    }

    #[test]
    fn counter_and_gauge_roundtrip() {
        let registry = Registry::new();
        let c = registry.counter("x.count");
        c.inc();
        c.add(4);
        registry.gauge("x.gauge").set(7);
        // Same-name lookups share the metric.
        registry.counter("x.count").inc();
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counter("x.count"), 6);
        assert_eq!(snapshot.gauges["x.gauge"], 7);
        assert_eq!(snapshot.counter("never.touched"), 0);
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let h = Histogram::new(&[10, 100, 1_000]);
        for v in [5, 10, 11, 99, 100, 5_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![2, 3, 0, 1]); // ≤10, ≤100, ≤1000, over
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 5 + 10 + 11 + 99 + 100 + 5_000);
        assert_eq!(s.min, Some(5));
        assert_eq!(s.max, Some(5_000));
        assert_eq!(s.mean(), Some(s.sum as f64 / 6.0));
    }

    #[test]
    fn empty_histogram_has_no_min_max() {
        let s = Histogram::new(&[1, 2]).snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, None);
        assert_eq!(s.max, None);
        assert_eq!(s.mean(), None);
    }

    #[test]
    fn histogram_merge_adds_buckets() {
        let a = Histogram::new(&[10, 100]);
        a.record(5);
        a.record(50);
        let b = Histogram::new(&[10, 100]);
        b.record(500);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.buckets, vec![1, 1, 1]);
        assert_eq!(merged.count, 3);
        assert_eq!(merged.min, Some(5));
        assert_eq!(merged.max, Some(500));
    }

    #[test]
    #[should_panic(expected = "different bucket bounds")]
    fn histogram_merge_rejects_mismatched_bounds() {
        let mut a = Histogram::new(&[10]).snapshot();
        a.merge(&Histogram::new(&[20]).snapshot());
    }

    #[test]
    fn snapshot_merge_combines_all_kinds() {
        let r1 = Registry::new();
        r1.counter("trials").add(3);
        r1.gauge("workers").set(4);
        r1.histogram("lat", &[10, 100]).record(7);
        let r2 = Registry::new();
        r2.counter("trials").add(5);
        r2.counter("extra").add(1);
        r2.gauge("workers").set(2);
        r2.histogram("lat", &[10, 100]).record(70);

        let mut merged = r1.snapshot();
        merged.merge(&r2.snapshot());
        assert_eq!(merged.counter("trials"), 8);
        assert_eq!(merged.counter("extra"), 1);
        assert_eq!(merged.gauges["workers"], 4); // max
        assert_eq!(merged.histograms["lat"].count, 2);
    }

    #[test]
    fn span_timer_records_once_on_drop() {
        let h = Arc::new(Histogram::new(&span_bounds_us()));
        {
            let _span = SpanTimer::start(Arc::clone(&h));
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn exponential_bounds_are_increasing() {
        let bounds = Histogram::exponential(1, 4, 14);
        assert_eq!(bounds.len(), 14);
        assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(&bounds[..4], &[1, 4, 16, 64]);
    }

    #[test]
    fn validate_catches_tampered_histograms() {
        let mut report = TelemetryReport::assemble(
            "test",
            RunMetadata {
                git_sha: "abc".into(),
                workers: 1,
                checkpointing: false,
                cases_per_error: 1,
                observation_ms: 1,
                shard: Some("1/2".into()),
            },
            TelemetrySnapshot::new(),
        );
        let h = Histogram::new(&[10]);
        h.record(3);
        let mut broken = h.snapshot();
        broken.count += 1; // bucket sum no longer matches
        report.snapshot.histograms.insert("bad".into(), broken);
        assert!(report.validate().is_err());
    }

    #[test]
    fn progress_events_are_monotone_and_streamable() {
        let mut progress = Progress::new("e1", 10, None, 3);
        let mut last = 0;
        for _ in 0..10 {
            progress.on_trial();
            let event = progress.event();
            assert!(event.trials_done >= last);
            last = event.trials_done;
        }
        assert_eq!(progress.event().trials_done, 10);
        progress.finish();
        let json = serde_json::to_string(&progress.event()).unwrap();
        let back: ProgressEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back.trials_done, 10);
        assert_eq!(back.event, "progress");
    }

    /// `to_prometheus` → `from_prometheus` reconstructs the snapshot
    /// exactly — including metric names outside the Prometheus
    /// alphabet, empty histograms, and histogram min/max.
    #[test]
    fn prometheus_exposition_round_trips() {
        let registry = Registry::new();
        registry.counter("campaign.trials").add(42);
        registry.counter("fleet.worker.3.slices").add(7);
        registry.gauge("campaign.workers").set(8);
        let h = registry.histogram("campaign.e1.detection_latency_ms", &latency_bounds_ms());
        for v in [1, 19, 40, 39_999, 80_000] {
            h.record(v);
        }
        registry.histogram("journal.flush_latency_us", &span_bounds_us()); // empty
        let snapshot = registry.snapshot();

        let text = snapshot.to_prometheus();
        assert!(text.contains("# TYPE campaign_trials counter"));
        assert!(text.contains("# HELP campaign_trials campaign.trials"));
        assert!(text.contains("campaign_e1_detection_latency_ms_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("campaign_e1_detection_latency_ms_sum"));

        let back = TelemetrySnapshot::from_prometheus(&text).unwrap();
        assert_eq!(back, snapshot);
    }

    #[test]
    fn prometheus_parser_rejects_malformed_expositions() {
        // A series with no TYPE line.
        assert!(TelemetrySnapshot::from_prometheus("orphan 3\n").is_err());
        // A family whose HELP line (the original-name carrier) is gone.
        let text = "# TYPE x counter\nx 3\n";
        assert!(TelemetrySnapshot::from_prometheus(text)
            .unwrap_err()
            .contains("HELP"));
        // Cumulative buckets that regress.
        let registry = Registry::new();
        registry.histogram("h", &[1, 2]).record(1);
        let good = registry.snapshot().to_prometheus();
        let bad = good.replace("h_bucket{le=\"2\"} 1", "h_bucket{le=\"2\"} 0");
        assert!(TelemetrySnapshot::from_prometheus(&bad).is_err());
    }

    /// The ETA's windowed rate tracks recent throughput instead of the
    /// whole-run mean: after a fast opening burst and a stall, the
    /// recent rate must sit well below the campaign mean.
    #[test]
    fn recent_rate_window_recovers_from_a_fast_opening_phase() {
        let mut progress = Progress::new("e1", 1_000, None, u64::MAX);
        // Shrink the window so the test exercises pruning without
        // multi-second sleeps.
        progress.rate_window = std::time::Duration::from_millis(50);
        // Fast phase: 500 trials, almost instantaneous.
        for _ in 0..500 {
            progress.on_trial();
        }
        // Stall past the window, then a slow tail: the burst's samples
        // must be pruned and the recent rate reflect only the tail.
        std::thread::sleep(std::time::Duration::from_millis(80));
        for _ in 0..3 {
            progress.on_trial();
            std::thread::sleep(std::time::Duration::from_millis(15));
        }
        let whole_run = progress.event().trials_per_s;
        let recent = progress.recent_trials_per_s();
        assert!(recent > 0.0, "window rate must stay usable");
        assert!(
            recent < whole_run / 2.0,
            "recent rate ({recent:.0}/s) must fall well below the \
             whole-run mean ({whole_run:.0}/s) once throughput drops"
        );
    }

    /// With fewer than two window samples the windowed rate falls back
    /// to the whole-run mean instead of dividing by zero.
    #[test]
    fn recent_rate_falls_back_before_the_window_fills() {
        let progress = Progress::new("e1", 10, None, 1);
        assert_eq!(
            progress.recent_trials_per_s(),
            progress.event().trials_per_s
        );
    }

    #[test]
    fn summary_renders_all_metric_kinds() {
        let registry = Registry::new();
        registry.counter("campaign.trials").add(16);
        registry.gauge("campaign.workers").set(4);
        registry
            .histogram("campaign.latency_ms", &latency_bounds_ms())
            .record(40);
        let text = render_summary(&registry.snapshot());
        assert!(text.contains("campaign.trials"));
        assert!(text.contains("16"));
        assert!(text.contains("campaign.workers"));
        assert!(text.contains("n=1 mean=40.0 min=40 max=40"));
    }
}
