//! Assertion-level attribution: a per-trial event stream that
//! empirically decomposes the Section 2.4 coverage algebra
//! `Pdetect = (Pen·Pprop + Pem)·Pds`.
//!
//! Every completed ⟨error, test case⟩ trial yields one
//! [`AttributionEvent`] — the full detection story: which assertion
//! fired first, the Table 4 signal class and node of the directly
//! responsible assertion, detection time versus (optionally) the
//! differential oracle's first-divergence time, and for undetected
//! trials a masked/silent/reached propagation verdict. Events fold
//! into an [`AttributionAggregate`] whose merge is associative and
//! permutation-invariant — the same algebra as
//! [`crate::telemetry::TelemetrySnapshot`] — so worker completion
//! order, `--resume`, and shard merging cannot change the result.
//!
//! Attribution is observation-only and zero-cost when disabled: the
//! cheap event fields are a *pure function* of ⟨error, case, trial⟩,
//! derived by the campaign collector after the trial has already been
//! recorded. The same purity means
//! [`aggregate_journal`] can rebuild the whole aggregate from any
//! trial journal after the fact; only the oracle enrichment
//! ([`enrich_event`]) adds information, and that is persisted as
//! attribution lines in the journal so it survives `--resume` and
//! `merge_journals`.

use std::collections::{HashMap, HashSet};
use std::io;
use std::path::{Path, PathBuf};

use arrestor::{EaId, EaSet, MasterNode};
use ea_core::coverage::CoverageModel;
use ea_core::stats::{LatencyStats, Proportion, Z_95};
use memsim::{BitFlip, Region};
use serde::{Deserialize, Serialize};

use crate::error_set::{E1Error, E2Error};
use crate::experiment::Trial;
use crate::journal::{CampaignKind, Journal, JournalError};
use crate::results::{E1Report, E2Report};
use crate::telemetry::RunMetadata;

/// Schema version written into every attribution report.
pub const SCHEMA_VERSION: u32 = 1;

/// Artefact discriminator of [`AttributionReport::kind`].
pub const REPORT_KIND: &str = "assertion-attribution";

/// [`AttributionEvent::region`] value for application-RAM flips.
pub const REGION_APP_RAM: &str = "app-ram";
/// [`AttributionEvent::region`] value for stack flips.
pub const REGION_STACK: &str = "stack";

/// Oracle verdict: the error never left its flip site (no divergence).
pub const PROPAGATION_MASKED: &str = "masked";
/// Oracle verdict: the error diverged the system without ever touching
/// a monitored signal.
pub const PROPAGATION_SILENT: &str = "silent";
/// Oracle verdict: the error propagated into a monitored signal.
pub const PROPAGATION_REACHED: &str = "reached";

/// The Table 4 class abbreviation of the signal monitored by `ea`,
/// read off the live assertion parameters (e.g. `Co/Ra` for EA1).
pub fn class_label(ea: EaId) -> String {
    use arrestor::instrument as params;
    match ea {
        EaId::Ea1 => params::ea1_set_value().classify().to_string(),
        EaId::Ea2 => params::ea2_is_value().classify().to_string(),
        EaId::Ea3 => params::ea3_checkpoint().classify().to_string(),
        EaId::Ea4 => params::ea4_pulscnt().classify().to_string(),
        EaId::Ea5 => params::ea5_slot().classify().to_string(),
        EaId::Ea6 => params::ea6_mscnt().classify().to_string(),
        EaId::Ea7 => params::ea7_out_value().classify().to_string(),
    }
}

/// Maps flip addresses onto the monitored signals, for classifying E2
/// errors as monitored-signal hits (`Pem` events) versus unmonitored
/// RAM (`Pen·Pprop` events). Built once per campaign from the live
/// memory map, exactly like [`crate::error_set::e1`] reads it.
#[derive(Debug, Clone)]
pub struct MonitoredMap {
    addrs: [usize; 7],
}

impl Default for MonitoredMap {
    fn default() -> Self {
        Self::new()
    }
}

impl MonitoredMap {
    /// Reads the monitored-signal addresses off a throwaway node.
    pub fn new() -> Self {
        let node = MasterNode::new(120, EaSet::ALL);
        let monitored = node.signals().monitored();
        let mut addrs = [0usize; 7];
        for (slot, (_, addr)) in monitored.iter().enumerate() {
            addrs[slot] = *addr;
        }
        MonitoredMap { addrs }
    }

    /// The assertion directly monitoring the flipped location, when the
    /// flip lands inside one of the seven 16-bit monitored signals.
    pub fn monitored_ea(&self, flip: BitFlip) -> Option<EaId> {
        if flip.region != Region::AppRam {
            return None;
        }
        self.addrs
            .iter()
            .position(|&addr| (addr..addr + 2).contains(&flip.addr))
            .and_then(EaId::from_index)
    }
}

/// The first-firing assertion: index and absolute firing time, ties
/// broken towards the lowest EA index (deterministic).
fn first_firing(per_ea_first_ms: &[Option<u64>; 7]) -> Option<(usize, u64)> {
    let mut best: Option<(usize, u64)> = None;
    for (k, t) in per_ea_first_ms.iter().enumerate() {
        if let Some(t) = *t {
            if best.is_none_or(|(_, bt)| t < bt) {
                best = Some((k, t));
            }
        }
    }
    best
}

/// One trial's full detection story.
///
/// All fields except the two oracle ones are a pure function of
/// ⟨error, case index, trial⟩, so the event can always be re-derived
/// from a [`crate::journal::TrialRecord`]. The oracle fields are only
/// filled by [`enrich_event`] (a traced re-run) and travel in the
/// journal as attribution lines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttributionEvent {
    /// Which campaign the trial belongs to.
    pub campaign: CampaignKind,
    /// The paper's 1-based error number.
    pub error_number: usize,
    /// Index into the protocol's test-case grid.
    pub case_index: usize,
    /// Index (0-based) of the assertion directly monitoring the
    /// corrupted location: always present for E1, present for E2 only
    /// when the flip lands inside a monitored signal's two bytes.
    pub target_ea: Option<usize>,
    /// The corrupted monitored signal's name, when [`Self::target_ea`]
    /// is set.
    pub signal: Option<String>,
    /// Table 4 class abbreviation of that signal (`Co/Ra`, …).
    pub class: Option<String>,
    /// Node/test location of the directly responsible assertion.
    pub node: Option<String>,
    /// Memory region of the flip ([`REGION_APP_RAM`]/[`REGION_STACK`]).
    pub region: String,
    /// First firing time of every assertion, ms (the trial's log).
    pub per_ea_first_ms: [Option<u64>; 7],
    /// Index of the first-firing assertion, ties to the lowest index.
    pub first_firing_ea: Option<usize>,
    /// Absolute time of the first detection, ms.
    pub detection_ms: Option<u64>,
    /// Absolute time of the first injection, ms.
    pub first_injection_ms: u64,
    /// Whether the arrestment failed.
    pub failed: bool,
    /// Oracle: first divergence from the fault-free reference, ms.
    pub first_divergence_ms: Option<u64>,
    /// Oracle verdict ([`PROPAGATION_MASKED`]/[`PROPAGATION_SILENT`]/
    /// [`PROPAGATION_REACHED`]); `None` until enriched.
    pub propagation: Option<String>,
}

impl AttributionEvent {
    /// The event for one completed E1 trial.
    pub fn for_e1(error: &E1Error, case_index: usize, trial: &Trial) -> Self {
        Self::build(
            CampaignKind::E1,
            error.number,
            case_index,
            Some(error.ea),
            REGION_APP_RAM,
            trial,
        )
    }

    /// The event for one completed E2 trial.
    pub fn for_e2(error: &E2Error, case_index: usize, trial: &Trial, map: &MonitoredMap) -> Self {
        let region = match error.flip.region {
            Region::AppRam => REGION_APP_RAM,
            Region::Stack => REGION_STACK,
        };
        Self::build(
            CampaignKind::E2,
            error.number,
            case_index,
            map.monitored_ea(error.flip),
            region,
            trial,
        )
    }

    fn build(
        campaign: CampaignKind,
        error_number: usize,
        case_index: usize,
        target: Option<EaId>,
        region: &str,
        trial: &Trial,
    ) -> Self {
        let first = first_firing(&trial.per_ea_first_ms);
        AttributionEvent {
            campaign,
            error_number,
            case_index,
            target_ea: target.map(EaId::index),
            signal: target.map(|ea| ea.signal_name().to_owned()),
            class: target.map(class_label),
            node: target.map(|ea| ea.test_location().to_owned()),
            region: region.to_owned(),
            per_ea_first_ms: trial.per_ea_first_ms,
            first_firing_ea: first.map(|(k, _)| k),
            detection_ms: first.map(|(_, t)| t),
            first_injection_ms: trial.first_injection_ms,
            failed: trial.failed,
            first_divergence_ms: None,
            propagation: None,
        }
    }

    /// The deduplication key — same key space as trial records.
    pub fn key(&self) -> (CampaignKind, usize, usize) {
        (self.campaign, self.error_number, self.case_index)
    }

    /// Whether any assertion fired.
    pub fn detected(&self) -> bool {
        self.first_firing_ea.is_some()
    }

    /// First injection → first detection, ms.
    pub fn latency_ms(&self) -> Option<u64> {
        self.detection_ms
            .map(|t| t.saturating_sub(self.first_injection_ms))
    }
}

/// Per-assertion league-table entry across every attributed trial.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct AssertionStats {
    /// Trials in which this assertion fired at least once.
    pub firings: u64,
    /// Trials in which it fired *first* (ties to the lowest EA index).
    pub first_firings: u64,
    /// First-fire latency (injection → this assertion's first firing)
    /// over every trial where it fired.
    pub latency: LatencyStats,
}

impl AssertionStats {
    fn merge(&mut self, other: &AssertionStats) {
        self.firings += other.firings;
        self.first_firings += other.first_firings;
        self.latency.merge(other.latency);
    }
}

/// Per-signal `Pds` evidence: E1 errors placed in this signal.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SignalAttribution {
    /// Detection proportion (all mechanisms) — the signal's `Pds`.
    pub detected: Proportion,
    /// Detection latency over this signal's detected trials.
    pub latency: LatencyStats,
}

impl SignalAttribution {
    fn merge(&mut self, other: &SignalAttribution) {
        self.detected.merge(other.detected);
        self.latency.merge(other.latency);
    }
}

/// Differential-oracle evidence folded out of enriched events.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OracleStats {
    /// Events carrying an oracle verdict.
    pub enriched: u64,
    /// Undetected trials whose error never diverged the system.
    pub masked: u64,
    /// Undetected trials that diverged without touching a monitored
    /// signal (silent propagation).
    pub silent: u64,
    /// Undetected trials whose divergence reached a monitored signal.
    pub reached_undetected: u64,
    /// First divergence → first detection over enriched detected trials.
    pub divergence_to_detection: LatencyStats,
    /// Empirical `Pprop`: of the enriched unmonitored-RAM E2 trials,
    /// the fraction whose error propagated into a monitored signal.
    pub p_prop: Proportion,
}

impl OracleStats {
    fn merge(&mut self, other: &OracleStats) {
        self.enriched += other.enriched;
        self.masked += other.masked;
        self.silent += other.silent;
        self.reached_undetected += other.reached_undetected;
        self.divergence_to_detection
            .merge(other.divergence_to_detection);
        self.p_prop.merge(other.p_prop);
    }
}

/// The event stream folded down: every counter adds, every proportion
/// and latency merges — associative, commutative, and therefore
/// invariant under worker count, completion order, resume points and
/// shard groupings (pinned by `prop_attribution`).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AttributionAggregate {
    /// E1 events folded in.
    pub e1_trials: u64,
    /// E2 events folded in.
    pub e2_trials: u64,
    /// Per-signal `Pds` evidence, Table 6 row order.
    pub per_signal: [SignalAttribution; 7],
    /// Per-assertion league table (both campaigns).
    pub assertions: [AssertionStats; 7],
    /// E2 flips that landed inside a monitored signal (`Pem` events).
    pub e2_monitored: Proportion,
    /// E2 flips elsewhere in application RAM (`Pen·Pprop` events).
    pub e2_unmonitored_ram: Proportion,
    /// E2 stack flips (outside the RAM algebra).
    pub e2_stack: Proportion,
    /// Differential-oracle enrichment totals.
    pub oracle: OracleStats,
}

impl AttributionAggregate {
    /// An empty aggregate (the merge identity).
    pub fn new() -> Self {
        AttributionAggregate::default()
    }

    /// Folds one event in.
    pub fn record(&mut self, event: &AttributionEvent) {
        match event.campaign {
            CampaignKind::E1 => {
                self.e1_trials += 1;
                if let Some(k) = event.target_ea {
                    let row = &mut self.per_signal[k];
                    row.detected.record(event.detected());
                    if let Some(latency) = event.latency_ms() {
                        row.latency.record(latency);
                    }
                }
            }
            CampaignKind::E2 => {
                self.e2_trials += 1;
                let cell = if event.region == REGION_STACK {
                    &mut self.e2_stack
                } else if event.target_ea.is_some() {
                    &mut self.e2_monitored
                } else {
                    &mut self.e2_unmonitored_ram
                };
                cell.record(event.detected());
            }
        }
        for (k, t) in event.per_ea_first_ms.iter().enumerate() {
            if let Some(t) = *t {
                let stats = &mut self.assertions[k];
                stats.firings += 1;
                stats
                    .latency
                    .record(t.saturating_sub(event.first_injection_ms));
            }
        }
        if let Some(k) = event.first_firing_ea {
            self.assertions[k].first_firings += 1;
        }
        if let Some(verdict) = event.propagation.as_deref() {
            self.oracle.enriched += 1;
            if !event.detected() {
                match verdict {
                    PROPAGATION_MASKED => self.oracle.masked += 1,
                    PROPAGATION_SILENT => self.oracle.silent += 1,
                    _ => self.oracle.reached_undetected += 1,
                }
            }
            if event.campaign == CampaignKind::E2
                && event.region == REGION_APP_RAM
                && event.target_ea.is_none()
            {
                self.oracle
                    .p_prop
                    .record(event.detected() || verdict == PROPAGATION_REACHED);
            }
        }
        if let (Some(diverged), Some(detected)) = (event.first_divergence_ms, event.detection_ms) {
            self.oracle
                .divergence_to_detection
                .record(detected.saturating_sub(diverged));
        }
    }

    /// Merges another aggregate (shards, workers, resumed segments).
    pub fn merge(&mut self, other: &AttributionAggregate) {
        self.e1_trials += other.e1_trials;
        self.e2_trials += other.e2_trials;
        for (mine, theirs) in self.per_signal.iter_mut().zip(&other.per_signal) {
            mine.merge(theirs);
        }
        for (mine, theirs) in self.assertions.iter_mut().zip(&other.assertions) {
            mine.merge(theirs);
        }
        self.e2_monitored.merge(other.e2_monitored);
        self.e2_unmonitored_ram.merge(other.e2_unmonitored_ram);
        self.e2_stack.merge(other.e2_stack);
        self.oracle.merge(&other.oracle);
    }

    /// The E1 Total-row proportion (all signals merged) — `Pds`.
    pub fn e1_totals(&self) -> Proportion {
        let mut total = Proportion::default();
        for row in &self.per_signal {
            total.merge(row.detected);
        }
        total
    }

    /// The E2 application-RAM proportion (monitored + unmonitored) —
    /// the measured `Pdetect`.
    pub fn e2_ram(&self) -> Proportion {
        let mut ram = self.e2_monitored;
        ram.merge(self.e2_unmonitored_ram);
        ram
    }

    /// All E2 trials (RAM + stack).
    pub fn e2_total(&self) -> Proportion {
        let mut total = self.e2_ram();
        total.merge(self.e2_stack);
        total
    }
}

/// The Section 2.4 quantities estimated from an aggregate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Decomposition {
    /// `Pem`: exact, from the memory map (monitored bytes / app RAM).
    pub p_em: f64,
    /// `Pen = 1 − Pem`.
    pub p_en: f64,
    /// Per-signal `Pds` estimates, Table 6 row order.
    pub p_ds_per_signal: [Option<f64>; 7],
    /// `Pds`: E1 total detection proportion.
    pub p_ds: Option<f64>,
    /// Measured `Pdetect` over E2's application-RAM portion.
    pub p_detect_ram: Option<f64>,
    /// Measured detection proportion over E2's stack portion.
    pub p_detect_stack: Option<f64>,
    /// `Pprop` solved from the algebra (`None` when the measurements
    /// are inconsistent with it).
    pub p_prop_inferred: Option<f64>,
    /// `Pprop` measured directly by the differential oracle over
    /// enriched unmonitored-RAM trials (`None` without enrichment).
    pub p_prop_empirical: Option<f64>,
    /// `(Pen·Pprop + Pem)·Pds` with the empirical `Pprop` when
    /// available, the inferred one otherwise; when the inversion has no
    /// solution in `[0, 1]`, the clamped endpoint (the closest
    /// attainable recomposition) is used.
    pub p_detect_recomposed: Option<f64>,
}

impl Decomposition {
    /// Computes every estimable quantity from `aggregate`.
    pub fn from_aggregate(aggregate: &AttributionAggregate) -> Self {
        let p_em = crate::coverage_report::p_em_from_map();
        let p_en = 1.0 - p_em;
        let mut p_ds_per_signal = [None; 7];
        for (slot, row) in aggregate.per_signal.iter().enumerate() {
            p_ds_per_signal[slot] = row.detected.estimate();
        }
        let p_ds = aggregate.e1_totals().estimate();
        let p_detect_ram = aggregate.e2_ram().estimate();
        let p_detect_stack = aggregate.e2_stack.estimate();
        let p_prop_inferred = match (p_ds, p_detect_ram) {
            // Pprop = 0.5 is a dummy for the inversion call, exactly as
            // in `coverage_report::analyse`.
            (Some(ds), Some(pd)) => CoverageModel::new(p_em, 0.5, ds)
                .ok()
                .and_then(|model| model.infer_p_prop(pd)),
            _ => None,
        };
        let p_prop_empirical = aggregate.oracle.p_prop.estimate();
        // Recomposition uses, in order: the oracle's empirical Pprop,
        // the exact inferred solution, or — when the inversion lands
        // outside [0, 1] (sampling noise around a true Pprop of 0 or
        // 1) — the clamped endpoint. Recomposed Pdetect is monotone in
        // Pprop, so the clamped endpoint is the closest attainable
        // recomposition and `check_algebra` still tests something real:
        // whether even that point stays inside the measured interval.
        let p_prop_clamped = match (p_ds, p_detect_ram) {
            (Some(ds), Some(pd)) if ds > 0.0 && p_en > 0.0 => {
                Some(((pd / ds - p_em) / p_en).clamp(0.0, 1.0))
            }
            _ => None,
        };
        let p_prop = p_prop_empirical.or(p_prop_inferred).or(p_prop_clamped);
        let p_detect_recomposed = match (p_ds, p_prop) {
            (Some(ds), Some(prop)) => Some((p_en * prop + p_em) * ds),
            _ => None,
        };
        Decomposition {
            p_em,
            p_en,
            p_ds_per_signal,
            p_ds,
            p_detect_ram,
            p_detect_stack,
            p_prop_inferred,
            p_prop_empirical,
            p_detect_recomposed,
        }
    }
}

/// The schema-versioned attribution artefact
/// (`results/attribution/*.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttributionReport {
    /// [`SCHEMA_VERSION`].
    pub schema_version: u32,
    /// Artefact discriminator, always [`REPORT_KIND`].
    pub kind: String,
    /// Which binary produced the report.
    pub producer: String,
    /// Run attribution (same metadata as telemetry reports).
    pub run: RunMetadata,
    /// The folded event stream.
    pub aggregate: AttributionAggregate,
    /// The coverage algebra estimated from the aggregate.
    pub decomposition: Decomposition,
}

impl AttributionReport {
    /// Assembles a report (the decomposition is derived on the spot).
    pub fn assemble(producer: &str, run: RunMetadata, aggregate: AttributionAggregate) -> Self {
        let decomposition = Decomposition::from_aggregate(&aggregate);
        AttributionReport {
            schema_version: SCHEMA_VERSION,
            kind: REPORT_KIND.to_owned(),
            producer: producer.to_owned(),
            run,
            aggregate,
            decomposition,
        }
    }

    /// Structural validation: version, discriminator, count
    /// conservation laws, and decomposition consistency (used by
    /// `telemetry_check --attribution` and CI).
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema_version != SCHEMA_VERSION {
            return Err(format!(
                "schema_version {} (this build reads {})",
                self.schema_version, SCHEMA_VERSION
            ));
        }
        if self.kind != REPORT_KIND {
            return Err(format!("unexpected kind `{}`", self.kind));
        }
        let agg = &self.aggregate;
        let e1_totals = agg.e1_totals();
        if e1_totals.total() != agg.e1_trials {
            return Err(format!(
                "per-signal totals sum to {} but e1_trials = {}",
                e1_totals.total(),
                agg.e1_trials
            ));
        }
        let e2_totals = agg.e2_total();
        if e2_totals.total() != agg.e2_trials {
            return Err(format!(
                "E2 region totals sum to {} but e2_trials = {}",
                e2_totals.total(),
                agg.e2_trials
            ));
        }
        let detected = e1_totals.detected() + e2_totals.detected();
        let first_firings: u64 = agg.assertions.iter().map(|a| a.first_firings).sum();
        if first_firings != detected {
            return Err(format!(
                "{first_firings} first firings for {detected} detected trials"
            ));
        }
        for (k, stats) in agg.assertions.iter().enumerate() {
            if stats.first_firings > stats.firings {
                return Err(format!(
                    "EA{}: {} first firings exceed {} firings",
                    k + 1,
                    stats.first_firings,
                    stats.firings
                ));
            }
            if stats.latency.count() != stats.firings {
                return Err(format!(
                    "EA{}: {} latencies for {} firings",
                    k + 1,
                    stats.latency.count(),
                    stats.firings
                ));
            }
        }
        let oracle = &agg.oracle;
        if oracle.masked + oracle.silent + oracle.reached_undetected > oracle.enriched {
            return Err("oracle verdict counts exceed enriched events".to_owned());
        }
        if oracle.p_prop.total() > oracle.enriched {
            return Err("Pprop sample larger than enriched event count".to_owned());
        }
        let expected = Decomposition::from_aggregate(agg);
        let close = |a: Option<f64>, b: Option<f64>| match (a, b) {
            (None, None) => true,
            (Some(x), Some(y)) => (x - y).abs() <= 1e-9,
            _ => false,
        };
        let d = &self.decomposition;
        if !close(Some(d.p_em), Some(expected.p_em))
            || !close(Some(d.p_en), Some(expected.p_en))
            || !close(d.p_ds, expected.p_ds)
            || !close(d.p_detect_ram, expected.p_detect_ram)
            || !close(d.p_detect_stack, expected.p_detect_stack)
            || !close(d.p_prop_inferred, expected.p_prop_inferred)
            || !close(d.p_prop_empirical, expected.p_prop_empirical)
            || !close(d.p_detect_recomposed, expected.p_detect_recomposed)
            || d.p_ds_per_signal
                .iter()
                .zip(&expected.p_ds_per_signal)
                .any(|(a, b)| !close(*a, *b))
        {
            return Err("decomposition does not follow from the aggregate".to_owned());
        }
        Ok(())
    }
}

/// Writes `report` as pretty JSON to `dir/<label>.json`, creating the
/// directory.
///
/// # Errors
///
/// Any filesystem failure.
pub fn write_report(dir: &Path, label: &str, report: &AttributionReport) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{label}.json"));
    let json = serde_json::to_string_pretty(report).expect("report serialises");
    std::fs::write(&path, format!("{json}\n"))?;
    Ok(path)
}

/// Cross-checks the recomposed `Pdetect` against the measured E2 RAM
/// proportion: the recomposition must land inside the measurement's
/// Wilson 95 % interval. With the *inferred* `Pprop` the two agree by
/// construction; with a *clamped* `Pprop` (inversion outside `[0, 1]`)
/// this tests whether any valid `Pprop` recomposes into the interval;
/// with the *empirical* `Pprop` it genuinely tests the algebra against
/// independent oracle evidence.
///
/// # Errors
///
/// A description of the violation (unidentifiable `Pprop`, or a
/// recomposition outside the interval).
pub fn check_algebra(aggregate: &AttributionAggregate) -> Result<(), String> {
    let decomposition = Decomposition::from_aggregate(aggregate);
    let ram = aggregate.e2_ram();
    if ram.is_empty() || decomposition.p_ds.is_none() {
        return Ok(()); // nothing to cross-check yet
    }
    let Some(recomposed) = decomposition.p_detect_recomposed else {
        return Err(
            "Pprop is unidentifiable (Pds or Pen is zero); nothing to recompose".to_owned(),
        );
    };
    let (lo, hi) = ram.interval_wilson(Z_95).expect("non-empty proportion");
    if recomposed < lo - 1e-12 || recomposed > hi + 1e-12 {
        return Err(format!(
            "recomposed Pdetect {recomposed:.4} outside the measured E2 RAM \
             Wilson interval [{lo:.4}, {hi:.4}]"
        ));
    }
    Ok(())
}

/// Cross-checks the aggregate against golden Tables 7–9 reports: every
/// per-signal `Pds`, the E1 total, and the E2 region proportions must
/// be Wilson-equivalent to the goldens, and the recomposed `Pdetect`
/// must land inside the golden E2 RAM interval. Returns every failure
/// (empty = pass).
pub fn check_against_golden(
    aggregate: &AttributionAggregate,
    golden_e1: &E1Report,
    golden_e2: &E2Report,
) -> Vec<String> {
    let mut failures = Vec::new();
    let mut check = |label: &str, mine: Proportion, golden: Proportion| {
        if !mine.equivalent(&golden, Z_95) {
            failures.push(format!(
                "{label}: {}/{} vs golden {}/{} (Wilson 95% intervals disjoint)",
                mine.detected(),
                mine.total(),
                golden.detected(),
                golden.total()
            ));
        }
    };
    for (k, row) in aggregate.per_signal.iter().enumerate() {
        check(
            &format!("Table 7 `{}` Pds", E1Report::row_label(k)),
            row.detected,
            golden_e1.rows[k].cells[7].all,
        );
    }
    check(
        "Table 7 total Pds",
        aggregate.e1_totals(),
        golden_e1.totals.cells[7].all,
    );
    check("Table 9 RAM Pdetect", aggregate.e2_ram(), golden_e2.ram.all);
    check(
        "Table 9 stack P(d)",
        aggregate.e2_stack,
        golden_e2.stack.all,
    );
    check(
        "Table 9 total Pdetect",
        aggregate.e2_total(),
        golden_e2.total.all,
    );
    let decomposition = Decomposition::from_aggregate(aggregate);
    if let (Some(recomposed), Some((lo, hi))) = (
        decomposition.p_detect_recomposed,
        golden_e2.ram.all.interval_wilson(Z_95),
    ) {
        if recomposed < lo - 1e-12 || recomposed > hi + 1e-12 {
            failures.push(format!(
                "recomposed Pdetect {recomposed:.4} outside the golden E2 RAM \
                 Wilson interval [{lo:.4}, {hi:.4}]"
            ));
        }
    }
    failures
}

/// Re-derives the deduplicated event stream from a journal: the cheap
/// fields from the trial records (first occurrence wins, same rule as
/// [`Journal::replay`]), the oracle fields overlaid from any persisted
/// attribution lines.
///
/// # Errors
///
/// [`JournalError::Mismatch`] when a record names an unknown error
/// number or an out-of-range case index.
pub fn events_from_journal(journal: &Journal) -> Result<Vec<AttributionEvent>, JournalError> {
    let e1_errors = crate::error_set::e1();
    let e2_errors = crate::error_set::e2();
    let cases = journal.header.protocol.cases_per_error();
    let map = MonitoredMap::new();
    let mut seen = HashSet::new();
    let mut events = Vec::new();
    for record in &journal.records {
        if record.case_index >= cases {
            return Err(JournalError::Mismatch(format!(
                "case index {} out of range (protocol has {} cases/error)",
                record.case_index, cases
            )));
        }
        if !seen.insert((record.campaign, record.error_number, record.case_index)) {
            continue;
        }
        let event = match record.campaign {
            CampaignKind::E1 => {
                let error = e1_errors
                    .iter()
                    .find(|e| e.number == record.error_number)
                    .ok_or_else(|| {
                        JournalError::Mismatch(format!(
                            "unknown E1 error number S{}",
                            record.error_number
                        ))
                    })?;
                AttributionEvent::for_e1(error, record.case_index, &record.trial)
            }
            CampaignKind::E2 => {
                let error = e2_errors
                    .iter()
                    .find(|e| e.number == record.error_number)
                    .ok_or_else(|| {
                        JournalError::Mismatch(format!(
                            "unknown E2 error number {}",
                            record.error_number
                        ))
                    })?;
                AttributionEvent::for_e2(error, record.case_index, &record.trial, &map)
            }
        };
        events.push(event);
    }
    let by_key: HashMap<(CampaignKind, usize, usize), usize> = events
        .iter()
        .enumerate()
        .map(|(i, e)| (e.key(), i))
        .collect();
    let mut overlaid = HashSet::new();
    for persisted in &journal.attribution {
        if persisted.propagation.is_none() && persisted.first_divergence_ms.is_none() {
            continue;
        }
        if !overlaid.insert(persisted.key()) {
            continue;
        }
        if let Some(&i) = by_key.get(&persisted.key()) {
            events[i].first_divergence_ms = persisted.first_divergence_ms;
            events[i].propagation = persisted.propagation.clone();
        }
    }
    Ok(events)
}

/// Rebuilds the full aggregate from a journal — the entry point of
/// `attribution_report` and of `full_campaign --from-journal
/// --attribution`.
///
/// # Errors
///
/// Same conditions as [`events_from_journal`].
pub fn aggregate_journal(journal: &Journal) -> Result<AttributionAggregate, JournalError> {
    let mut aggregate = AttributionAggregate::new();
    for event in events_from_journal(journal)? {
        aggregate.record(&event);
    }
    Ok(aggregate)
}

/// Runs the differential oracle for one event's trial: re-executes the
/// trial traced, diffs it against the cached fault-free reference, and
/// fills [`AttributionEvent::first_divergence_ms`] and
/// [`AttributionEvent::propagation`]. Expensive (a full traced window)
/// — callers sample.
pub fn enrich_event(
    event: &mut AttributionEvent,
    flip: BitFlip,
    reference: &crate::trace::ReferenceCache,
) -> bool {
    let protocol = reference.protocol().clone();
    let cases = protocol.grid.cases();
    let Some(case) = cases.get(event.case_index).copied() else {
        return false;
    };
    let (_, trace) = crate::experiment::run_trial_traced(&protocol, flip, case);
    let diff = crate::trace::diff(&reference.get(case), &trace);
    event.first_divergence_ms = diff.first_divergence_ms();
    let reached = event.detected()
        || (0..7)
            .filter_map(EaId::from_index)
            .any(|ea| diff.reaches(ea.signal_name()));
    event.propagation = Some(
        if !diff.diverged() {
            PROPAGATION_MASKED
        } else if reached {
            PROPAGATION_REACHED
        } else {
            PROPAGATION_SILENT
        }
        .to_owned(),
    );
    true
}

/// Renders the per-assertion firing/latency league table.
pub fn render_league(aggregate: &AttributionAggregate) -> String {
    let mut out = String::from("assertion attribution league (first-firing order)\n");
    out.push_str(&format!(
        "{:<4} {:<12} {:<9} {:<7} {:>7} {:>7}  latency ms (min/avg/max)\n",
        "EA", "signal", "class", "node", "fired", "first"
    ));
    let mut order: Vec<usize> = (0..7).collect();
    order.sort_by_key(|&k| std::cmp::Reverse(aggregate.assertions[k].first_firings));
    for k in order {
        let ea = EaId::from_index(k).expect("seven assertions");
        let stats = &aggregate.assertions[k];
        let latency = match (
            stats.latency.min(),
            stats.latency.average(),
            stats.latency.max(),
        ) {
            (Some(min), Some(avg), Some(max)) => format!("{min}/{avg:.1}/{max}"),
            _ => "-".to_owned(),
        };
        out.push_str(&format!(
            "{:<4} {:<12} {:<9} {:<7} {:>7} {:>7}  {latency}\n",
            ea.to_string(),
            ea.signal_name(),
            class_label(ea),
            ea.test_location(),
            stats.firings,
            stats.first_firings,
        ));
    }
    out
}

/// Renders the coverage decomposition as explanatory text.
pub fn render_decomposition(decomposition: &Decomposition) -> String {
    let fmt = |v: Option<f64>| v.map_or_else(|| "n/a".to_owned(), |p| format!("{p:.4}"));
    let mut out = String::from("coverage decomposition: Pdetect = (Pen*Pprop + Pem)*Pds\n");
    out.push_str(&format!(
        "  Pem = {:.4}  Pen = {:.4}  (exact, from the memory map)\n",
        decomposition.p_em, decomposition.p_en
    ));
    for (k, p_ds) in decomposition.p_ds_per_signal.iter().enumerate() {
        out.push_str(&format!(
            "  Pds[{:<12}] = {}\n",
            E1Report::row_label(k),
            fmt(*p_ds)
        ));
    }
    out.push_str(&format!(
        "  Pds (total)        = {}\n",
        fmt(decomposition.p_ds)
    ));
    out.push_str(&format!(
        "  Pdetect (E2 RAM)   = {}   Pdetect (stack) = {}\n",
        fmt(decomposition.p_detect_ram),
        fmt(decomposition.p_detect_stack)
    ));
    out.push_str(&format!(
        "  Pprop inferred     = {}   Pprop empirical = {}\n",
        fmt(decomposition.p_prop_inferred),
        fmt(decomposition.p_prop_empirical)
    ));
    out.push_str(&format!(
        "  Pdetect recomposed = {}\n",
        fmt(decomposition.p_detect_recomposed)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error_set;

    fn trial(per_ea: [Option<u64>; 7], failed: bool) -> Trial {
        Trial {
            failed,
            per_ea_first_ms: per_ea,
            first_injection_ms: 20,
            final_distance_m: 200.0,
        }
    }

    #[test]
    fn e1_event_carries_signal_class_and_node() {
        let errors = error_set::e1();
        let mscnt = &errors[80]; // S81: mscnt bit 0 (EA6)
        let mut per_ea = [None; 7];
        per_ea[5] = Some(140);
        let event = AttributionEvent::for_e1(mscnt, 3, &trial(per_ea, false));
        assert_eq!(event.campaign, CampaignKind::E1);
        assert_eq!(event.target_ea, Some(5));
        assert_eq!(event.signal.as_deref(), Some("mscnt"));
        assert_eq!(event.node.as_deref(), Some("CLOCK"));
        assert_eq!(
            event.class.as_deref(),
            Some(class_label(EaId::Ea6).as_str())
        );
        assert_eq!(event.first_firing_ea, Some(5));
        assert_eq!(event.detection_ms, Some(140));
        assert_eq!(event.latency_ms(), Some(120));
        assert_eq!(event.region, REGION_APP_RAM);
    }

    #[test]
    fn first_firing_breaks_ties_towards_lowest_index() {
        let per_ea = [None, Some(80), None, Some(80), None, None, Some(50)];
        assert_eq!(first_firing(&per_ea), Some((6, 50)));
        let tie = [None, Some(80), None, Some(80), None, None, None];
        assert_eq!(first_firing(&tie), Some((1, 80)));
        assert_eq!(first_firing(&[None; 7]), None);
    }

    #[test]
    fn monitored_map_classifies_e2_flips() {
        let map = MonitoredMap::new();
        let errors = error_set::e1();
        // Every E1 flip is by construction inside a monitored signal.
        for error in &errors {
            assert_eq!(
                map.monitored_ea(error.flip),
                Some(error.ea),
                "S{}",
                error.number
            );
        }
        // A stack flip never is.
        assert_eq!(map.monitored_ea(BitFlip::new(Region::Stack, 0, 0)), None);
    }

    #[test]
    fn aggregate_merge_equals_combined_fold() {
        let errors = error_set::e1();
        let e2_errors = error_set::e2();
        let map = MonitoredMap::new();
        let mut detected = [None; 7];
        detected[0] = Some(60);
        let events = vec![
            AttributionEvent::for_e1(&errors[0], 0, &trial(detected, false)),
            AttributionEvent::for_e1(&errors[20], 1, &trial([None; 7], true)),
            AttributionEvent::for_e2(&e2_errors[0], 0, &trial([None; 7], false), &map),
            AttributionEvent::for_e2(&e2_errors[199], 2, &trial(detected, true), &map),
        ];
        let mut whole = AttributionAggregate::new();
        for e in &events {
            whole.record(e);
        }
        let mut left = AttributionAggregate::new();
        left.record(&events[0]);
        left.record(&events[1]);
        let mut right = AttributionAggregate::new();
        right.record(&events[2]);
        right.record(&events[3]);
        let mut merged = AttributionAggregate::new();
        merged.merge(&left);
        merged.merge(&right);
        assert_eq!(merged, whole);
        assert_eq!(whole.e1_trials, 2);
        assert_eq!(whole.e2_trials, 2);
        assert_eq!(whole.e2_stack.total(), 1);
    }

    #[test]
    fn oracle_enrichment_routes_verdicts() {
        let e2_errors = error_set::e2();
        let map = MonitoredMap::new();
        // An unmonitored-RAM error (pick one that misses every signal).
        let unmonitored = e2_errors
            .iter()
            .find(|e| e.flip.region == Region::AppRam && map.monitored_ea(e.flip).is_none())
            .expect("most of RAM is unmonitored");
        let mut event = AttributionEvent::for_e2(unmonitored, 0, &trial([None; 7], false), &map);
        event.propagation = Some(PROPAGATION_SILENT.to_owned());
        event.first_divergence_ms = Some(40);
        let mut agg = AttributionAggregate::new();
        agg.record(&event);
        assert_eq!(agg.oracle.enriched, 1);
        assert_eq!(agg.oracle.silent, 1);
        assert_eq!(agg.oracle.p_prop.total(), 1);
        assert_eq!(agg.oracle.p_prop.detected(), 0);
    }

    #[test]
    fn report_validates_and_rejects_tampering() {
        let errors = error_set::e1();
        let mut detected = [None; 7];
        detected[0] = Some(60);
        let mut aggregate = AttributionAggregate::new();
        aggregate.record(&AttributionEvent::for_e1(
            &errors[0],
            0,
            &trial(detected, false),
        ));
        let run = RunMetadata::for_run(&crate::Protocol::scaled(1, 1_000), true, None);
        let report = AttributionReport::assemble("test", run, aggregate);
        report.validate().expect("fresh report is valid");

        let mut tampered = report.clone();
        tampered.aggregate.e1_trials += 1;
        assert!(tampered.validate().is_err());

        let mut wrong_kind = report.clone();
        wrong_kind.kind = "telemetry".to_owned();
        assert!(wrong_kind.validate().is_err());

        let mut wrong_decomposition = report;
        wrong_decomposition.decomposition.p_ds = Some(0.123);
        assert!(wrong_decomposition.validate().is_err());
    }

    #[test]
    fn algebra_check_accepts_inferred_recomposition() {
        let errors = error_set::e1();
        let e2_errors = error_set::e2();
        let map = MonitoredMap::new();
        let mut detected = [None; 7];
        detected[2] = Some(90);
        let mut aggregate = AttributionAggregate::new();
        for error in errors.iter().take(14) {
            aggregate.record(&AttributionEvent::for_e1(error, 0, &trial(detected, false)));
        }
        for (k, error) in e2_errors.iter().take(8).enumerate() {
            let outcome = if k % 2 == 0 { detected } else { [None; 7] };
            aggregate.record(&AttributionEvent::for_e2(
                error,
                0,
                &trial(outcome, false),
                &map,
            ));
        }
        check_algebra(&aggregate).expect("inferred recomposition is inside its own interval");
    }

    #[test]
    fn algebra_check_clamps_an_out_of_range_inversion() {
        // All E1 trials detected (Pds = 1) but no E2 RAM detections at
        // all: the exact inversion gives Pprop < 0, so recomposition
        // clamps to Pprop = 0 and must still land inside the measured
        // Wilson interval (it does for a small sample around zero).
        let errors = error_set::e1();
        let e2_errors = error_set::e2();
        let map = MonitoredMap::new();
        let mut detected = [None; 7];
        detected[2] = Some(90);
        let mut aggregate = AttributionAggregate::new();
        for error in errors.iter().take(14) {
            aggregate.record(&AttributionEvent::for_e1(error, 0, &trial(detected, false)));
        }
        for error in e2_errors.iter().take(8) {
            aggregate.record(&AttributionEvent::for_e2(
                error,
                0,
                &trial([None; 7], false),
                &map,
            ));
        }
        let decomposition = Decomposition::from_aggregate(&aggregate);
        assert_eq!(decomposition.p_prop_inferred, None);
        let recomposed = decomposition
            .p_detect_recomposed
            .expect("clamped recomposition exists");
        assert!((recomposed - decomposition.p_em).abs() < 1e-12);
        check_algebra(&aggregate).expect("clamped recomposition is inside the interval");
    }

    #[test]
    fn league_table_lists_all_assertions() {
        let rendered = render_league(&AttributionAggregate::new());
        for k in 0..7 {
            let ea = EaId::from_index(k).unwrap();
            assert!(rendered.contains(ea.signal_name()), "{}", ea.signal_name());
        }
    }
}
