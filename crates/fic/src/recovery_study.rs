//! The recovery ablation: what happens when detections also *repair*
//! the signal (paper §2: "measures can be taken to recover from the
//! error, and the signal can be returned to a valid state")?
//!
//! The paper evaluates detection only. This study re-runs an E1-style
//! campaign with the mechanisms' write-back enabled and compares
//! failure rates — quantifying how much of the arresting system's
//! dependability the recovery step buys on top of detection.

use arrestor::{RunConfig, System};
use ea_core::RecoveryStrategy;
use memsim::BitFlip;
use serde::{Deserialize, Serialize};
use simenv::TestCase;

use crate::error_set::E1Error;
use crate::protocol::Protocol;

/// Aggregate outcome of one configuration over a campaign.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryOutcome {
    /// Runs executed.
    pub runs: u64,
    /// Runs that violated a failure constraint.
    pub failures: u64,
    /// Runs with at least one detection.
    pub detected: u64,
}

impl RecoveryOutcome {
    /// Failure rate over the campaign.
    pub fn failure_rate(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.failures as f64 / self.runs as f64
        }
    }
}

/// Results of the ablation: detection-only vs write-back strategies.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RecoveryStudy {
    /// The paper's configuration: detection only.
    pub detection_only: RecoveryOutcome,
    /// Write-back with [`RecoveryStrategy::HoldPrevious`].
    pub hold_previous: RecoveryOutcome,
    /// Write-back with [`RecoveryStrategy::RateProject`].
    pub rate_project: RecoveryOutcome,
}

fn run_one(
    protocol: &Protocol,
    flip: BitFlip,
    case: TestCase,
    recovery: Option<RecoveryStrategy>,
) -> (bool, bool) {
    let config = RunConfig {
        observation_ms: protocol.observation_ms,
        recovery,
        ..RunConfig::default()
    };
    let mut system = System::new(case, config);
    let period = protocol.injection_period_ms.max(1);
    while system.time_ms() < protocol.observation_ms {
        let t = system.time_ms();
        if t > 0 && t.is_multiple_of(period) {
            system.inject(flip);
        }
        system.tick();
    }
    let outcome = system.finish();
    (outcome.verdict.failed(), !outcome.detections.is_empty())
}

/// Selects the [`RecoveryStudy`] slot a configuration accumulates into.
type OutcomeSlot = fn(&mut RecoveryStudy) -> &mut RecoveryOutcome;

/// Runs the three configurations over the given errors and grid.
pub fn run_study(protocol: &Protocol, errors: &[E1Error]) -> RecoveryStudy {
    let cases = protocol.grid.cases();
    let mut study = RecoveryStudy::default();
    let configs: [(Option<RecoveryStrategy>, OutcomeSlot); 3] = [
        (None, |s| &mut s.detection_only),
        (Some(RecoveryStrategy::HoldPrevious), |s| {
            &mut s.hold_previous
        }),
        (Some(RecoveryStrategy::RateProject), |s| &mut s.rate_project),
    ];
    for error in errors {
        for case in &cases {
            for (recovery, pick) in configs {
                let (failed, detected) = run_one(protocol, error.flip, *case, recovery);
                let outcome = pick(&mut study);
                outcome.runs += 1;
                outcome.failures += u64::from(failed);
                outcome.detected += u64::from(detected);
            }
        }
    }
    study
}

/// Renders the study as a small table.
pub fn render(study: &RecoveryStudy) -> String {
    let mut out =
        String::from("Recovery ablation (errors in monitored signals, E1-style protocol)\n");
    out.push_str(&format!(
        "{:<18}{:>8}{:>10}{:>12}{:>10}\n",
        "Configuration", "runs", "failures", "fail rate", "detected"
    ));
    for (label, outcome) in [
        ("detection-only", &study.detection_only),
        ("hold-previous", &study.hold_previous),
        ("rate-project", &study.rate_project),
    ] {
        out.push_str(&format!(
            "{:<18}{:>8}{:>10}{:>11.1}%{:>10}\n",
            label,
            outcome.runs,
            outcome.failures,
            outcome.failure_rate() * 100.0,
            outcome.detected,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error_set;
    use arrestor::EaId;

    #[test]
    fn recovery_prevents_set_value_msb_failures() {
        // SetValue MSB flips reliably fail detection-only runs on light
        // aircraft; with write-back the signal is repaired within one
        // V_REG period and the arrestment survives.
        let protocol = Protocol::scaled(1, 20_000);
        let errors: Vec<_> = error_set::e1()
            .into_iter()
            .filter(|e| e.ea == EaId::Ea1 && e.signal_bit == 15)
            .collect();
        let mut light_protocol = protocol.clone();
        light_protocol.grid.mass_max = light_protocol.grid.mass_min;
        light_protocol.grid.velocity_max = light_protocol.grid.velocity_min;
        let study = run_study(&light_protocol, &errors);
        assert_eq!(study.detection_only.runs, 1);
        assert_eq!(study.detection_only.failures, 1, "baseline must fail");
        assert_eq!(
            study.hold_previous.failures, 0,
            "write-back must prevent the failure"
        );
        // Detection still happens in both configurations.
        assert_eq!(study.detection_only.detected, 1);
        assert_eq!(study.hold_previous.detected, 1);
    }

    #[test]
    fn render_lists_all_three_configurations() {
        let study = RecoveryStudy {
            detection_only: RecoveryOutcome {
                runs: 10,
                failures: 5,
                detected: 9,
            },
            hold_previous: RecoveryOutcome {
                runs: 10,
                failures: 1,
                detected: 9,
            },
            rate_project: RecoveryOutcome {
                runs: 10,
                failures: 2,
                detected: 9,
            },
        };
        let text = render(&study);
        assert!(text.contains("detection-only"));
        assert!(text.contains("hold-previous"));
        assert!(text.contains("rate-project"));
        assert!(text.contains("50.0%"));
    }

    #[test]
    fn failure_rate_handles_empty() {
        assert_eq!(RecoveryOutcome::default().failure_rate(), 0.0);
    }
}
