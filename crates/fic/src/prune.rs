//! Dominance/equivalence pruning: proving whole flip classes inert
//! before simulation.
//!
//! A campaign error is **inert** when no instruction of the target ever
//! reads the bytes it corrupts: its injections XOR memory that is
//! write-only (never even that — simply unreferenced), so the entire
//! read-visible execution, and therefore the [`Trial`], is bit-identical
//! to the fault-free continuation of the same test case. Two such
//! classes are provable statically, straight off the target's own
//! memory maps (the full argument, with the liveness case analysis, is
//! in `docs/PROOFS.md` §Dominance rules):
//!
//! * **Dead stack space** — addresses where
//!   [`memsim::StackLayout::classify`] returns [`memsim::StackHit::Dead`]:
//!   bytes outside every frame of the master's stack model.
//!   [`arrestor::MasterNode::inject`] applies the XOR and then
//!   explicitly discards `Dead` hits without raising a control-flow
//!   fault, and no module addresses the space (≈ 83 % of the 1008-byte
//!   stack).
//! * **Unread RAM** — the `reserved` and `dbg_trace` blocks of the
//!   master's application-RAM image ([`arrestor::SignalMap`]):
//!   allocated to fill the paper's 417-byte map, written by nothing,
//!   read by nothing.
//!
//! The campaign runner skips execution for every trial whose flip
//! classifies ([`InertMap::classify`]), shares one **reference trial**
//! per test case ([`PruneCache`], executed by
//! [`crate::experiment::run_reference_trial_with`]) across all inert
//! errors of that case, and counts the skips exactly in the fold —
//! journal bytes, tables and attribution stay byte-identical to a
//! `--no-prune` run (pinned by `tests/settle_prune_equivalence.rs`).
//!
//! The E1 set targets monitored signals only, so it contains no inert
//! errors; under the seeded E2 set 43 of the 50 stack flips and 135 of
//! the 150 RAM flips classify (89 % overall — the dead stack covers
//! ≈ 83 % of addresses and the `reserved` fill block dominates the
//! 417-byte RAM map).

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use arrestor::{EaSet, MasterNode};
use memsim::{BitFlip, Region, StackHit, StackLayout};
use simenv::TestCase;

use crate::experiment::{run_reference_trial_with, Trial};
use crate::protocol::Protocol;

/// Which static argument proves a flip inert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PruneClass {
    /// The flip lands in dead stack space — outside every frame of the
    /// stack model, discarded by the injector, addressed by nothing.
    DeadStack,
    /// The flip lands in the `reserved` or `dbg_trace` RAM blocks —
    /// allocated but never read or written by any module.
    UnreadRam,
}

impl PruneClass {
    /// Stable label for telemetry and reports.
    pub const fn label(self) -> &'static str {
        match self {
            PruneClass::DeadStack => "dead_stack",
            PruneClass::UnreadRam => "unread_ram",
        }
    }
}

/// One half-open address span in application RAM.
#[derive(Debug, Clone, Copy)]
struct Span {
    start: usize,
    end: usize,
}

impl Span {
    fn contains(self, addr: usize) -> bool {
        (self.start..self.end).contains(&addr)
    }
}

/// The statically-inert coordinates of the master target, read off the
/// same memory maps the nodes execute against (a throwaway
/// [`MasterNode`], exactly as [`crate::error_set::e1`] reads signal
/// addresses).
#[derive(Debug)]
pub struct InertMap {
    stack: StackLayout,
    unread_ram: Vec<Span>,
}

impl InertMap {
    /// Builds the map from the target's own stack model and RAM image.
    ///
    /// # Panics
    ///
    /// Never for the paper's memory maps: the `reserved` and
    /// `dbg_trace` symbols are always allocated (covered by tests).
    pub fn new() -> Self {
        let (stack, _calc) = arrestor::stackmodel::master_stack();
        let node = MasterNode::new(120, EaSet::ALL);
        let unread_ram = ["reserved", "dbg_trace"]
            .iter()
            .map(|name| {
                let sym = node
                    .signals()
                    .symbols()
                    .symbol(name)
                    .expect("allocated in every SignalMap");
                Span {
                    start: sym.addr,
                    end: sym.addr + sym.width,
                }
            })
            .collect();
        InertMap { stack, unread_ram }
    }

    /// Classifies a flip as provably inert, or `None` when it must be
    /// executed. Conservative: anything not in a proven-dead span —
    /// including out-of-range coordinates — stays live.
    pub fn classify(&self, flip: BitFlip) -> Option<PruneClass> {
        match flip.region {
            Region::Stack => (flip.addr < memsim::STACK_BYTES
                && self.stack.classify(flip.addr) == StackHit::Dead)
                .then_some(PruneClass::DeadStack),
            Region::AppRam => self
                .unread_ram
                .iter()
                .any(|span| span.contains(flip.addr))
                .then_some(PruneClass::UnreadRam),
        }
    }
}

impl Default for InertMap {
    fn default() -> Self {
        Self::new()
    }
}

/// The campaign-wide prune state: the inert-coordinate map plus one
/// shared reference trial per test case, built lazily by the first
/// worker that prunes a trial of that case (the same sharing idiom as
/// [`crate::campaign::CheckpointCache`]).
#[derive(Debug)]
pub struct PruneCache {
    map: InertMap,
    references: Mutex<HashMap<usize, Arc<Trial>>>,
}

impl PruneCache {
    /// An empty cache over a freshly-built [`InertMap`].
    pub fn new() -> Self {
        PruneCache {
            map: InertMap::new(),
            references: Mutex::new(HashMap::new()),
        }
    }

    /// Classifies a flip against the inert map.
    pub fn classify(&self, flip: BitFlip) -> Option<PruneClass> {
        self.map.classify(flip)
    }

    /// The shared reference trial for `case`, built on first use.
    /// Returns the trial and whether this call built it (so the caller
    /// can count reference executions exactly once).
    pub fn reference(
        &self,
        protocol: &Protocol,
        case_index: usize,
        case: TestCase,
        prefix: &arrestor::Snapshot,
        analytic_settle: bool,
    ) -> (Arc<Trial>, bool) {
        let mut map = self
            .references
            .lock()
            .expect("no panics while holding lock");
        if let Some(existing) = map.get(&case_index) {
            return (Arc::clone(existing), false);
        }
        let trial = Arc::new(run_reference_trial_with(
            protocol,
            case,
            prefix,
            analytic_settle,
        ));
        map.insert(case_index, Arc::clone(&trial));
        (trial, true)
    }
}

impl Default for PruneCache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error_set;
    use crate::experiment::{fault_free_prefix, run_trial_checkpointed_observed};

    #[test]
    fn dead_stack_and_unread_ram_classify() {
        let map = InertMap::new();
        // Address 10 is below every frame (see stackmodel tests).
        assert_eq!(
            map.classify(BitFlip::new(Region::Stack, 10, 3)),
            Some(PruneClass::DeadStack)
        );
        // The ISR context sits at the top of the stack: live.
        assert_eq!(
            map.classify(BitFlip::new(Region::Stack, memsim::STACK_BYTES - 4, 0)),
            None
        );
        // Monitored signals are live RAM.
        assert_eq!(map.classify(BitFlip::new(Region::AppRam, 0, 0)), None);
        // The reserved block fills the tail of the 417-byte image.
        assert_eq!(
            map.classify(BitFlip::new(Region::AppRam, memsim::APP_RAM_BYTES - 1, 7)),
            Some(PruneClass::UnreadRam)
        );
    }

    #[test]
    fn out_of_range_stack_flips_stay_live() {
        let map = InertMap::new();
        assert_eq!(
            map.classify(BitFlip::new(Region::Stack, memsim::STACK_BYTES + 100, 0)),
            None
        );
    }

    #[test]
    fn e1_contains_no_inert_errors() {
        let map = InertMap::new();
        for error in error_set::e1() {
            assert_eq!(map.classify(error.flip), None, "S{}", error.number);
        }
    }

    #[test]
    fn e2_contains_inert_errors_of_both_classes() {
        let map = InertMap::new();
        let classes: Vec<_> = error_set::e2()
            .iter()
            .filter_map(|e| map.classify(e.flip))
            .collect();
        assert!(classes.contains(&PruneClass::DeadStack), "{classes:?}");
        assert!(classes.contains(&PruneClass::UnreadRam), "{classes:?}");
    }

    #[test]
    fn reference_trial_equals_executed_inert_trial() {
        let protocol = crate::protocol::Protocol::scaled(1, 3_000);
        let case = protocol.grid.cases()[0];
        let prefix = fault_free_prefix(&protocol, case);
        let cache = PruneCache::new();
        let flip = BitFlip::new(Region::Stack, 10, 3);
        assert!(cache.classify(flip).is_some());
        let (reference, built) = cache.reference(&protocol, 0, case, &prefix, false);
        assert!(built);
        let (executed, _) = run_trial_checkpointed_observed(&protocol, flip, case, &prefix);
        assert_eq!(*reference, executed);
        // Second lookup shares, never rebuilds.
        let (again, built) = cache.reference(&protocol, 0, case, &prefix, false);
        assert!(!built);
        assert_eq!(*again, executed);
    }
}
