//! The differential trace oracle: fault-free reference traces,
//! tick-by-tick diffing of injected runs, and minimal reproducer
//! bundles.
//!
//! The campaign's end-state analysis (detections, failure verdicts)
//! says *whether* an injected error mattered; the trace oracle says
//! *when and where*. A fault-free run is recorded once per
//! [`TestCase`] ([`ReferenceCache`] memoises it), an injected run is
//! recorded with the same instrumentation, and [`diff`] reports:
//!
//! * the **first divergence** — the earliest tick at which any recorded
//!   signal differs from the reference, with its scheduler slot. For an
//!   error that becomes a data error this bounds the detection latency
//!   from below, so `first_divergence ≤ first_detection` cross-checks
//!   Tables 8–9 independently of the assertion log;
//! * the **propagation path** — the order in which further signals
//!   diverge, which is the paper's `Pprop` made visible: a flip whose
//!   path never reaches a monitored signal cannot be detected by an
//!   assertion on that signal.
//!
//! On a golden-gate or assertion failure, [`ReproBundle`] packages the
//! offending ⟨error, case⟩ with the divergence report and a trace
//! excerpt into `results/repro/` so the failure replays from one JSON
//! file (see EXPERIMENTS.md, "Tracing & differential oracle").

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use arrestor::trace::{TickRecord, Trace};
use arrestor::{RunConfig, System};
use serde::{Deserialize, Serialize};
use simenv::TestCase;

use crate::experiment::Trial;
use crate::protocol::Protocol;
use crate::telemetry;

/// One signal's first departure from the reference trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SignalDivergence {
    /// The diverging signal (a [`TickRecord`] field name).
    pub signal: String,
    /// Simulation time of the first difference, ms.
    pub t_ms: u64,
    /// Scheduler slot executing at that tick (0..6).
    pub slot: u16,
    /// Reference value, rendered.
    pub reference: String,
    /// Observed value, rendered.
    pub observed: String,
}

/// The oracle's verdict on one observed trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceDiff {
    /// The earliest divergence (record-field order breaks ties within a
    /// tick, so monitored signals win over derived plant state).
    pub first: Option<SignalDivergence>,
    /// First divergence of every signal that ever departs, in time
    /// order — the propagation path through the signal graph.
    pub path: Vec<SignalDivergence>,
    /// Ticks compared (the shorter of the two traces).
    pub compared_ticks: usize,
    /// Whether the traces had different lengths (never the case for
    /// runs under one protocol; reported rather than silently clipped).
    pub length_mismatch: bool,
}

impl TraceDiff {
    /// Whether any signal diverged.
    pub fn diverged(&self) -> bool {
        self.first.is_some()
    }

    /// Time of the first divergence, ms.
    pub fn first_divergence_ms(&self) -> Option<u64> {
        self.first.as_ref().map(|d| d.t_ms)
    }

    /// Scheduler slot of the first divergence.
    pub fn first_divergence_slot(&self) -> Option<u16> {
        self.first.as_ref().map(|d| d.slot)
    }

    /// Whether the propagation path reaches `signal` (e.g. a monitored
    /// signal name — empirical `Pprop` evidence).
    pub fn reaches(&self, signal: &str) -> bool {
        self.path.iter().any(|d| d.signal == signal)
    }
}

/// Compares an observed trace against a reference, tick by tick.
///
/// Every [`TickRecord`] field is compared with exact (bitwise for
/// floats) equality; the first difference per signal is recorded. The
/// result's `path` is ordered by divergence time, so `path[0] ==
/// first`.
pub fn diff(reference: &Trace, observed: &Trace) -> TraceDiff {
    let compared_ticks = reference.records.len().min(observed.records.len());
    let mut path: Vec<SignalDivergence> = Vec::new();
    let mut seen = [false; arrestor::trace::FIELD_COUNT];
    for (r, o) in reference
        .records
        .iter()
        .zip(&observed.records)
        .take(compared_ticks)
    {
        for (k, ((name, rv), (_, ov))) in r.fields().iter().zip(o.fields().iter()).enumerate() {
            if !seen[k] && *rv != *ov {
                seen[k] = true;
                path.push(SignalDivergence {
                    signal: (*name).to_owned(),
                    t_ms: o.t_ms,
                    slot: o.slot(),
                    reference: rv.to_string(),
                    observed: ov.to_string(),
                });
            }
        }
        if seen.iter().all(|s| *s) {
            break;
        }
    }
    TraceDiff {
        first: path.first().cloned(),
        path,
        compared_ticks,
        length_mismatch: reference.records.len() != observed.records.len(),
    }
}

/// Records the fault-free reference trace of one test case under the
/// protocol's observation window.
pub fn record_reference(protocol: &Protocol, case: TestCase) -> Trace {
    let config = RunConfig {
        observation_ms: protocol.observation_ms,
        trace: true,
        ..RunConfig::default()
    };
    let outcome = System::new(case, config).run_to_completion();
    outcome.trace.expect("tracing was enabled")
}

/// Memoised fault-free reference traces, one per test case.
///
/// A campaign diffs many injected trials of the same case against the
/// same golden trace; the cache records it on first use and shares it
/// (thread-safely) afterwards.
#[derive(Debug)]
pub struct ReferenceCache {
    protocol: Protocol,
    cache: Mutex<HashMap<(u64, u64), Arc<Trace>>>,
    hits: Option<Arc<telemetry::Counter>>,
    misses: Option<Arc<telemetry::Counter>>,
    record_us: Option<Arc<telemetry::Histogram>>,
}

impl ReferenceCache {
    /// An empty cache for the given protocol.
    pub fn new(protocol: Protocol) -> Self {
        ReferenceCache {
            protocol,
            cache: Mutex::new(HashMap::new()),
            hits: None,
            misses: None,
            record_us: None,
        }
    }

    /// Attaches telemetry: memo hits and misses are counted under
    /// `trace.reference.cache.{hits,misses}` and reference recording
    /// time under `trace.reference.record_us`.
    #[must_use]
    pub fn with_telemetry(mut self, registry: &telemetry::Registry) -> Self {
        self.hits = Some(registry.counter("trace.reference.cache.hits"));
        self.misses = Some(registry.counter("trace.reference.cache.misses"));
        self.record_us =
            Some(registry.histogram("trace.reference.record_us", &telemetry::span_bounds_us()));
        self
    }

    /// The protocol the references are recorded under.
    pub fn protocol(&self) -> &Protocol {
        &self.protocol
    }

    /// The reference trace for `case`, recording it on first use.
    pub fn get(&self, case: TestCase) -> Arc<Trace> {
        let key = (case.mass_kg.to_bits(), case.velocity_ms.to_bits());
        if let Some(hit) = self.cache.lock().expect("cache lock").get(&key) {
            if let Some(c) = &self.hits {
                c.inc();
            }
            return Arc::clone(hit);
        }
        if let Some(c) = &self.misses {
            c.inc();
        }
        // Record outside the lock: a miss costs a full fault-free run
        // and must not serialise other cases behind it.
        let span = self
            .record_us
            .as_ref()
            .map(|h| telemetry::SpanTimer::start(Arc::clone(h)));
        let trace = Arc::new(record_reference(&self.protocol, case));
        drop(span);
        Arc::clone(
            self.cache
                .lock()
                .expect("cache lock")
                .entry(key)
                .or_insert(trace),
        )
    }

    /// Number of memoised cases.
    pub fn len(&self) -> usize {
        self.cache.lock().expect("cache lock").len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Records one diffed trial's divergence-to-detection interval into
/// `registry` (histogram `trace.divergence_to_detection_ms`): first
/// divergence of any recorded signal → first detection by any
/// mechanism. The trace oracle bounds detection latency from below
/// (`first_divergence ≤ first_detection`), so the distribution of this
/// interval cross-checks the Table 8–9 latency distributions
/// independently of the assertion log. Returns the interval when the
/// trial both diverged and was detected.
pub fn record_divergence_to_detection(
    registry: &telemetry::Registry,
    divergence: &TraceDiff,
    trial: &Trial,
) -> Option<u64> {
    let diverged = divergence.first_divergence_ms()?;
    let detected = trial.first_detection(arrestor::EaSet::ALL)?;
    let interval = detected.saturating_sub(diverged);
    registry
        .histogram(
            "trace.divergence_to_detection_ms",
            &telemetry::latency_bounds_ms(),
        )
        .record(interval);
    Some(interval)
}

/// Schema version of [`ReproBundle`] files.
pub const REPRO_SCHEMA_VERSION: u32 = 1;

/// The injected error a reproducer replays, in campaign coordinates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReproError {
    /// Human label (`S37`, `E2#152`, `ram:0x1a.3`, …).
    pub label: String,
    /// Memory region (`AppRam` or `Stack`).
    pub region: String,
    /// Byte address within the region.
    pub addr: usize,
    /// Bit position (0 = LSB).
    pub bit: u8,
}

impl ReproError {
    /// Describes a flip with a label.
    pub fn new(label: impl Into<String>, flip: memsim::BitFlip) -> Self {
        ReproError {
            label: label.into(),
            region: format!("{:?}", flip.region),
            addr: flip.addr,
            bit: flip.bit,
        }
    }
}

/// A reference/observed record pair from the divergence window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReproTick {
    /// Simulation time, ms.
    pub t_ms: u64,
    /// The fault-free record.
    pub reference: TickRecord,
    /// The injected run's record.
    pub observed: TickRecord,
}

/// A minimal, self-contained reproducer: everything needed to re-run
/// and understand one divergent ⟨error, case⟩ trial.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReproBundle {
    /// [`REPRO_SCHEMA_VERSION`].
    pub schema_version: u32,
    /// Why the bundle was dumped (golden-gate divergence, spurious
    /// detection, …).
    pub reason: String,
    /// The protocol the trial ran under.
    pub protocol: Protocol,
    /// The test case.
    pub case: TestCase,
    /// The injected error (absent for fault-free violations).
    pub error: Option<ReproError>,
    /// The trial outcome (absent for fault-free violations).
    pub trial: Option<Trial>,
    /// The oracle's divergence report.
    pub divergence: TraceDiff,
    /// Reference/observed records around the first divergence
    /// (±[`REPRO_WINDOW_RADIUS_MS`] ms).
    pub window: Vec<ReproTick>,
}

/// Half-width of the record excerpt around the first divergence, ms.
pub const REPRO_WINDOW_RADIUS_MS: u64 = 10;

impl ReproBundle {
    /// Assembles a bundle from a diffed trial. The excerpt window is
    /// centred on the first divergence (empty when nothing diverged).
    pub fn assemble(
        reason: impl Into<String>,
        protocol: &Protocol,
        case: TestCase,
        error: Option<ReproError>,
        trial: Option<Trial>,
        reference: &Trace,
        observed: &Trace,
    ) -> Self {
        let divergence = diff(reference, observed);
        let window = divergence
            .first_divergence_ms()
            .map(|t0| {
                let lo = t0.saturating_sub(REPRO_WINDOW_RADIUS_MS);
                let hi = t0 + REPRO_WINDOW_RADIUS_MS;
                (lo..=hi)
                    .filter_map(|t| {
                        Some(ReproTick {
                            t_ms: t,
                            reference: *reference.at(t)?,
                            observed: *observed.at(t)?,
                        })
                    })
                    .collect()
            })
            .unwrap_or_default();
        ReproBundle {
            schema_version: REPRO_SCHEMA_VERSION,
            reason: reason.into(),
            protocol: protocol.clone(),
            case,
            error,
            trial,
            divergence,
            window,
        }
    }
}

/// Writes a bundle as pretty JSON to `dir/<label>.json`, creating the
/// directory as needed, and returns the path written.
///
/// # Errors
///
/// Any filesystem failure.
pub fn write_repro(dir: &Path, label: &str, bundle: &ReproBundle) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let sanitized: String = label
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    let path = dir.join(format!("{sanitized}.json"));
    std::fs::write(
        &path,
        serde_json::to_string_pretty(bundle).expect("bundle serialises"),
    )?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::{BitFlip, Region};

    fn tiny_protocol() -> Protocol {
        Protocol::scaled(1, 300)
    }

    #[test]
    fn fault_free_rerun_has_no_divergence() {
        let protocol = tiny_protocol();
        let case = protocol.grid.cases()[0];
        let a = record_reference(&protocol, case);
        let b = record_reference(&protocol, case);
        assert_eq!(a.len(), 300);
        let d = diff(&a, &b);
        assert!(!d.diverged(), "unexpected divergence: {:?}", d.first);
        assert!(d.path.is_empty());
        assert_eq!(d.compared_ticks, 300);
        assert!(!d.length_mismatch);
    }

    #[test]
    fn synthetic_divergence_is_located_and_ordered() {
        let protocol = tiny_protocol();
        let case = protocol.grid.cases()[0];
        let reference = record_reference(&protocol, case);
        let mut observed = reference.clone();
        // Corrupt mscnt from t = 100 and OutValue from t = 150.
        for r in &mut observed.records {
            if r.t_ms >= 100 {
                r.signals.mscnt ^= 0x8000;
            }
            if r.t_ms >= 150 {
                r.signals.out_value ^= 0x0004;
            }
        }
        let d = diff(&reference, &observed);
        let first = d.first.as_ref().expect("diverged");
        assert_eq!(first.signal, "mscnt");
        assert_eq!(first.t_ms, 100);
        assert_eq!(
            d.first_divergence_slot(),
            Some(observed.at(100).unwrap().slot())
        );
        assert!(d.reaches("OutValue"));
        assert!(!d.reaches("IsValue"));
        // Path is time-ordered and starts with the first divergence.
        assert_eq!(d.path[0], *first);
        for pair in d.path.windows(2) {
            assert!(pair[0].t_ms <= pair[1].t_ms);
        }
    }

    #[test]
    fn reference_cache_memoises_per_case() {
        let cache = ReferenceCache::new(tiny_protocol());
        let cases = tiny_protocol().grid.cases();
        let a = cache.get(cases[0]);
        let b = cache.get(cases[0]);
        assert!(Arc::ptr_eq(&a, &b), "same case must share one trace");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn repro_bundle_round_trips_through_json() {
        let protocol = tiny_protocol();
        let case = protocol.grid.cases()[0];
        let reference = record_reference(&protocol, case);
        let mut observed = reference.clone();
        for r in &mut observed.records {
            if r.t_ms >= 42 {
                r.signals.pulscnt ^= 1;
            }
        }
        let bundle = ReproBundle::assemble(
            "unit test",
            &protocol,
            case,
            Some(ReproError::new("S1", BitFlip::new(Region::AppRam, 8, 0))),
            None,
            &reference,
            &observed,
        );
        assert_eq!(bundle.divergence.first_divergence_ms(), Some(42));
        assert!(!bundle.window.is_empty());

        let dir = std::env::temp_dir().join(format!("fic-repro-test-{}", std::process::id()));
        let path = write_repro(&dir, "unit/test:S1", &bundle).unwrap();
        assert!(path
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .eq("unit_test_S1.json"));
        let text = std::fs::read_to_string(&path).unwrap();
        let back: ReproBundle = serde_json::from_str(&text).unwrap();
        assert_eq!(bundle, back);
    }
}
