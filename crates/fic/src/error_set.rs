//! The error sets E1 and E2 of paper Section 3.4 (Table 6).

use arrestor::{EaId, EaSet, MasterNode};
use memsim::{BitFlip, Region, APP_RAM_BYTES, STACK_BYTES};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One error of set E1: a bit flip in one of the monitored signals.
///
/// Table 6 numbers the errors S1–S112, sixteen per signal in EA order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct E1Error {
    /// Error number (1-based, `S<number>` in the paper).
    pub number: usize,
    /// The mechanism directly monitoring the corrupted signal.
    pub ea: EaId,
    /// Bit position within the 16-bit signal (0 = LSB).
    pub signal_bit: u8,
    /// The flip coordinates.
    pub flip: BitFlip,
}

impl E1Error {
    /// The corrupted signal's name.
    pub fn signal_name(&self) -> &'static str {
        self.ea.signal_name()
    }
}

/// One error of set E2: a bit flip at a uniformly random location in
/// application RAM or stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct E2Error {
    /// Error index (1-based, 1..=200).
    pub number: usize,
    /// The flip coordinates (`flip.region` tells RAM from stack).
    pub flip: BitFlip,
}

/// Builds error set E1: every bit position of every monitored signal —
/// 7 × 16 = 112 errors, in Table 6 order (S1 = SetValue bit 0, …,
/// S112 = OutValue bit 15).
pub fn e1() -> Vec<E1Error> {
    // The signal addresses are deterministic; read them off a throwaway
    // node exactly as the FIC would download them from the target map.
    let node = MasterNode::new(120, EaSet::ALL);
    let monitored = node.signals().monitored();
    let mut errors = Vec::with_capacity(112);
    for (slot, (name, addr)) in monitored.iter().enumerate() {
        let ea = EaId::from_index(slot).expect("seven monitored signals");
        debug_assert_eq!(*name, ea.signal_name());
        for bit in 0u8..16 {
            let byte = *addr + usize::from(bit / 8);
            errors.push(E1Error {
                number: errors.len() + 1,
                ea,
                signal_bit: bit,
                flip: BitFlip::new(Region::AppRam, byte, bit % 8),
            });
        }
    }
    errors
}

/// Default seed of the E2 sample (fixed for reproducibility; the paper
/// drew once from a uniform distribution and reused the set).
pub const E2_SEED: u64 = 0x0DD5_2000;

/// Counts of the paper's E2 set: 150 RAM + 50 stack errors.
pub const E2_RAM_ERRORS: usize = 150;
/// Stack portion of E2.
pub const E2_STACK_ERRORS: usize = 50;

/// Builds error set E2 with the default seed.
pub fn e2() -> Vec<E2Error> {
    e2_with_seed(E2_SEED)
}

/// Builds error set E2 from a seed: 150 uniform flips in application
/// RAM then 50 in the stack, locations and bit positions uniform,
/// sampled with replacement (duplicates allowed, as in the paper).
pub fn e2_with_seed(seed: u64) -> Vec<E2Error> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut errors = Vec::with_capacity(E2_RAM_ERRORS + E2_STACK_ERRORS);
    for _ in 0..E2_RAM_ERRORS {
        let flip = BitFlip::new(
            Region::AppRam,
            rng.gen_range(0..APP_RAM_BYTES),
            rng.gen_range(0..8u8),
        );
        errors.push(E2Error {
            number: errors.len() + 1,
            flip,
        });
    }
    for _ in 0..E2_STACK_ERRORS {
        let flip = BitFlip::new(
            Region::Stack,
            rng.gen_range(0..STACK_BYTES),
            rng.gen_range(0..8u8),
        );
        errors.push(E2Error {
            number: errors.len() + 1,
            flip,
        });
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_has_112_errors_in_table6_order() {
        let errors = e1();
        assert_eq!(errors.len(), 112);
        // S1..S16 hit SetValue, S17..S32 IsValue, etc.
        assert_eq!(errors[0].ea, EaId::Ea1);
        assert_eq!(errors[0].signal_bit, 0);
        assert_eq!(errors[15].ea, EaId::Ea1);
        assert_eq!(errors[15].signal_bit, 15);
        assert_eq!(errors[16].ea, EaId::Ea2);
        assert_eq!(errors[111].ea, EaId::Ea7);
        for (k, e) in errors.iter().enumerate() {
            assert_eq!(e.number, k + 1);
            assert_eq!(e.flip.region, Region::AppRam);
        }
    }

    #[test]
    fn e1_bits_map_to_little_endian_bytes() {
        let errors = e1();
        // Bit 8 of a signal is bit 0 of the following byte.
        let low = &errors[0]; // SetValue bit 0
        let high = &errors[8]; // SetValue bit 8
        assert_eq!(high.flip.addr, low.flip.addr + 1);
        assert_eq!(high.flip.bit, 0);
    }

    #[test]
    fn e1_covers_each_signal_with_16_distinct_flips() {
        let errors = e1();
        for chunk in errors.chunks(16) {
            let mut flips: Vec<_> = chunk.iter().map(|e| e.flip).collect();
            flips.sort_by_key(|f| (f.addr, f.bit));
            flips.dedup();
            assert_eq!(flips.len(), 16);
        }
    }

    #[test]
    fn e2_has_paper_distribution() {
        let errors = e2();
        assert_eq!(errors.len(), 200);
        let ram = errors
            .iter()
            .filter(|e| e.flip.region == Region::AppRam)
            .count();
        let stack = errors
            .iter()
            .filter(|e| e.flip.region == Region::Stack)
            .count();
        assert_eq!(ram, E2_RAM_ERRORS);
        assert_eq!(stack, E2_STACK_ERRORS);
        for e in &errors {
            let size = match e.flip.region {
                Region::AppRam => APP_RAM_BYTES,
                Region::Stack => STACK_BYTES,
            };
            assert!(e.flip.addr < size);
            assert!(e.flip.bit < 8);
        }
    }

    #[test]
    fn e2_is_reproducible_and_seed_sensitive() {
        assert_eq!(e2(), e2());
        assert_ne!(e2_with_seed(1), e2_with_seed(2));
    }
}
