//! Parallel campaign execution: fan out ⟨error, test case⟩ pairs over
//! worker threads, merge partial reports.

use crossbeam::channel;
use simenv::TestCase;

use crate::error_set::{E1Error, E2Error};
use crate::experiment::run_trial;
use crate::protocol::Protocol;
use crate::results::{E1Report, E2Report};

/// Executes error-injection campaigns under a protocol.
#[derive(Debug, Clone)]
pub struct CampaignRunner {
    protocol: Protocol,
}

impl CampaignRunner {
    /// A runner for the given protocol.
    pub fn new(protocol: Protocol) -> Self {
        CampaignRunner { protocol }
    }

    /// The protocol in use.
    pub fn protocol(&self) -> &Protocol {
        &self.protocol
    }

    /// Runs the E1 campaign over the given errors (the full paper set is
    /// [`crate::error_set::e1`]); one run per ⟨error, case⟩ pair, all
    /// eight versions derived from the per-mechanism log.
    pub fn run_e1(&self, errors: &[E1Error]) -> E1Report {
        self.fan_out(
            errors,
            E1Report::new,
            |report, error, trial| report.record(error, trial),
            E1Report::merge,
        )
    }

    /// Runs the E2 campaign (the paper set is [`crate::error_set::e2`])
    /// on the all-mechanisms version.
    pub fn run_e2(&self, errors: &[E2Error]) -> E2Report {
        self.fan_out(
            errors,
            E2Report::new,
            |report, error, trial| report.record(error, trial),
            E2Report::merge,
        )
    }

    /// Generic worker fan-out: each worker runs whole errors (all grid
    /// cases) to keep the work units coarse, accumulates into a local
    /// report, and the locals are merged at the end.
    fn fan_out<E, R>(
        &self,
        errors: &[E],
        make: fn() -> R,
        record: fn(&mut R, &E, &crate::experiment::Trial),
        merge: fn(&mut R, &R),
    ) -> R
    where
        E: Sync + HasFlip,
        R: Send,
    {
        let cases: Vec<TestCase> = self.protocol.grid.cases();
        let workers = self.protocol.effective_workers().max(1);
        let (tx, rx) = channel::unbounded::<usize>();
        for idx in 0..errors.len() {
            tx.send(idx).expect("queue is open");
        }
        drop(tx);

        let partials: Vec<R> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                let rx = rx.clone();
                let cases = &cases;
                let protocol = &self.protocol;
                handles.push(scope.spawn(move || {
                    let mut local = make();
                    while let Ok(idx) = rx.recv() {
                        let error = &errors[idx];
                        for case in cases {
                            let trial = run_trial(protocol, error.flip(), *case);
                            record(&mut local, error, &trial);
                        }
                    }
                    local
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });

        let mut report = make();
        for partial in &partials {
            merge(&mut report, partial);
        }
        report
    }
}

/// Internal: both error kinds expose their flip coordinates.
pub trait HasFlip {
    /// The SWIFI coordinates of this error.
    fn flip(&self) -> memsim::BitFlip;
}

impl HasFlip for E1Error {
    fn flip(&self) -> memsim::BitFlip {
        self.flip
    }
}

impl HasFlip for E2Error {
    fn flip(&self) -> memsim::BitFlip {
        self.flip
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error_set;
    use arrestor::EaId;

    #[test]
    fn small_e1_campaign_counts_trials() {
        let protocol = Protocol::scaled(2, 1_500);
        let runner = CampaignRunner::new(protocol);
        let errors = error_set::e1();
        // mscnt errors: S81..S96 — use four of them.
        let subset = &errors[80..84];
        let report = runner.run_e1(subset);
        assert_eq!(report.trials(), 4 * 4);
        // Every mscnt error is caught by EA6 within a short window.
        let row = &report.rows[EaId::Ea6.index()];
        assert_eq!(row.cells[EaId::Ea6.index()].all.detected(), 16);
    }

    #[test]
    fn e1_report_is_deterministic_across_worker_counts() {
        let errors = error_set::e1();
        let subset = &errors[0..2];
        let mut p1 = Protocol::scaled(1, 1_000);
        p1.workers = 1;
        let mut p4 = Protocol::scaled(1, 1_000);
        p4.workers = 4;
        let r1 = CampaignRunner::new(p1).run_e1(subset);
        let r4 = CampaignRunner::new(p4).run_e1(subset);
        assert_eq!(r1, r4);
    }

    #[test]
    fn small_e2_campaign_routes_regions() {
        let protocol = Protocol::scaled(1, 1_000);
        let runner = CampaignRunner::new(protocol);
        let errors = error_set::e2();
        let subset: Vec<_> = errors
            .iter()
            .filter(|e| e.number <= 2 || e.number > 198)
            .copied()
            .collect();
        let report = runner.run_e2(&subset);
        assert_eq!(report.trials(), 4);
        assert_eq!(report.ram.all.total(), 2);
        assert_eq!(report.stack.all.total(), 2);
    }
}
