//! Parallel campaign execution: fan out ⟨error, test case⟩ pairs over
//! worker threads, stream completed trials back to a single collector.
//!
//! By default trials run **checkpointed**: the grid is grouped by
//! injection point (test case), the fault-free prefix of each case is
//! simulated once and cached in a [`CheckpointCache`] shared across
//! workers, and every trial of that case forks from the cached
//! [`arrestor::Snapshot`] instead of replaying the prefix from t = 0.
//! Combined with the steady-state fast-forward of
//! [`arrestor::SettleDetector`], this cuts campaign wall clock without
//! changing a single bit of any result (see `PERFORMANCE.md`);
//! [`CampaignRunner::with_checkpointing`]`(false)` forces full replay
//! as a cross-check.
//!
//! The collector (the calling thread) folds every trial into the report
//! *and* appends it to the optional crash-safe [`crate::journal`], so a killed
//! campaign can be resumed with [`CampaignRunner::resume_e1`] /
//! [`CampaignRunner::resume_e2`]: recorded trials are replayed from the
//! journal and only the missing ⟨error, case⟩ pairs are re-executed.
//! Reports are commutative accumulators, so the result is independent
//! of worker count, completion order, and interruption points.

use std::collections::{HashMap, HashSet};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crossbeam::channel;
use simenv::TestCase;

use crate::attribution::{AttributionAggregate, AttributionEvent, MonitoredMap};
use crate::convergence::{CellKey, ConvergenceAggregate};
use crate::error_set::{E1Error, E2Error};
use crate::experiment::{
    fault_free_prefix, run_case_batch_with, run_trial, run_trial_checkpointed_observed_with, Trial,
    TrialExecution,
};
use crate::journal::{CampaignKind, Journal, JournalError, JournalWriter, ShardSpec};
use crate::protocol::Protocol;
use crate::results::{E1Report, E2Report};
use crate::telemetry;

/// Fault-free prefix snapshots shared across campaign workers, one per
/// test case.
///
/// Every trial of a campaign spends its first injection period — the
/// fault-free prefix — in exactly one of
/// [`Protocol::cases_per_error`] states, so the prefix is simulated
/// once per case and the resulting [`arrestor::Snapshot`] is forked by
/// every trial of that case. The cache is lazy: a prefix is built by
/// the first worker that needs it and shared (via [`Arc`]) with the
/// rest.
#[derive(Debug, Default)]
pub struct CheckpointCache {
    prefixes: Mutex<HashMap<usize, Arc<arrestor::Snapshot>>>,
}

impl CheckpointCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The fault-free prefix for `case`, built on first use.
    pub fn prefix(
        &self,
        protocol: &Protocol,
        case_index: usize,
        case: TestCase,
    ) -> Arc<arrestor::Snapshot> {
        self.prefix_observed(protocol, case_index, case, None)
    }

    /// [`CheckpointCache::prefix`] with hit/miss accounting and a
    /// snapshot-build span recorded into the campaign telemetry.
    pub fn prefix_observed(
        &self,
        protocol: &Protocol,
        case_index: usize,
        case: TestCase,
        tel: Option<&CampaignTelemetry>,
    ) -> Arc<arrestor::Snapshot> {
        let mut map = self.prefixes.lock().expect("no panics while holding lock");
        if let Some(existing) = map.get(&case_index) {
            if let Some(t) = tel {
                t.cache_hits.inc();
            }
            return Arc::clone(existing);
        }
        if let Some(t) = tel {
            t.cache_misses.inc();
        }
        let span = tel.map(|t| telemetry::SpanTimer::start(Arc::clone(&t.snapshot_build_us)));
        let snapshot = Arc::new(fault_free_prefix(protocol, case));
        drop(span);
        map.insert(case_index, Arc::clone(&snapshot));
        snapshot
    }
}

/// Shared metric handles for the campaign execution path, registered
/// once per campaign execution from the runner's
/// [`telemetry::Registry`] and updated lock-free by workers and the
/// collector. See `OBSERVABILITY.md` for the catalogue.
#[derive(Debug, Clone)]
pub struct CampaignTelemetry {
    registry: Arc<telemetry::Registry>,
    cache_hits: Arc<telemetry::Counter>,
    cache_misses: Arc<telemetry::Counter>,
    snapshot_build_us: Arc<telemetry::Histogram>,
    queue_wait_us: Arc<telemetry::Histogram>,
    settle_stop_ms: Arc<telemetry::Histogram>,
    settle_captures: Arc<telemetry::Histogram>,
    trials: Arc<telemetry::Counter>,
    trials_settled: Arc<telemetry::Counter>,
    trials_full_window: Arc<telemetry::Counter>,
    window_ms_simulated: Arc<telemetry::Counter>,
    window_ms_skipped: Arc<telemetry::Counter>,
    proof_exact: Arc<telemetry::Counter>,
    proof_translated: Arc<telemetry::Counter>,
    proof_retired: Arc<telemetry::Counter>,
    proof_frozen: Arc<telemetry::Counter>,
    proof_analytic: Arc<telemetry::Counter>,
    analytic_stops: Arc<telemetry::Counter>,
    prune_trials: Arc<telemetry::Counter>,
    prune_dead_stack: Arc<telemetry::Counter>,
    prune_unread_ram: Arc<telemetry::Counter>,
    prune_references: Arc<telemetry::Counter>,
}

impl CampaignTelemetry {
    /// Registers the campaign metric family in `registry`.
    pub fn register(registry: &Arc<telemetry::Registry>) -> Self {
        CampaignTelemetry {
            cache_hits: registry.counter("campaign.checkpoint.cache.hits"),
            cache_misses: registry.counter("campaign.checkpoint.cache.misses"),
            snapshot_build_us: registry.histogram(
                "campaign.checkpoint.snapshot_build_us",
                &telemetry::span_bounds_us(),
            ),
            queue_wait_us: registry.histogram(
                "campaign.worker.queue_wait_us",
                &telemetry::span_bounds_us(),
            ),
            settle_stop_ms: registry
                .histogram("campaign.settle.stop_ms", &telemetry::latency_bounds_ms()),
            settle_captures: registry
                .histogram("campaign.settle.captures", &telemetry::small_count_bounds()),
            trials: registry.counter("campaign.trials"),
            trials_settled: registry.counter("campaign.trials.settled"),
            trials_full_window: registry.counter("campaign.trials.full_window"),
            window_ms_simulated: registry.counter("campaign.window_ms.simulated"),
            window_ms_skipped: registry.counter("campaign.window_ms.skipped"),
            proof_exact: registry.counter("campaign.settle.proof.exact"),
            proof_translated: registry.counter("campaign.settle.proof.translated"),
            proof_retired: registry.counter("campaign.settle.proof.retired_clock"),
            proof_frozen: registry.counter("campaign.settle.proof.frozen_hung"),
            proof_analytic: registry.counter("campaign.settle.proof.analytic_band"),
            analytic_stops: registry.counter("campaign.settle.analytic.stops"),
            prune_trials: registry.counter("campaign.prune.trials"),
            prune_dead_stack: registry.counter("campaign.prune.dead_stack"),
            prune_unread_ram: registry.counter("campaign.prune.unread_ram"),
            prune_references: registry.counter("campaign.prune.references"),
            registry: Arc::clone(registry),
        }
    }

    /// The registry these handles were drawn from.
    pub fn registry(&self) -> &Arc<telemetry::Registry> {
        &self.registry
    }

    /// Folds one trial's execution shape into the metrics.
    fn observe_execution(&self, exec: &TrialExecution) {
        self.window_ms_simulated.add(exec.simulated_ms);
        self.window_ms_skipped.add(exec.skipped_ms);
        self.settle_captures.record(exec.settle_captures);
        match exec.settle_stop_ms {
            Some(ms) => {
                self.trials_settled.inc();
                self.settle_stop_ms.record(ms);
            }
            None => self.trials_full_window.inc(),
        }
        if let Some(proof) = exec.settle_proof {
            match proof {
                arrestor::SettleProof::ExactRecurrence => self.proof_exact.inc(),
                arrestor::SettleProof::TranslatedRecurrence => self.proof_translated.inc(),
                arrestor::SettleProof::RetiredClock => self.proof_retired.inc(),
                arrestor::SettleProof::FrozenHung => self.proof_frozen.inc(),
                arrestor::SettleProof::AnalyticBand => {
                    self.proof_analytic.inc();
                    self.analytic_stops.inc();
                }
            }
        }
    }

    /// Folds one pruned (never-executed) trial into the metrics.
    fn observe_prune(&self, class: crate::prune::PruneClass) {
        self.prune_trials.inc();
        match class {
            crate::prune::PruneClass::DeadStack => self.prune_dead_stack.inc(),
            crate::prune::PruneClass::UnreadRam => self.prune_unread_ram.inc(),
        }
    }
}

/// Collects [`AttributionEvent`]s from the campaign collector into an
/// [`AttributionAggregate`]. The fold is associative and commutative,
/// so the aggregate is independent of worker count and completion
/// order; the sink is shared (`Arc`) between the runner and the caller
/// that reads the result.
///
/// Attribution is observation-only: events are derived *after* a trial
/// completes, from data the collector already holds, so enabling the
/// sink cannot perturb a single bit of any report (pinned by
/// `tests/attribution.rs`).
#[derive(Debug, Default)]
pub struct AttributionSink {
    aggregate: Mutex<AttributionAggregate>,
}

impl AttributionSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one event in.
    pub fn record(&self, event: &AttributionEvent) {
        self.aggregate
            .lock()
            .expect("no panics while holding lock")
            .record(event);
    }

    /// A copy of the aggregate folded so far.
    pub fn snapshot(&self) -> AttributionAggregate {
        self.aggregate
            .lock()
            .expect("no panics while holding lock")
            .clone()
    }
}

/// Folds per-trial detection outcomes into a shared
/// [`ConvergenceAggregate`] — the live coverage-convergence monitor —
/// and optionally streams periodic [`crate::convergence::CampaignCoverage`]
/// snapshot lines to a JSONL file (`--convergence-jsonl`).
///
/// Same observer contract as the attribution sink: the fold reads only
/// data the collector already holds (the error's cell key and the
/// trial's All-version detection bit), so enabling it cannot perturb a
/// single bit of any journal, table, attribution or telemetry artefact
/// (pinned by `tests/convergence_equivalence.rs`). Snapshot-line
/// writes are best-effort — a full disk degrades the stream, never the
/// campaign.
#[derive(Debug)]
pub struct ConvergenceSink {
    aggregate: Mutex<ConvergenceAggregate>,
    label: String,
    delta: f64,
    stream: Option<Mutex<std::fs::File>>,
    stream_every: u64,
}

impl Default for ConvergenceSink {
    fn default() -> Self {
        ConvergenceSink::new()
    }
}

impl ConvergenceSink {
    /// An empty sink with the default ±δ forecast target and no
    /// snapshot stream.
    pub fn new() -> Self {
        ConvergenceSink {
            aggregate: Mutex::new(ConvergenceAggregate::new()),
            label: "campaign".to_owned(),
            delta: crate::convergence::DEFAULT_DELTA,
            stream: None,
            stream_every: 64,
        }
    }

    /// Names the coverage views this sink emits (snapshot lines and
    /// the final report both carry it).
    #[must_use]
    pub fn with_label(mut self, label: &str) -> Self {
        self.label = label.to_owned();
        self
    }

    /// Streams a [`crate::convergence::CampaignCoverage`] snapshot
    /// line to `file` every `every` folded trials (0 keeps the default
    /// of 64).
    #[must_use]
    pub fn with_stream(mut self, file: std::fs::File, every: u64) -> Self {
        self.stream = Some(Mutex::new(file));
        self.stream_every = if every == 0 { 64 } else { every };
        self
    }

    /// The forecast's half-width target.
    pub const fn delta(&self) -> f64 {
        self.delta
    }

    /// Folds one completed trial into its table cell.
    pub fn record(&self, key: CellKey, trial: &Trial) {
        let coverage = {
            let mut aggregate = self.aggregate.lock().expect("no panics while holding lock");
            aggregate.record(key, trial.detected(arrestor::EaSet::ALL));
            (aggregate.trials().is_multiple_of(self.stream_every) && self.stream.is_some())
                .then(|| aggregate.coverage(&self.label, self.delta))
        };
        if let Some(coverage) = coverage {
            self.write_snapshot(&coverage);
        }
    }

    /// A copy of the aggregate folded so far.
    pub fn snapshot(&self) -> ConvergenceAggregate {
        *self.aggregate.lock().expect("no panics while holding lock")
    }

    /// Writes one final snapshot line (end-of-campaign flush).
    pub fn flush_stream(&self) {
        if self.stream.is_some() {
            let coverage = self.snapshot().coverage(&self.label, self.delta);
            self.write_snapshot(&coverage);
        }
    }

    fn write_snapshot(&self, coverage: &crate::convergence::CampaignCoverage) {
        use std::io::Write;
        if let Some(stream) = &self.stream {
            let line = serde_json::to_string(coverage).expect("coverage serialises");
            let mut file = stream.lock().expect("no panics while holding lock");
            let _ = writeln!(file, "{line}");
        }
    }
}

/// Live-progress configuration for [`CampaignRunner::with_progress`].
#[derive(Debug, Clone, Default)]
pub struct ProgressOptions {
    /// Render the throttled single-line TTY status on stderr (only
    /// when stderr actually is a terminal).
    pub live: bool,
    /// Append machine-readable [`telemetry::ProgressEvent`]s to this
    /// JSONL file (`--telemetry-jsonl`).
    pub stream_path: Option<PathBuf>,
    /// Trials between stream events (0 means the default of 64).
    pub stream_every: u64,
}

/// Default lane cap per lockstep batch. Eight lanes keep the working
/// set of live [`arrestor::System`] clones inside the fast caches on
/// one core while still amortising the shared-environment tick;
/// whole-case batches (112 lanes under E1) measurably lose the
/// locality they gain in sharing (see PERFORMANCE.md for the sweep).
pub const DEFAULT_BATCH_SIZE: usize = 8;

/// Executes error-injection campaigns under a protocol.
#[derive(Debug, Clone)]
pub struct CampaignRunner {
    protocol: Protocol,
    checkpointing: bool,
    batching: bool,
    batch_size: usize,
    analytic_settle: bool,
    pruning: bool,
    telemetry: Option<Arc<telemetry::Registry>>,
    progress: Option<ProgressOptions>,
    shard: Option<ShardSpec>,
    attribution: Option<Arc<AttributionSink>>,
    profile: Option<Arc<crate::profile::ProfileRecorder>>,
    convergence: Option<Arc<ConvergenceSink>>,
}

impl CampaignRunner {
    /// A runner for the given protocol. Checkpointed **batched**
    /// execution is on by default: all trials of a test case fork from
    /// the cached prefix and step in lockstep
    /// ([`crate::experiment::run_case_batch`]). Disable batching with
    /// [`CampaignRunner::with_batching`]`(false)` to run the scalar
    /// one-trial-at-a-time checkpointed path, or disable checkpointing
    /// with [`CampaignRunner::with_checkpointing`]`(false)` to force
    /// full from-t=0 replay of every trial. Results are bit-identical
    /// across all three paths. Telemetry, progress and sharding are
    /// all off by default.
    pub fn new(protocol: Protocol) -> Self {
        CampaignRunner {
            protocol,
            checkpointing: true,
            batching: true,
            batch_size: DEFAULT_BATCH_SIZE,
            analytic_settle: true,
            pruning: true,
            telemetry: None,
            progress: None,
            shard: None,
            attribution: None,
            profile: None,
            convergence: None,
        }
    }

    /// Enables or disables the settle detector's analytic absorbing-band
    /// relaxation (on by default; the `--no-analytic-settle` escape
    /// hatch). Results are bit-identical either way — the band changes
    /// when a trial is proven final, never what it produced (pinned by
    /// `tests/settle_prune_equivalence.rs`); off trades the ≈5 s settle
    /// tail back for plain exact-recurrence proofs.
    #[must_use]
    pub fn with_analytic_settle(mut self, enabled: bool) -> Self {
        self.analytic_settle = enabled;
        self
    }

    /// Whether settle proofs may use the analytic absorbing band.
    pub const fn analytic_settle(&self) -> bool {
        self.analytic_settle
    }

    /// Enables or disables dominance pruning of statically-inert errors
    /// (on by default; the `--no-prune` escape hatch). A pruned trial
    /// is never simulated: it shares its test case's reference trial
    /// (see [`crate::prune`]), which is bit-identical to what executing
    /// it would produce. Requires checkpointing — under
    /// [`CampaignRunner::with_checkpointing`]`(false)` every trial runs
    /// in full.
    #[must_use]
    pub fn with_pruning(mut self, enabled: bool) -> Self {
        self.pruning = enabled;
        self
    }

    /// Whether statically-inert errors skip execution.
    pub const fn pruning(&self) -> bool {
        self.pruning
    }

    /// Enables assertion-level attribution: every completed trial also
    /// yields an [`AttributionEvent`] folded into a shared
    /// [`AttributionSink`] (and appended to the journal, when one is
    /// attached). Disabled by default and zero-cost when off.
    #[must_use]
    pub fn with_attribution(mut self, enabled: bool) -> Self {
        self.attribution = enabled.then(|| Arc::new(AttributionSink::new()));
        self
    }

    /// The attribution sink, when enabled.
    pub fn attribution(&self) -> Option<&Arc<AttributionSink>> {
        self.attribution.as_ref()
    }

    /// Attaches a per-assertion cost recorder: every executed trial's
    /// per-mechanism check counts are folded into it (and pruned trials
    /// counted). Same observer contract as telemetry — results are
    /// bit-identical with or without profiling (pinned by
    /// `tests/profile_equivalence.rs`). Replay mode
    /// ([`CampaignRunner::with_checkpointing`]`(false)`) does not carry
    /// execution-shape facts, so a replay campaign leaves the recorder
    /// empty.
    #[must_use]
    pub fn with_profile(mut self, recorder: Arc<crate::profile::ProfileRecorder>) -> Self {
        self.profile = Some(recorder);
        self
    }

    /// The attached cost recorder, if any.
    pub fn profile(&self) -> Option<&Arc<crate::profile::ProfileRecorder>> {
        self.profile.as_ref()
    }

    /// Attaches a coverage-convergence monitor: every completed trial
    /// (live, replayed on `--resume`, or pruned-and-shared) folds its
    /// All-version detection bit into the sink's per-cell Wilson
    /// estimators. Same observer contract as telemetry and the cost
    /// profiler — results are bit-identical with or without the
    /// monitor (pinned by `tests/convergence_equivalence.rs`).
    #[must_use]
    pub fn with_convergence(mut self, sink: Arc<ConvergenceSink>) -> Self {
        self.convergence = Some(sink);
        self
    }

    /// The attached convergence monitor, if any.
    pub fn convergence(&self) -> Option<&Arc<ConvergenceSink>> {
        self.convergence.as_ref()
    }

    /// Enables or disables checkpointed trial execution (prefix
    /// forking plus steady-state fast-forward). Results are
    /// bit-identical either way; replay mode exists as a cross-check
    /// and baseline.
    #[must_use]
    pub fn with_checkpointing(mut self, enabled: bool) -> Self {
        self.checkpointing = enabled;
        self
    }

    /// Whether trials fork from cached fault-free prefixes.
    pub const fn checkpointing(&self) -> bool {
        self.checkpointing
    }

    /// Enables or disables lockstep batching of checkpointed trials
    /// (on by default). With batching off, checkpointed trials run the
    /// scalar one-at-a-time path — the `--scalar` escape hatch.
    /// Results are bit-identical either way (pinned by
    /// `tests/batch_equivalence.rs`). A no-op under
    /// [`CampaignRunner::with_checkpointing`]`(false)`, which always
    /// runs scalar replay.
    #[must_use]
    pub fn with_batching(mut self, enabled: bool) -> Self {
        self.batching = enabled;
        self
    }

    /// Whether checkpointed trials run in lockstep batches.
    pub const fn batching(&self) -> bool {
        self.batching
    }

    /// Caps the number of lanes per lockstep batch (`--batch-size`).
    /// `0` runs every trial of a test case in one batch; smaller caps
    /// split a case into consecutive chunks, trading shared-environment
    /// savings for smaller working sets. The default is
    /// [`DEFAULT_BATCH_SIZE`]: on one core, whole-case batches walk
    /// more live `System` state per tick than fits the fast caches and
    /// lose to the scalar path (see PERFORMANCE.md). Split points
    /// cannot change any result — lanes never interact (pinned by
    /// `crates/arrestor/tests/prop_batch.rs`).
    #[must_use]
    pub fn with_batch_size(mut self, lanes: usize) -> Self {
        self.batch_size = lanes;
        self
    }

    /// The lane cap per lockstep batch (`0` = whole case).
    pub const fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Attaches a metrics registry: campaign/cache/settle metrics are
    /// recorded into it during execution. Trial results are
    /// bit-identical with or without telemetry — observation never
    /// influences the run (the same contract as trace capture).
    #[must_use]
    pub fn with_telemetry(mut self, registry: Arc<telemetry::Registry>) -> Self {
        self.telemetry = Some(registry);
        self
    }

    /// The attached metrics registry, if any.
    pub fn telemetry(&self) -> Option<&Arc<telemetry::Registry>> {
        self.telemetry.as_ref()
    }

    /// Enables live progress (TTY status line and/or JSONL stream).
    #[must_use]
    pub fn with_progress(mut self, options: ProgressOptions) -> Self {
        self.progress = Some(options);
        self
    }

    /// Restricts execution to one deterministic slice of the trial
    /// grid: shard `index` of `count` (1-based, as in `--shard k/n`)
    /// keeps exactly the ⟨error, case⟩ pairs whose canonical pair
    /// index `ei · cases + ci` is `≡ index − 1 (mod count)`. The
    /// slices partition the grid, so `count` shard reports (or
    /// journals, via [`crate::journal::merge`]) combine into exactly
    /// the unsharded result.
    ///
    /// # Panics
    ///
    /// When `index` is not in `1..=count`.
    #[must_use]
    pub fn with_shard(mut self, index: usize, count: usize) -> Self {
        assert!(
            (1..=count).contains(&index),
            "shard index {index} out of range 1..={count}"
        );
        self.shard = Some(ShardSpec { index, count });
        self
    }

    /// The grid slice this runner executes, if sharded.
    pub const fn shard(&self) -> Option<ShardSpec> {
        self.shard
    }

    /// Whether a canonical pair index belongs to this runner's shard.
    fn in_shard(&self, pair_index: usize) -> bool {
        match self.shard {
            Some(s) => pair_index % s.count == s.index - 1,
            None => true,
        }
    }

    /// The protocol in use.
    pub fn protocol(&self) -> &Protocol {
        &self.protocol
    }

    /// Runs the E1 campaign over the given errors (the full paper set is
    /// [`crate::error_set::e1`]); one run per ⟨error, case⟩ pair, all
    /// eight versions derived from the per-mechanism log.
    pub fn run_e1(&self, errors: &[E1Error]) -> E1Report {
        let mut report = E1Report::new();
        self.execute(
            errors,
            &self.all_pairs(errors.len()),
            &mut report,
            E1Report::record,
            CampaignKind::E1,
            None,
            None,
        )
        .expect("journal-less campaigns do no I/O");
        report
    }

    /// Runs exactly the given ⟨error index, case index⟩ E1 pairs and
    /// returns every completed trial sorted by ⟨case, error⟩ — the
    /// scalar completion order, so the caller's fan-in is deterministic
    /// regardless of worker count. This is the fleet worker's entry
    /// point: a slice lease names one test case and a set of errors,
    /// and the server journals the returned trials itself.
    pub fn run_e1_pairs(
        &self,
        errors: &[E1Error],
        pairs: &[(usize, usize)],
    ) -> Vec<(usize, usize, Trial)> {
        let mut report = E1Report::new();
        let mut trials = Vec::with_capacity(pairs.len());
        self.execute(
            errors,
            pairs,
            &mut report,
            E1Report::record,
            CampaignKind::E1,
            None,
            Some(&mut trials),
        )
        .expect("journal-less campaigns do no I/O");
        trials.sort_unstable_by_key(|t| (t.1, t.0));
        trials
    }

    /// Runs exactly the given ⟨error index, case index⟩ E2 pairs; see
    /// [`CampaignRunner::run_e1_pairs`].
    pub fn run_e2_pairs(
        &self,
        errors: &[E2Error],
        pairs: &[(usize, usize)],
    ) -> Vec<(usize, usize, Trial)> {
        let mut report = E2Report::new();
        let mut trials = Vec::with_capacity(pairs.len());
        self.execute(
            errors,
            pairs,
            &mut report,
            E2Report::record,
            CampaignKind::E2,
            None,
            Some(&mut trials),
        )
        .expect("journal-less campaigns do no I/O");
        trials.sort_unstable_by_key(|t| (t.1, t.0));
        trials
    }

    /// Runs the E2 campaign (the paper set is [`crate::error_set::e2`])
    /// on the all-mechanisms version.
    pub fn run_e2(&self, errors: &[E2Error]) -> E2Report {
        let mut report = E2Report::new();
        self.execute(
            errors,
            &self.all_pairs(errors.len()),
            &mut report,
            E2Report::record,
            CampaignKind::E2,
            None,
            None,
        )
        .expect("journal-less campaigns do no I/O");
        report
    }

    /// Runs the E1 campaign streaming every completed trial into
    /// `journal` (crash-safe checkpointing).
    ///
    /// # Errors
    ///
    /// Filesystem failures while appending to the journal.
    pub fn run_e1_journaled(
        &self,
        errors: &[E1Error],
        journal: &mut JournalWriter,
    ) -> io::Result<E1Report> {
        let mut report = E1Report::new();
        self.execute(
            errors,
            &self.all_pairs(errors.len()),
            &mut report,
            E1Report::record,
            CampaignKind::E1,
            Some(journal),
            None,
        )?;
        journal.sync()?;
        Ok(report)
    }

    /// Runs the E2 campaign streaming every completed trial into
    /// `journal`.
    ///
    /// # Errors
    ///
    /// Filesystem failures while appending to the journal.
    pub fn run_e2_journaled(
        &self,
        errors: &[E2Error],
        journal: &mut JournalWriter,
    ) -> io::Result<E2Report> {
        let mut report = E2Report::new();
        self.execute(
            errors,
            &self.all_pairs(errors.len()),
            &mut report,
            E2Report::record,
            CampaignKind::E2,
            Some(journal),
            None,
        )?;
        journal.sync()?;
        Ok(report)
    }

    /// Resumes (or starts) a journaled E1 campaign: trials already in
    /// the journal at `path` are replayed into the report, only missing
    /// ⟨error, case⟩ pairs are executed, and their outcomes are
    /// appended to the same journal. With no journal file present this
    /// is a fresh journaled campaign.
    ///
    /// # Errors
    ///
    /// Journal I/O or parse failures, or a journal recorded under an
    /// incompatible protocol / unknown error numbers.
    pub fn resume_e1(&self, errors: &[E1Error], path: &Path) -> Result<E1Report, JournalError> {
        let mut report = E1Report::new();
        let by_number: HashMap<usize, usize> = errors
            .iter()
            .enumerate()
            .map(|(i, e)| (e.number, i))
            .collect();
        let attribution = self.attribution_fold();
        let (pending, mut journal) = self.replay_into(
            path,
            CampaignKind::E1,
            &by_number,
            |idx, case_index, trial| {
                report.record(&errors[idx], trial);
                if let Some((sink, map)) = &attribution {
                    sink.record(&errors[idx].attribution_event(case_index, trial, map));
                }
                if let Some(sink) = &self.convergence {
                    sink.record(errors[idx].convergence_key(), trial);
                }
            },
        )?;
        self.execute(
            errors,
            &pending,
            &mut report,
            E1Report::record,
            CampaignKind::E1,
            Some(&mut journal),
            None,
        )?;
        journal.sync()?;
        Ok(report)
    }

    /// Resumes (or starts) a journaled E2 campaign; see
    /// [`CampaignRunner::resume_e1`].
    ///
    /// # Errors
    ///
    /// Journal I/O or parse failures, or an incompatible journal.
    pub fn resume_e2(&self, errors: &[E2Error], path: &Path) -> Result<E2Report, JournalError> {
        let mut report = E2Report::new();
        let by_number: HashMap<usize, usize> = errors
            .iter()
            .enumerate()
            .map(|(i, e)| (e.number, i))
            .collect();
        let attribution = self.attribution_fold();
        let (pending, mut journal) = self.replay_into(
            path,
            CampaignKind::E2,
            &by_number,
            |idx, case_index, trial| {
                report.record(&errors[idx], trial);
                if let Some((sink, map)) = &attribution {
                    sink.record(&errors[idx].attribution_event(case_index, trial, map));
                }
                if let Some(sink) = &self.convergence {
                    sink.record(errors[idx].convergence_key(), trial);
                }
            },
        )?;
        self.execute(
            errors,
            &pending,
            &mut report,
            E2Report::record,
            CampaignKind::E2,
            Some(&mut journal),
            None,
        )?;
        journal.sync()?;
        Ok(report)
    }

    /// Loads the journal at `path` (if any), feeds the matching
    /// campaign's recorded trials to `replay`, and returns the still-
    /// missing ⟨error index, case index⟩ pairs plus a writer appending
    /// to the same journal.
    fn replay_into(
        &self,
        path: &Path,
        kind: CampaignKind,
        by_number: &HashMap<usize, usize>,
        mut replay: impl FnMut(usize, usize, &Trial),
    ) -> Result<(Vec<(usize, usize)>, JournalWriter), JournalError> {
        let cases = self.protocol.cases_per_error();
        let mut done: HashSet<(usize, usize)> = HashSet::new();
        if path.exists() {
            let journal = Journal::load(path)?;
            if !journal.header.protocol.compatible_with(&self.protocol) {
                return Err(JournalError::Mismatch(
                    "journal was recorded under a different protocol \
                     (injection period, window, or test-case grid)"
                        .to_owned(),
                ));
            }
            if journal.header.shard != self.shard {
                let describe = |s: Option<ShardSpec>| {
                    s.map_or_else(|| "unsharded".to_owned(), |s| format!("shard {s}"))
                };
                return Err(JournalError::Mismatch(format!(
                    "journal is {} but this run is {} — resume with the \
                     same --shard, or combine shards with merge_journals",
                    describe(journal.header.shard),
                    describe(self.shard),
                )));
            }
            for record in &journal.records {
                if record.campaign != kind {
                    continue;
                }
                let Some(&idx) = by_number.get(&record.error_number) else {
                    return Err(JournalError::Mismatch(format!(
                        "journal records error number {} absent from the \
                         current error set",
                        record.error_number
                    )));
                };
                if record.case_index >= cases {
                    return Err(JournalError::Mismatch(format!(
                        "journal case index {} out of range ({} cases/error)",
                        record.case_index, cases
                    )));
                }
                if done.insert((idx, record.case_index)) {
                    replay(idx, record.case_index, &record.trial);
                }
            }
        }
        let mut writer = JournalWriter::append_to_sharded(path, &self.protocol, self.shard)?;
        if let Some(registry) = &self.telemetry {
            writer = writer.with_telemetry(crate::journal::JournalTelemetry::register(registry));
        }
        let pending: Vec<(usize, usize)> = (0..by_number.len())
            .flat_map(|ei| (0..cases).map(move |ci| (ei, ci)))
            .filter(|&(ei, ci)| self.in_shard(ei * cases + ci))
            .filter(|key| !done.contains(key))
            .collect();
        Ok((pending, writer))
    }

    /// The sink plus the address map event derivation needs — built
    /// once per campaign, only when attribution is enabled.
    fn attribution_fold(&self) -> Option<(Arc<AttributionSink>, MonitoredMap)> {
        self.attribution
            .as_ref()
            .map(|sink| (Arc::clone(sink), MonitoredMap::new()))
    }

    /// Every ⟨error index, case index⟩ pair of a fresh campaign (the
    /// runner's shard of them, when sharded).
    fn all_pairs(&self, error_count: usize) -> Vec<(usize, usize)> {
        let cases = self.protocol.cases_per_error();
        (0..error_count)
            .flat_map(|ei| (0..cases).map(move |ci| (ei, ci)))
            .filter(|&(ei, ci)| self.in_shard(ei * cases + ci))
            .collect()
    }

    /// Generic worker fan-out: workers pull ⟨error, case⟩ pairs from a
    /// shared queue and stream completed trials back; the collector (on
    /// the calling thread) folds them into the report in arrival order
    /// and appends each to the journal. Reports are commutative, so
    /// arrival order does not affect the result.
    #[allow(clippy::too_many_arguments)]
    fn execute<E, R>(
        &self,
        errors: &[E],
        pending: &[(usize, usize)],
        report: &mut R,
        record: fn(&mut R, &E, &Trial),
        kind: CampaignKind,
        mut journal: Option<&mut JournalWriter>,
        mut collect: Option<&mut Vec<(usize, usize, Trial)>>,
    ) -> io::Result<()>
    where
        E: Sync + InjectableError,
    {
        let cases: Vec<TestCase> = self.protocol.grid.cases();
        let workers = self.protocol.effective_workers().max(1);
        let mut pending: Vec<(usize, usize)> = pending.to_vec();
        if self.checkpointing {
            // Group the grid by injection point (case-major order): all
            // trials of a test case run back to back, so its fault-free
            // prefix is built once and stays hot in the cache.
            pending.sort_unstable_by_key(|&(ei, ci)| (ci, ei));
        }
        let cache = self.checkpointing.then(|| Arc::new(CheckpointCache::new()));
        // Pruning rides on the checkpoint machinery (the reference
        // trial forks from the cached prefix), so replay mode executes
        // everything.
        let prune =
            (self.pruning && self.checkpointing).then(|| Arc::new(crate::prune::PruneCache::new()));
        let attribution = self.attribution_fold();

        let tel = self.telemetry.as_ref().map(CampaignTelemetry::register);
        if let Some(t) = &tel {
            t.registry.gauge("campaign.workers").set(workers as u64);
        }
        let latency_hist = tel.as_ref().map(|t| {
            t.registry.histogram(
                &format!("campaign.{}.detection_latency_ms", kind.label()),
                &telemetry::latency_bounds_ms(),
            )
        });
        let mut progress = match &self.progress {
            Some(options) => {
                let stream = match &options.stream_path {
                    Some(path) => Some(telemetry::Progress::open_stream(path)?),
                    None => None,
                };
                let every = if options.stream_every == 0 {
                    64
                } else {
                    options.stream_every
                };
                let mut p =
                    telemetry::Progress::new(kind.label(), pending.len() as u64, stream, every)
                        .with_tty(options.live);
                if let Some(t) = &tel {
                    p = p.with_counters(
                        Arc::clone(&t.cache_hits),
                        Arc::clone(&t.cache_misses),
                        Arc::clone(&t.trials_settled),
                    );
                }
                Some(p)
            }
            None => None,
        };

        let batched = self.checkpointing && self.batching;
        let (work_tx, work_rx) = channel::unbounded::<WorkItem>();
        if batched {
            // One lockstep chunk per (case, batch-size slice): trials
            // of a case step together, in error order within the
            // chunk, so a 1-worker batched run completes trials in
            // exactly the scalar (ci, ei) order.
            for (ci, eis) in group_by_case(&pending) {
                let cap = if self.batch_size == 0 {
                    eis.len()
                } else {
                    self.batch_size
                };
                for chunk in eis.chunks(cap.max(1)) {
                    work_tx
                        .send(WorkItem::Case(ci, chunk.to_vec()))
                        .expect("queue is open");
                }
            }
        } else {
            for &(ei, ci) in &pending {
                work_tx.send(WorkItem::Pair(ei, ci)).expect("queue is open");
            }
        }
        drop(work_tx);
        let (result_tx, result_rx) = channel::unbounded::<(usize, usize, Trial)>();

        let mut journal_error: Option<io::Error> = None;
        std::thread::scope(|scope| {
            for w in 0..workers {
                let work_rx = work_rx.clone();
                let result_tx = result_tx.clone();
                let cases = &cases;
                let protocol = &self.protocol;
                let cache = cache.clone();
                let prune = prune.clone();
                let analytic = self.analytic_settle;
                let tel = tel.clone();
                let profile = self.profile.clone();
                scope.spawn(move || {
                    let worker_trials = tel
                        .as_ref()
                        .map(|t| t.registry.counter(&format!("campaign.worker.{w}.trials")));
                    loop {
                        let waiting = tel.as_ref().map(|_| Instant::now());
                        let Ok(item) = work_rx.recv() else { break };
                        if let (Some(t), Some(started)) = (&tel, waiting) {
                            let micros =
                                u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
                            t.queue_wait_us.record(micros);
                        }
                        match item {
                            WorkItem::Case(ci, eis) => {
                                let cache = cache.as_ref().expect("batched work is checkpointed");
                                // The scalar path resolves the prefix
                                // once per trial; doing the same per
                                // lane keeps the cache hit/miss
                                // counters bit-identical between the
                                // two paths.
                                let mut prefix = None;
                                for _ in &eis {
                                    prefix = Some(cache.prefix_observed(
                                        protocol,
                                        ci,
                                        cases[ci],
                                        tel.as_ref(),
                                    ));
                                }
                                let prefix = prefix.expect("chunks are never empty");
                                // Partition the chunk: statically-inert
                                // errors skip execution and share the
                                // case's reference trial; live lanes
                                // run the lockstep batch. Results are
                                // emitted in chunk order either way, so
                                // journal bytes never depend on the
                                // prune setting.
                                let classes: Vec<Option<crate::prune::PruneClass>> = eis
                                    .iter()
                                    .map(|&ei| {
                                        prune.as_ref().and_then(|p| p.classify(errors[ei].flip()))
                                    })
                                    .collect();
                                let live: Vec<usize> =
                                    (0..eis.len()).filter(|&i| classes[i].is_none()).collect();
                                let flips: Vec<memsim::BitFlip> =
                                    live.iter().map(|&i| errors[eis[i]].flip()).collect();
                                let mut trials: Vec<Option<Trial>> = vec![None; eis.len()];
                                for lane in run_case_batch_with(
                                    protocol, &flips, cases[ci], &prefix, analytic,
                                ) {
                                    if let Some(t) = &tel {
                                        t.observe_execution(&lane.execution);
                                    }
                                    if let Some(pr) = &profile {
                                        pr.record_execution(&lane.execution);
                                    }
                                    trials[live[lane.slot]] = Some(lane.trial);
                                }
                                if live.len() < eis.len() {
                                    let p = prune.as_ref().expect("pruned lanes imply a cache");
                                    let (reference, built) =
                                        p.reference(protocol, ci, cases[ci], &prefix, analytic);
                                    if built {
                                        if let Some(t) = &tel {
                                            t.prune_references.inc();
                                        }
                                    }
                                    for (i, class) in classes.iter().enumerate() {
                                        if let Some(class) = class {
                                            if let Some(t) = &tel {
                                                t.observe_prune(*class);
                                            }
                                            if let Some(pr) = &profile {
                                                pr.record_prune();
                                            }
                                            trials[i] = Some((*reference).clone());
                                        }
                                    }
                                }
                                for (i, trial) in trials.into_iter().enumerate() {
                                    let trial = trial.expect("every lane resolved");
                                    if let Some(c) = &worker_trials {
                                        c.inc();
                                    }
                                    result_tx
                                        .send((eis[i], ci, trial))
                                        .expect("collector outlives workers");
                                }
                            }
                            WorkItem::Pair(ei, ci) => {
                                let trial = match &cache {
                                    Some(cache) => {
                                        let prefix = cache.prefix_observed(
                                            protocol,
                                            ci,
                                            cases[ci],
                                            tel.as_ref(),
                                        );
                                        let class = prune
                                            .as_ref()
                                            .and_then(|p| p.classify(errors[ei].flip()));
                                        if let Some(class) = class {
                                            let p = prune.as_ref().expect("just classified");
                                            let (reference, built) = p.reference(
                                                protocol, ci, cases[ci], &prefix, analytic,
                                            );
                                            if let Some(t) = &tel {
                                                if built {
                                                    t.prune_references.inc();
                                                }
                                                t.observe_prune(class);
                                            }
                                            if let Some(pr) = &profile {
                                                pr.record_prune();
                                            }
                                            (*reference).clone()
                                        } else {
                                            let (trial, execution) =
                                                run_trial_checkpointed_observed_with(
                                                    protocol,
                                                    errors[ei].flip(),
                                                    cases[ci],
                                                    &prefix,
                                                    analytic,
                                                );
                                            if let Some(t) = &tel {
                                                t.observe_execution(&execution);
                                            }
                                            if let Some(pr) = &profile {
                                                pr.record_execution(&execution);
                                            }
                                            trial
                                        }
                                    }
                                    None => {
                                        let trial =
                                            run_trial(protocol, errors[ei].flip(), cases[ci]);
                                        if let Some(t) = &tel {
                                            t.trials_full_window.inc();
                                            t.window_ms_simulated.add(protocol.observation_ms);
                                        }
                                        trial
                                    }
                                };
                                if let Some(c) = &worker_trials {
                                    c.inc();
                                }
                                result_tx
                                    .send((ei, ci, trial))
                                    .expect("collector outlives workers");
                            }
                        }
                    }
                });
            }
            drop(result_tx);

            while let Ok((ei, ci, trial)) = result_rx.recv() {
                let error = &errors[ei];
                record(report, error, &trial);
                if let Some(out) = collect.as_deref_mut() {
                    out.push((ei, ci, trial.clone()));
                }
                let event = attribution.as_ref().map(|(sink, map)| {
                    let event = error.attribution_event(ci, &trial, map);
                    sink.record(&event);
                    event
                });
                if let Some(sink) = &self.convergence {
                    sink.record(error.convergence_key(), &trial);
                }
                if let Some(t) = &tel {
                    t.trials.inc();
                }
                if let Some(hist) = &latency_hist {
                    if let Some(latency) = trial.latency_ms(arrestor::EaSet::ALL) {
                        hist.record(latency);
                    }
                }
                if let Some(p) = &mut progress {
                    p.on_trial();
                }
                if let Some(writer) = journal.as_deref_mut() {
                    let appended = writer
                        .append(kind, error.number(), ci, &trial)
                        .and_then(|()| match &event {
                            Some(event) => writer.append_attribution(event),
                            None => Ok(()),
                        });
                    if let Err(e) = appended {
                        // Remember the first failure, stop journaling,
                        // but keep collecting so the report stays whole
                        // and the workers can drain.
                        journal_error.get_or_insert(e);
                        journal = None;
                    }
                }
            }
        });
        if let Some(p) = &mut progress {
            p.finish();
        }

        match journal_error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

/// One unit of worker work: a single ⟨error, case⟩ trial (the scalar
/// and replay paths) or one lockstep chunk of a test case's trials
/// (error indices, in order).
#[derive(Debug)]
enum WorkItem {
    Pair(usize, usize),
    Case(usize, Vec<usize>),
}

/// Groups a (case, error)-sorted pending list into per-case runs,
/// preserving error order within each case.
fn group_by_case(pending: &[(usize, usize)]) -> Vec<(usize, Vec<usize>)> {
    let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
    for &(ei, ci) in pending {
        match groups.last_mut() {
            Some((c, eis)) if *c == ci => eis.push(ei),
            _ => groups.push((ci, vec![ei])),
        }
    }
    groups
}

/// Internal: both error kinds expose their flip coordinates and their
/// stable paper error number (the journal key).
pub trait InjectableError {
    /// The SWIFI coordinates of this error.
    fn flip(&self) -> memsim::BitFlip;
    /// The paper's 1-based error number.
    fn number(&self) -> usize;
    /// The attribution event for one completed trial of this error
    /// (`map` locates monitored signals; E1 errors carry their target
    /// directly and ignore it).
    fn attribution_event(
        &self,
        case_index: usize,
        trial: &Trial,
        map: &MonitoredMap,
    ) -> AttributionEvent;
    /// Which convergence-estimator cell this error's trials land in
    /// (an E1 error names its signal row, an E2 error its region).
    fn convergence_key(&self) -> CellKey;
}

impl InjectableError for E1Error {
    fn flip(&self) -> memsim::BitFlip {
        self.flip
    }
    fn number(&self) -> usize {
        self.number
    }
    fn attribution_event(
        &self,
        case_index: usize,
        trial: &Trial,
        _map: &MonitoredMap,
    ) -> AttributionEvent {
        AttributionEvent::for_e1(self, case_index, trial)
    }
    fn convergence_key(&self) -> CellKey {
        CellKey::Signal(self.ea.index())
    }
}

impl InjectableError for E2Error {
    fn flip(&self) -> memsim::BitFlip {
        self.flip
    }
    fn number(&self) -> usize {
        self.number
    }
    fn attribution_event(
        &self,
        case_index: usize,
        trial: &Trial,
        map: &MonitoredMap,
    ) -> AttributionEvent {
        AttributionEvent::for_e2(self, case_index, trial, map)
    }
    fn convergence_key(&self) -> CellKey {
        CellKey::Region(self.flip.region)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error_set;
    use arrestor::EaId;
    use std::path::PathBuf;

    fn temp_journal(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fic-campaign-test-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("journal.jsonl")
    }

    #[test]
    fn small_e1_campaign_counts_trials() {
        let protocol = Protocol::scaled(2, 1_500);
        let runner = CampaignRunner::new(protocol);
        let errors = error_set::e1();
        // mscnt errors: S81..S96 — use four of them.
        let subset = &errors[80..84];
        let report = runner.run_e1(subset);
        assert_eq!(report.trials(), 4 * 4);
        // Every mscnt error is caught by EA6 within a short window.
        let row = &report.rows[EaId::Ea6.index()];
        assert_eq!(row.cells[EaId::Ea6.index()].all.detected(), 16);
    }

    #[test]
    fn checkpointed_run_equals_replay_run() {
        let protocol = Protocol::scaled(2, 1_500);
        let runner = CampaignRunner::new(protocol);
        assert!(runner.checkpointing());
        let errors = error_set::e1();
        let subset = &errors[78..84]; // spans the SetValue/mscnt boundary
        let fast = runner.run_e1(subset);
        let slow = runner.clone().with_checkpointing(false).run_e1(subset);
        assert_eq!(fast, slow);
    }

    #[test]
    fn batched_run_equals_scalar_run() {
        let protocol = Protocol::scaled(2, 1_500);
        let runner = CampaignRunner::new(protocol);
        assert!(runner.batching());
        let errors = error_set::e1();
        let subset = &errors[78..84]; // spans the SetValue/mscnt boundary
        let batched = runner.run_e1(subset);
        let scalar = runner.clone().with_batching(false).run_e1(subset);
        assert_eq!(batched, scalar);
    }

    #[test]
    fn batch_size_split_points_do_not_change_results() {
        let protocol = Protocol::scaled(2, 1_500);
        let runner = CampaignRunner::new(protocol);
        let errors = error_set::e2();
        let subset = &errors[..5];
        let whole_case = runner.clone().with_batch_size(0).run_e2(subset);
        for lanes in [1, 2, 3, DEFAULT_BATCH_SIZE] {
            let chunked = runner.clone().with_batch_size(lanes).run_e2(subset);
            assert_eq!(chunked, whole_case, "batch size {lanes}");
        }
    }

    #[test]
    fn e1_report_is_deterministic_across_worker_counts() {
        let errors = error_set::e1();
        let subset = &errors[0..2];
        let mut p1 = Protocol::scaled(1, 1_000);
        p1.workers = 1;
        let mut p4 = Protocol::scaled(1, 1_000);
        p4.workers = 4;
        let r1 = CampaignRunner::new(p1).run_e1(subset);
        let r4 = CampaignRunner::new(p4).run_e1(subset);
        assert_eq!(r1, r4);
    }

    #[test]
    fn small_e2_campaign_routes_regions() {
        let protocol = Protocol::scaled(1, 1_000);
        let runner = CampaignRunner::new(protocol);
        let errors = error_set::e2();
        let subset: Vec<_> = errors
            .iter()
            .filter(|e| e.number <= 2 || e.number > 198)
            .copied()
            .collect();
        let report = runner.run_e2(&subset);
        assert_eq!(report.trials(), 4);
        assert_eq!(report.ram.all.total(), 2);
        assert_eq!(report.stack.all.total(), 2);
    }

    #[test]
    fn journaled_run_equals_plain_run() {
        let path = temp_journal("journaled-eq");
        let protocol = Protocol::scaled(2, 1_200);
        let runner = CampaignRunner::new(protocol.clone());
        let errors = error_set::e1();
        let subset = &errors[80..83];

        let plain = runner.run_e1(subset);
        let mut writer = JournalWriter::create(&path, &protocol).unwrap();
        let journaled = runner.run_e1_journaled(subset, &mut writer).unwrap();
        drop(writer);
        assert_eq!(plain, journaled);

        // The journal holds exactly one record per ⟨error, case⟩ pair.
        let journal = Journal::load(&path).unwrap();
        assert_eq!(journal.records.len(), 3 * 4);
        let mut keys: Vec<_> = journal
            .records
            .iter()
            .map(|r| (r.error_number, r.case_index))
            .collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 3 * 4);
    }

    #[test]
    fn resume_on_fresh_path_runs_full_campaign() {
        let path = temp_journal("resume-fresh");
        let protocol = Protocol::scaled(1, 1_000);
        let runner = CampaignRunner::new(protocol);
        let errors = error_set::e1();
        let subset = &errors[0..2];
        let resumed = runner.resume_e1(subset, &path).unwrap();
        assert_eq!(resumed, runner.run_e1(subset));
    }

    #[test]
    fn resume_skips_recorded_trials_and_completes_the_rest() {
        let path = temp_journal("resume-half");
        let protocol = Protocol::scaled(2, 1_200);
        let runner = CampaignRunner::new(protocol.clone());
        let errors = error_set::e2();
        let subset = &errors[..4];

        // Full journaled run, then cut the journal in half (as a crash
        // mid-campaign would).
        let mut writer = JournalWriter::create(&path, &protocol).unwrap();
        let full = runner.run_e2_journaled(subset, &mut writer).unwrap();
        drop(writer);
        let content = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = content.lines().collect();
        let keep = 1 + (lines.len() - 1) / 2; // header + half the records
        std::fs::write(&path, format!("{}\n", lines[..keep].join("\n"))).unwrap();

        let resumed = runner.resume_e2(subset, &path).unwrap();
        assert_eq!(resumed, full);
        // The journal is complete again afterwards.
        assert_eq!(Journal::load(&path).unwrap().records.len(), 4 * 4);
    }

    #[test]
    fn resume_rejects_incompatible_protocol() {
        let path = temp_journal("resume-mismatch");
        let errors = error_set::e1();
        let subset = &errors[0..1];
        let runner = CampaignRunner::new(Protocol::scaled(1, 1_000));
        runner.resume_e1(subset, &path).unwrap();
        let other = CampaignRunner::new(Protocol::scaled(1, 2_000));
        assert!(matches!(
            other.resume_e1(subset, &path),
            Err(JournalError::Mismatch(_))
        ));
    }
}
