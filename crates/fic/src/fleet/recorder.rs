//! The fleet flight recorder: logical-time span events for every slice
//! lifecycle transition.
//!
//! A fleet campaign's wall clock hides structure: how long slices sat
//! in the queue, how long workers held them, where reassignment stalls
//! bit. The flight recorder captures one [`SpanEvent`] per transition
//! of the scheduler's state machine —
//!
//! ```text
//! Enqueued → Leased → (HeartbeatExtended)* → Submitted → Folded
//!               │
//!               └──▶ Reassigned (lease lapsed / worker died) → Leased …
//! Submitted-after-reassignment that lost the first-wins race → Deduped
//! ```
//!
//! — so the campaign's elapsed time decomposes into lease wait,
//! execution, fold and stall segments. Events use the server's logical
//! clock (`now_ms` since bind), the same time base the scheduler's
//! leases run on; the pure [`super::scheduler::Scheduler`] stays
//! clock- and observer-free — transitions are recorded at the server
//! call sites that drive it.
//!
//! The artefact is a schema-versioned [`FlightLog`]
//! (`<out>/<campaign>/trace/flight_log.json`), canonically ordered so
//! any arrival interleaving folds to identical bytes, and exportable
//! as Chrome `trace_event` JSON (chrome://tracing, Perfetto) via
//! [`FlightLog::to_chrome_trace`] — served live on the `/trace` HTTP
//! route and offline by the `trace_export` binary.
//!
//! Observer contract: recording appends to a mutex-guarded vector and
//! touches no campaign state; result artefacts are byte-identical with
//! the recorder on or off (`tests/profile_equivalence.rs`).

use std::sync::Mutex;

use serde::{Deserialize, Serialize, Value};

/// Schema version of the persisted flight log. Bump on any breaking
/// change to [`FlightLog`] or [`SpanEvent`].
pub const FLIGHT_SCHEMA_VERSION: u32 = 1;

/// Artefact discriminator of a flight log.
pub const FLIGHT_KIND: &str = "fleet-flight-log";

/// One slice lifecycle transition. The variant order is the canonical
/// tie-break for events stamped on the same logical millisecond.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SpanKind {
    /// The slice entered the queue (server bind or resume).
    Enqueued,
    /// A worker took the lease.
    Leased,
    /// A heartbeat extended the lease.
    HeartbeatExtended,
    /// The lease lapsed or its holder disconnected; the slice fell
    /// back to pending.
    Reassigned,
    /// A result for the slice was accepted (won the first-wins race).
    Submitted,
    /// The accepted result was folded into reports and journal.
    Folded,
    /// A late duplicate result arrived after the race was decided.
    Deduped,
}

impl SpanKind {
    /// Stable lowercase name used in exports.
    pub const fn name(self) -> &'static str {
        match self {
            SpanKind::Enqueued => "enqueued",
            SpanKind::Leased => "leased",
            SpanKind::HeartbeatExtended => "heartbeat_extended",
            SpanKind::Reassigned => "reassigned",
            SpanKind::Submitted => "submitted",
            SpanKind::Folded => "folded",
            SpanKind::Deduped => "deduped",
        }
    }
}

/// One recorded transition on the server's logical clock.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanEvent {
    /// Logical milliseconds since the server bound its listener.
    pub at_ms: u64,
    /// Campaign the slice belongs to.
    pub campaign: String,
    /// Scheduler slice id.
    pub slice_id: u64,
    /// Which transition happened.
    pub kind: SpanKind,
    /// The worker involved, when the transition has one.
    pub worker: Option<u64>,
}

/// Append-only in-memory recorder shared between connection threads.
///
/// Same `Option`-handle contract as telemetry: a server without a
/// recorder executes the identical instruction stream it always did.
#[derive(Debug, Default)]
pub struct FlightRecorder {
    events: Mutex<Vec<SpanEvent>>,
}

impl FlightRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        FlightRecorder::default()
    }

    /// Appends one transition.
    pub fn record(&self, event: SpanEvent) {
        self.events
            .lock()
            .expect("no panics while holding lock")
            .push(event);
    }

    /// A copy of everything recorded so far, in arrival order.
    pub fn snapshot(&self) -> Vec<SpanEvent> {
        self.events
            .lock()
            .expect("no panics while holding lock")
            .clone()
    }
}

/// The persisted flight log: canonically ordered span events.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightLog {
    /// [`FLIGHT_SCHEMA_VERSION`].
    pub schema_version: u32,
    /// Always [`FLIGHT_KIND`].
    pub kind: String,
    /// Events in canonical order (see [`FlightLog::from_events`]).
    pub events: Vec<SpanEvent>,
}

impl FlightLog {
    /// Builds a log from events in any arrival order: the canonical
    /// sort key is `(campaign, slice_id, at_ms, kind, worker)`, so two
    /// recorders that saw the same transitions in different
    /// interleavings fold to byte-identical logs — the same
    /// permutation-invariance contract as journal merge
    /// (`crates/fic/tests/prop_flight.rs`).
    pub fn from_events(mut events: Vec<SpanEvent>) -> Self {
        events.sort_by(|a, b| {
            (&a.campaign, a.slice_id, a.at_ms, a.kind, a.worker).cmp(&(
                &b.campaign,
                b.slice_id,
                b.at_ms,
                b.kind,
                b.worker,
            ))
        });
        FlightLog {
            schema_version: FLIGHT_SCHEMA_VERSION,
            kind: FLIGHT_KIND.to_owned(),
            events,
        }
    }

    /// Merges two logs into one canonical log (associative and
    /// commutative, like every other fleet fold).
    #[must_use]
    pub fn merge(&self, other: &FlightLog) -> FlightLog {
        let mut events = self.events.clone();
        events.extend(other.events.iter().cloned());
        FlightLog::from_events(events)
    }

    /// Keeps only one campaign's events (for per-campaign artefacts).
    #[must_use]
    pub fn for_campaign(&self, campaign: &str) -> FlightLog {
        FlightLog::from_events(
            self.events
                .iter()
                .filter(|e| e.campaign == campaign)
                .cloned()
                .collect(),
        )
    }

    /// Structural validation: version, discriminator, canonical order.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema_version != FLIGHT_SCHEMA_VERSION {
            return Err(format!(
                "schema_version {} (this build reads {})",
                self.schema_version, FLIGHT_SCHEMA_VERSION
            ));
        }
        if self.kind != FLIGHT_KIND {
            return Err(format!("unexpected kind `{}`", self.kind));
        }
        let ordered = self.events.windows(2).all(|w| {
            (
                &w[0].campaign,
                w[0].slice_id,
                w[0].at_ms,
                w[0].kind,
                w[0].worker,
            ) <= (
                &w[1].campaign,
                w[1].slice_id,
                w[1].at_ms,
                w[1].kind,
                w[1].worker,
            )
        });
        if !ordered {
            return Err("events not in canonical order".to_owned());
        }
        Ok(())
    }

    /// Renders the log as a Chrome `trace_event` document
    /// (chrome://tracing, Perfetto): each campaign is a process, each
    /// slice a thread, and the lifecycle decomposes into `lease wait`
    /// (enqueued/reassigned → leased), `execute` (leased → submitted),
    /// `lost lease` (leased → reassigned) and `fold` (submitted →
    /// folded) duration spans, with heartbeats and deduped duplicates
    /// as instant events. Timestamps are logical µs (`at_ms × 1000`).
    pub fn to_chrome_trace(&self) -> Value {
        let mut campaigns: Vec<&str> = self.events.iter().map(|e| e.campaign.as_str()).collect();
        campaigns.sort_unstable();
        campaigns.dedup();
        let pid_of = |name: &str| -> i128 {
            campaigns.iter().position(|c| *c == name).unwrap_or(0) as i128 + 1
        };
        let mut trace: Vec<Value> = campaigns
            .iter()
            .map(|&name| {
                Value::Object(vec![
                    ("name".to_owned(), Value::Str("process_name".to_owned())),
                    ("ph".to_owned(), Value::Str("M".to_owned())),
                    ("pid".to_owned(), Value::Int(pid_of(name))),
                    ("tid".to_owned(), Value::Int(0)),
                    (
                        "args".to_owned(),
                        Value::Object(vec![(
                            "name".to_owned(),
                            Value::Str(format!("campaign {name}")),
                        )]),
                    ),
                ])
            })
            .collect();

        let span = |name: &str, e: &SpanEvent, start_ms: u64, end_ms: u64| -> Value {
            let mut args = vec![("slice".to_owned(), Value::Int(i128::from(e.slice_id)))];
            if let Some(w) = e.worker {
                args.push(("worker".to_owned(), Value::Int(i128::from(w))));
            }
            Value::Object(vec![
                ("name".to_owned(), Value::Str(name.to_owned())),
                ("ph".to_owned(), Value::Str("X".to_owned())),
                ("ts".to_owned(), Value::Int(i128::from(start_ms) * 1_000)),
                (
                    "dur".to_owned(),
                    Value::Int(i128::from(end_ms.saturating_sub(start_ms)) * 1_000),
                ),
                ("pid".to_owned(), Value::Int(pid_of(&e.campaign))),
                ("tid".to_owned(), Value::Int(i128::from(e.slice_id))),
                ("args".to_owned(), Value::Object(args)),
            ])
        };
        let instant = |name: &str, e: &SpanEvent| -> Value {
            Value::Object(vec![
                ("name".to_owned(), Value::Str(name.to_owned())),
                ("ph".to_owned(), Value::Str("i".to_owned())),
                ("s".to_owned(), Value::Str("t".to_owned())),
                ("ts".to_owned(), Value::Int(i128::from(e.at_ms) * 1_000)),
                ("pid".to_owned(), Value::Int(pid_of(&e.campaign))),
                ("tid".to_owned(), Value::Int(i128::from(e.slice_id))),
            ])
        };

        // Walk each slice's events in time order, closing the open
        // segment at every state change. The canonical order groups by
        // (campaign, slice_id) already.
        let mut k = 0;
        while k < self.events.len() {
            let slice_end = self.events[k..]
                .iter()
                .position(|e| {
                    (e.campaign.as_str(), e.slice_id)
                        != (self.events[k].campaign.as_str(), self.events[k].slice_id)
                })
                .map_or(self.events.len(), |n| k + n);
            let mut waiting_since: Option<u64> = None;
            let mut leased_since: Option<u64> = None;
            let mut submitted_since: Option<u64> = None;
            for e in &self.events[k..slice_end] {
                match e.kind {
                    SpanKind::Enqueued => waiting_since = Some(e.at_ms),
                    SpanKind::Leased => {
                        if let Some(start) = waiting_since.take() {
                            trace.push(span("lease wait", e, start, e.at_ms));
                        }
                        leased_since = Some(e.at_ms);
                    }
                    SpanKind::HeartbeatExtended => trace.push(instant("heartbeat", e)),
                    SpanKind::Reassigned => {
                        if let Some(start) = leased_since.take() {
                            trace.push(span("lost lease", e, start, e.at_ms));
                        }
                        waiting_since = Some(e.at_ms);
                    }
                    SpanKind::Submitted => {
                        if let Some(start) = leased_since.take() {
                            trace.push(span("execute", e, start, e.at_ms));
                        }
                        submitted_since = Some(e.at_ms);
                    }
                    SpanKind::Folded => {
                        if let Some(start) = submitted_since.take() {
                            trace.push(span("fold", e, start, e.at_ms));
                        }
                    }
                    SpanKind::Deduped => trace.push(instant("deduped", e)),
                }
            }
            k = slice_end;
        }
        Value::Object(vec![
            ("traceEvents".to_owned(), Value::Array(trace)),
            ("displayTimeUnit".to_owned(), Value::Str("ms".to_owned())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(at_ms: u64, slice_id: u64, kind: SpanKind, worker: Option<u64>) -> SpanEvent {
        SpanEvent {
            at_ms,
            campaign: "c".to_owned(),
            slice_id,
            kind,
            worker,
        }
    }

    fn lifecycle() -> Vec<SpanEvent> {
        vec![
            event(0, 0, SpanKind::Enqueued, None),
            event(10, 0, SpanKind::Leased, Some(1)),
            event(20, 0, SpanKind::HeartbeatExtended, Some(1)),
            event(30, 0, SpanKind::Reassigned, Some(1)),
            event(35, 0, SpanKind::Leased, Some(2)),
            event(50, 0, SpanKind::Submitted, Some(2)),
            event(51, 0, SpanKind::Folded, Some(2)),
            event(60, 0, SpanKind::Deduped, Some(1)),
        ]
    }

    #[test]
    fn canonical_order_is_arrival_order_independent() {
        let forward = FlightLog::from_events(lifecycle());
        let mut shuffled = lifecycle();
        shuffled.reverse();
        shuffled.swap(1, 4);
        assert_eq!(FlightLog::from_events(shuffled), forward);
        forward.validate().expect("canonical log validates");
    }

    #[test]
    fn merge_is_commutative() {
        let all = lifecycle();
        let a = FlightLog::from_events(all[..3].to_vec());
        let b = FlightLog::from_events(all[3..].to_vec());
        assert_eq!(a.merge(&b), b.merge(&a));
        assert_eq!(a.merge(&b), FlightLog::from_events(all));
    }

    #[test]
    fn round_trips_through_json() {
        let log = FlightLog::from_events(lifecycle());
        let json = serde_json::to_string_pretty(&log).unwrap();
        let back: FlightLog = serde_json::from_str(&json).unwrap();
        assert_eq!(back, log);
    }

    #[test]
    fn chrome_trace_decomposes_the_lifecycle() {
        let log = FlightLog::from_events(lifecycle());
        let trace = log.to_chrome_trace();
        let json = serde_json::to_string(&trace).unwrap();
        for expected in [
            "\"lease wait\"",
            "\"execute\"",
            "\"lost lease\"",
            "\"fold\"",
            "\"heartbeat\"",
            "\"deduped\"",
            "\"traceEvents\"",
            "\"displayTimeUnit\"",
        ] {
            assert!(json.contains(expected), "missing {expected} in {json}");
        }
        // lease wait: enqueue@0 → lease@10 = 10 ms = 10_000 µs.
        assert!(json.contains("\"dur\": 10000") || json.contains("\"dur\":10000"));
    }

    #[test]
    fn recorder_snapshots_in_arrival_order() {
        let recorder = FlightRecorder::new();
        recorder.record(event(5, 1, SpanKind::Enqueued, None));
        recorder.record(event(1, 0, SpanKind::Enqueued, None));
        let snapshot = recorder.snapshot();
        assert_eq!(snapshot.len(), 2);
        assert_eq!(snapshot[0].slice_id, 1);
    }

    #[test]
    fn validate_rejects_disorder_and_wrong_kind() {
        let mut log = FlightLog::from_events(lifecycle());
        log.events.reverse();
        assert!(log.validate().unwrap_err().contains("canonical"));
        let mut wrong = FlightLog::from_events(lifecycle());
        wrong.kind = "journal".to_owned();
        assert!(wrong.validate().is_err());
    }
}
