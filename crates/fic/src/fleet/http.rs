//! The server's HTTP side-channel: live fleet status, merged telemetry
//! and attribution snapshots, and an SSE stream for dashboards.
//!
//! Served on the *same* port as the worker protocol — the accept loop
//! sniffs the first four bytes and hands `"GET "` connections here with
//! that prefix already consumed. Responses are plain HTTP/1.1 with
//! `Connection: close`; no keep-alive, no chunking (except the SSE
//! stream, which is unframed by design).
//!
//! Routes:
//!
//! | Path           | Body                                                   |
//! |----------------|--------------------------------------------------------|
//! | `/status`      | queue/lease/done counts per campaign + worker roster   |
//! | `/telemetry`   | per-campaign merged worker telemetry + fleet counters  |
//! | `/attribution` | per-campaign live attribution reports                  |
//! | `/metrics`     | Prometheus text exposition of the fleet-wide snapshot  |
//! | `/trace`       | Chrome `trace_event` JSON of the flight recorder       |
//! | `/events`      | `text/event-stream` of `/status` documents until done  |

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use serde::{Serialize, Value};

use crate::attribution::AttributionReport;
use crate::telemetry::{RunMetadata, TelemetryReport};

use super::server::Shared;

/// Upper bound on the request head (line + headers) we will buffer.
const MAX_REQUEST_HEAD: usize = 16 * 1024;

/// How often the SSE stream re-snapshots the fleet.
const SSE_TICK: Duration = Duration::from_millis(200);

/// Serves one HTTP connection whose `"GET "` prefix was already read.
pub(super) fn handle(shared: &Arc<Shared>, stream: TcpStream) {
    let peer = stream.try_clone();
    let mut reader = BufReader::new(stream.take(MAX_REQUEST_HEAD as u64));
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    // Drain headers so the client's request is fully consumed before we
    // respond (some clients treat an early response as an error).
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) if line == "\r\n" || line == "\n" => break,
            Ok(_) => {}
            Err(_) => return,
        }
    }
    let Ok(mut stream) = peer else { return };
    // The prefix "GET " is consumed, so the line starts at the path.
    let path = request_line.split_whitespace().next().unwrap_or("");
    match path {
        "/status" => respond_json(&mut stream, "200 OK", &status_value(shared)),
        "/telemetry" => respond_json(&mut stream, "200 OK", &telemetry_value(shared)),
        "/attribution" => respond_json(&mut stream, "200 OK", &attribution_value(shared)),
        "/metrics" => respond_text(
            &mut stream,
            "200 OK",
            "text/plain; version=0.0.4",
            &metrics_exposition(shared),
        ),
        "/trace" => match shared.flight() {
            Some(flight) => respond_json(
                &mut stream,
                "200 OK",
                &crate::fleet::recorder::FlightLog::from_events(flight.snapshot())
                    .to_chrome_trace(),
            ),
            None => respond_json(
                &mut stream,
                "404 Not Found",
                &Value::Object(vec![(
                    "error".to_owned(),
                    Value::Str(
                        "flight recorder disabled (start the server with --flight-recorder)"
                            .to_owned(),
                    ),
                )]),
            ),
        },
        "/events" => serve_events(shared, &mut stream),
        _ => respond_json(
            &mut stream,
            "404 Not Found",
            &Value::Object(vec![(
                "error".to_owned(),
                Value::Str(format!("no such route `{path}`")),
            )]),
        ),
    }
}

/// The `/status` document: fleet done flag, per-campaign slice counts
/// and trial totals, and the worker roster.
fn status_value(shared: &Shared) -> Value {
    let core = shared.core.lock().expect("no panics while holding lock");
    let campaigns: Vec<Value> = core
        .campaign_views()
        .into_iter()
        .map(|view| {
            Value::Object(vec![
                ("name".to_owned(), Value::Str(view.name)),
                ("pending".to_owned(), Value::Int(view.pending as i128)),
                ("leased".to_owned(), Value::Int(view.leased as i128)),
                ("done".to_owned(), Value::Int(view.done as i128)),
                ("trials".to_owned(), Value::Int(i128::from(view.trials))),
                ("finalized".to_owned(), Value::Bool(view.finalized)),
            ])
        })
        .collect();
    let workers: Vec<Value> = core
        .scheduler()
        .workers()
        .into_iter()
        .map(|(id, entry)| {
            Value::Object(vec![
                ("id".to_owned(), Value::Int(i128::from(id))),
                ("name".to_owned(), Value::Str(entry.name)),
                (
                    "completed".to_owned(),
                    Value::Int(i128::from(entry.completed)),
                ),
                ("connected".to_owned(), Value::Bool(entry.connected)),
            ])
        })
        .collect();
    drop(core);
    Value::Object(vec![
        (
            "done".to_owned(),
            Value::Bool(shared.done.load(Ordering::SeqCst)),
        ),
        ("campaigns".to_owned(), Value::Array(campaigns)),
        ("workers".to_owned(), Value::Array(workers)),
    ])
}

/// The `/telemetry` document: one schema-versioned [`TelemetryReport`]
/// per campaign (the live merge of every accepted worker snapshot) plus
/// the server's own fleet counters.
fn telemetry_value(shared: &Shared) -> Value {
    let views = {
        let core = shared.core.lock().expect("no panics while holding lock");
        core.campaign_views()
    };
    let campaigns: Vec<(String, Value)> = views
        .into_iter()
        .map(|view| {
            let run = RunMetadata::for_run(&view.protocol, true, None);
            let report = TelemetryReport::assemble("fleet_server", run, view.telemetry);
            (view.name, report.to_value())
        })
        .collect();
    Value::Object(vec![
        ("campaigns".to_owned(), Value::Object(campaigns)),
        ("fleet".to_owned(), shared.registry().snapshot().to_value()),
    ])
}

/// The `/attribution` document: one schema-versioned
/// [`AttributionReport`] per campaign, folded live from accepted
/// results.
fn attribution_value(shared: &Shared) -> Value {
    let views = {
        let core = shared.core.lock().expect("no panics while holding lock");
        core.campaign_views()
    };
    let campaigns: Vec<(String, Value)> = views
        .into_iter()
        .map(|view| {
            let run = RunMetadata::for_run(&view.protocol, true, None);
            let report = AttributionReport::assemble("fleet_server", run, view.attribution);
            (view.name, report.to_value())
        })
        .collect();
    Value::Object(vec![("campaigns".to_owned(), Value::Object(campaigns))])
}

/// The `/events` SSE stream: a `status` event with the `/status`
/// document every [`SSE_TICK`] until the fleet converges, then a final
/// `done` event and a clean close.
fn serve_events(shared: &Shared, stream: &mut TcpStream) {
    let head = "HTTP/1.1 200 OK\r\n\
                Content-Type: text/event-stream\r\n\
                Cache-Control: no-cache\r\n\
                Connection: close\r\n\r\n";
    if stream.write_all(head.as_bytes()).is_err() {
        return;
    }
    loop {
        let done = shared.done.load(Ordering::SeqCst);
        let body = serde_json::to_string(&status_value(shared)).expect("status serialises");
        let event = if done { "done" } else { "status" };
        let frame = format!("event: {event}\ndata: {body}\n\n");
        if stream.write_all(frame.as_bytes()).is_err() || stream.flush().is_err() {
            return;
        }
        if done {
            return;
        }
        std::thread::sleep(SSE_TICK);
    }
}

/// The `/metrics` body: the server's own fleet counters merged with
/// every campaign's accepted worker telemetry, in Prometheus text
/// exposition format 0.0.4 (the snapshot merge is additive, so the
/// exposition reads as fleet-wide totals).
fn metrics_exposition(shared: &Shared) -> String {
    let views = {
        let core = shared.core.lock().expect("no panics while holding lock");
        core.campaign_views()
    };
    let mut snapshot = shared.registry().snapshot();
    for view in views {
        snapshot.merge(&view.telemetry);
    }
    snapshot.to_prometheus()
}

/// Writes a plain JSON response with `Content-Length` and closes.
fn respond_json(stream: &mut TcpStream, status: &str, value: &Value) {
    let mut body = serde_json::to_string_pretty(value).expect("value serialises");
    body.push('\n');
    respond_text(stream, status, "application/json", &body);
}

/// Writes a response with an explicit content type and closes.
fn respond_text(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) {
    let head = format!(
        "HTTP/1.1 {status}\r\n\
         Content-Type: {content_type}\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n",
        body.len()
    );
    let _ = stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body.as_bytes()));
}
