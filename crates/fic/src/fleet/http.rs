//! The server's HTTP side-channel: live fleet status, merged telemetry
//! and attribution snapshots, and an SSE stream for dashboards.
//!
//! Served on the *same* port as the worker protocol — the accept loop
//! sniffs the first four bytes and hands `"GET "` connections here with
//! that prefix already consumed. Responses are plain HTTP/1.1 with
//! `Connection: close`; no keep-alive, no chunking (except the SSE
//! stream, which is unframed by design).
//!
//! Routes:
//!
//! | Path           | Body                                                   |
//! |----------------|--------------------------------------------------------|
//! | `/status`      | queue/lease/done counts per campaign + worker          |
//! |                | liveness scoreboard (lease age, heartbeat staleness,   |
//! |                | slices in flight)                                      |
//! | `/telemetry`   | per-campaign merged worker telemetry + fleet counters  |
//! | `/attribution` | per-campaign live attribution reports                  |
//! | `/coverage`    | per-campaign Wilson-CI convergence snapshot            |
//! | `/dashboard`   | self-contained HTML page polling the JSON endpoints    |
//! | `/metrics`     | Prometheus text exposition of the fleet-wide snapshot  |
//! | `/trace`       | Chrome `trace_event` JSON of the flight recorder       |
//! | `/events`      | `text/event-stream` of `/status` documents until done, |
//! |                | `: keep-alive` comment frames between changes          |

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use serde::{Serialize, Value};

use crate::attribution::AttributionReport;
use crate::convergence::{self, CoverageSnapshot};
use crate::telemetry::{RunMetadata, TelemetryReport};

use super::server::Shared;

/// Upper bound on the request head (line + headers) we will buffer.
const MAX_REQUEST_HEAD: usize = 16 * 1024;

/// How often the SSE stream re-snapshots the fleet.
const SSE_TICK: Duration = Duration::from_millis(200);

/// Quiet [`SSE_TICK`]s (status unchanged) between `: keep-alive`
/// comment frames — 15 ticks ≈ 3 s, well inside common proxy idle
/// timeouts.
const SSE_KEEP_ALIVE_TICKS: u32 = 15;

/// Serves one HTTP connection whose `"GET "` prefix was already read.
pub(super) fn handle(shared: &Arc<Shared>, stream: TcpStream) {
    let peer = stream.try_clone();
    let mut reader = BufReader::new(stream.take(MAX_REQUEST_HEAD as u64));
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    // Drain headers so the client's request is fully consumed before we
    // respond (some clients treat an early response as an error).
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) if line == "\r\n" || line == "\n" => break,
            Ok(_) => {}
            Err(_) => return,
        }
    }
    let Ok(mut stream) = peer else { return };
    // The prefix "GET " is consumed, so the line starts at the path.
    let path = request_line.split_whitespace().next().unwrap_or("");
    match path {
        "/status" => respond_json(&mut stream, "200 OK", &status_value(shared)),
        "/telemetry" => respond_json(&mut stream, "200 OK", &telemetry_value(shared)),
        "/attribution" => respond_json(&mut stream, "200 OK", &attribution_value(shared)),
        "/coverage" => respond_json(&mut stream, "200 OK", &coverage_value(shared)),
        "/dashboard" => respond_text(
            &mut stream,
            "200 OK",
            "text/html; charset=utf-8",
            DASHBOARD_HTML,
        ),
        "/metrics" => respond_text(
            &mut stream,
            "200 OK",
            "text/plain; version=0.0.4",
            &metrics_exposition(shared),
        ),
        "/trace" => match shared.flight() {
            Some(flight) => respond_json(
                &mut stream,
                "200 OK",
                &crate::fleet::recorder::FlightLog::from_events(flight.snapshot())
                    .to_chrome_trace(),
            ),
            None => respond_json(
                &mut stream,
                "404 Not Found",
                &Value::Object(vec![(
                    "error".to_owned(),
                    Value::Str(
                        "flight recorder disabled (start the server with --flight-recorder)"
                            .to_owned(),
                    ),
                )]),
            ),
        },
        "/events" => serve_events(shared, &mut stream),
        _ => respond_json(
            &mut stream,
            "404 Not Found",
            &Value::Object(vec![(
                "error".to_owned(),
                Value::Str(format!("no such route `{path}`")),
            )]),
        ),
    }
}

/// The `/status` document: fleet done flag, per-campaign slice counts
/// and trial totals, and the worker liveness scoreboard (lease age,
/// heartbeat staleness and slices in flight per worker, derived from
/// the scheduler's slice table).
fn status_value(shared: &Shared) -> Value {
    let now = shared.now_ms();
    let core = shared.core.lock().expect("no panics while holding lock");
    let campaigns: Vec<Value> = core
        .campaign_views()
        .into_iter()
        .map(|view| {
            Value::Object(vec![
                ("name".to_owned(), Value::Str(view.name)),
                ("pending".to_owned(), Value::Int(view.pending as i128)),
                ("leased".to_owned(), Value::Int(view.leased as i128)),
                ("done".to_owned(), Value::Int(view.done as i128)),
                ("trials".to_owned(), Value::Int(i128::from(view.trials))),
                ("finalized".to_owned(), Value::Bool(view.finalized)),
            ])
        })
        .collect();
    let optional_ms = |ms: Option<u64>| ms.map_or(Value::Null, |ms| Value::Int(i128::from(ms)));
    let workers: Vec<Value> = core
        .scheduler()
        .liveness(now)
        .into_iter()
        .map(|row| {
            Value::Object(vec![
                ("id".to_owned(), Value::Int(i128::from(row.worker_id))),
                ("name".to_owned(), Value::Str(row.name)),
                (
                    "completed".to_owned(),
                    Value::Int(i128::from(row.completed)),
                ),
                ("connected".to_owned(), Value::Bool(row.connected)),
                (
                    "slices_in_flight".to_owned(),
                    Value::Int(row.slices_in_flight as i128),
                ),
                (
                    "oldest_lease_age_ms".to_owned(),
                    optional_ms(row.oldest_lease_age_ms),
                ),
                (
                    "heartbeat_staleness_ms".to_owned(),
                    optional_ms(row.heartbeat_staleness_ms),
                ),
            ])
        })
        .collect();
    drop(core);
    Value::Object(vec![
        (
            "done".to_owned(),
            Value::Bool(shared.done.load(Ordering::SeqCst)),
        ),
        ("campaigns".to_owned(), Value::Array(campaigns)),
        ("workers".to_owned(), Value::Array(workers)),
    ])
}

/// The `/telemetry` document: one schema-versioned [`TelemetryReport`]
/// per campaign (the live merge of every accepted worker snapshot) plus
/// the server's own fleet counters.
fn telemetry_value(shared: &Shared) -> Value {
    let views = {
        let core = shared.core.lock().expect("no panics while holding lock");
        core.campaign_views()
    };
    let campaigns: Vec<(String, Value)> = views
        .into_iter()
        .map(|view| {
            let run = RunMetadata::for_run(&view.protocol, true, None);
            let report = TelemetryReport::assemble("fleet_server", run, view.telemetry);
            (view.name, report.to_value())
        })
        .collect();
    Value::Object(vec![
        ("campaigns".to_owned(), Value::Object(campaigns)),
        ("fleet".to_owned(), shared.registry().snapshot().to_value()),
    ])
}

/// The `/attribution` document: one schema-versioned
/// [`AttributionReport`] per campaign, folded live from accepted
/// results.
fn attribution_value(shared: &Shared) -> Value {
    let views = {
        let core = shared.core.lock().expect("no panics while holding lock");
        core.campaign_views()
    };
    let campaigns: Vec<(String, Value)> = views
        .into_iter()
        .map(|view| {
            let run = RunMetadata::for_run(&view.protocol, true, None);
            let report = AttributionReport::assemble("fleet_server", run, view.attribution);
            (view.name, report.to_value())
        })
        .collect();
    Value::Object(vec![("campaigns".to_owned(), Value::Object(campaigns))])
}

/// The `/coverage` document: a [`CoverageSnapshot`] with one
/// Wilson-CI convergence view per campaign, derived on demand from the
/// live reports — the estimator is a pure function of the folded
/// trials, so serving it cannot perturb a result bit.
fn coverage_value(shared: &Shared) -> Value {
    let views = {
        let core = shared.core.lock().expect("no panics while holding lock");
        core.campaign_views()
    };
    let campaigns = views
        .into_iter()
        .map(|view| {
            view.coverage
                .coverage(&view.name, convergence::DEFAULT_DELTA)
        })
        .collect();
    CoverageSnapshot::new(campaigns).to_value()
}

/// The `/events` SSE stream: a `status` event with the `/status`
/// document whenever it changes (checked every [`SSE_TICK`]), a
/// `: keep-alive` comment frame every [`SSE_KEEP_ALIVE_TICKS`] quiet
/// ticks so proxies and `EventSource` clients survive idle campaigns,
/// then a final `done` event and a clean close.
fn serve_events(shared: &Shared, stream: &mut TcpStream) {
    let head = "HTTP/1.1 200 OK\r\n\
                Content-Type: text/event-stream\r\n\
                Cache-Control: no-cache\r\n\
                Connection: close\r\n\r\n";
    if stream.write_all(head.as_bytes()).is_err() {
        return;
    }
    let mut last_body = String::new();
    let mut quiet_ticks = 0u32;
    loop {
        let done = shared.done.load(Ordering::SeqCst);
        let body = serde_json::to_string(&status_value(shared)).expect("status serialises");
        let frame = if done {
            format!("event: done\ndata: {body}\n\n")
        } else if body != last_body {
            quiet_ticks = 0;
            format!("event: status\ndata: {body}\n\n")
        } else {
            quiet_ticks += 1;
            if quiet_ticks < SSE_KEEP_ALIVE_TICKS {
                std::thread::sleep(SSE_TICK);
                continue;
            }
            quiet_ticks = 0;
            ": keep-alive\n\n".to_owned()
        };
        if stream.write_all(frame.as_bytes()).is_err() || stream.flush().is_err() {
            return;
        }
        if done {
            return;
        }
        last_body = body;
        std::thread::sleep(SSE_TICK);
    }
}

/// The `/metrics` body: the server's own fleet counters merged with
/// every campaign's accepted worker telemetry, in Prometheus text
/// exposition format 0.0.4 (the snapshot merge is additive, so the
/// exposition reads as fleet-wide totals).
fn metrics_exposition(shared: &Shared) -> String {
    let views = {
        let core = shared.core.lock().expect("no panics while holding lock");
        core.campaign_views()
    };
    let mut snapshot = shared.registry().snapshot();
    for view in views {
        snapshot.merge(&view.telemetry);
    }
    snapshot.to_prometheus()
}

/// Writes a plain JSON response with `Content-Length` and closes.
fn respond_json(stream: &mut TcpStream, status: &str, value: &Value) {
    let mut body = serde_json::to_string_pretty(value).expect("value serialises");
    body.push('\n');
    respond_text(stream, status, "application/json", &body);
}

/// The `/dashboard` page: a single self-contained HTML document with
/// inline CSS and vanilla JS, no external assets or libraries — it
/// polls `/coverage`, `/status` and `/metrics` and renders per-cell CI
/// bars, the worker liveness scoreboard and a trials-rate ETA.
const DASHBOARD_HTML: &str = r##"<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>fleet convergence dashboard</title>
<style>
body{font-family:ui-monospace,Menlo,Consolas,monospace;background:#111;color:#ddd;margin:1.5em}
h1{font-size:1.2em}h2{font-size:1em;margin:1.2em 0 .4em;color:#9cf}
table{border-collapse:collapse;width:100%;max-width:64em}
th,td{text-align:left;padding:.15em .8em .15em 0;font-size:.85em;white-space:nowrap}
th{color:#888;font-weight:normal;border-bottom:1px solid #333}
.bar{position:relative;width:16em;height:.9em;background:#222;border:1px solid #333;display:inline-block;vertical-align:middle}
.ci{position:absolute;top:0;bottom:0;background:#2a4d69}
.pt{position:absolute;top:-2px;bottom:-2px;width:2px;background:#9cf}
.ok{color:#8c8}.warn{color:#ec5}.dead{color:#e66}
#eta,#meta{color:#888;font-size:.85em}
</style>
</head>
<body>
<h1>fleet convergence dashboard</h1>
<div id="meta">connecting&hellip;</div>
<div id="eta"></div>
<div id="campaigns"></div>
<h2>workers</h2>
<table id="workers"><thead><tr>
<th>id</th><th>name</th><th>state</th><th>done</th><th>in flight</th>
<th>lease age</th><th>heartbeat</th></tr></thead><tbody></tbody></table>
<script>
"use strict";
let lastTrials=null,lastAt=null,rate=null;
const ms=v=>v==null?"-":(v/1000).toFixed(1)+"s";
const pct=v=>v==null?"  -  ":(100*v).toFixed(1)+"%";
function bar(c){
  const lo=c.wilson_low==null?0:c.wilson_low, hi=c.wilson_high==null?0:c.wilson_high;
  const est=c.estimate==null?0:c.estimate;
  return '<span class="bar"><span class="ci" style="left:'+(100*lo).toFixed(1)+
    '%;width:'+(100*(hi-lo)).toFixed(1)+'%"></span><span class="pt" style="left:'+
    (100*est).toFixed(1)+'%"></span></span>';
}
function renderCoverage(doc){
  let html="",maxRemaining=0,totalTrials=0;
  for(const c of doc.campaigns){
    totalTrials+=c.e1_trials+c.e2_trials;
    html+="<h2>"+c.name+" &middot; "+c.e1_trials+" E1 + "+c.e2_trials+
      " E2 trials &middot; target &plusmn;"+c.delta+"</h2>";
    html+="<table><thead><tr><th>cell</th><th>det/trials</th><th>p&#770;</th>"+
      "<th>wilson 95%</th><th></th><th>need</th></tr></thead><tbody>";
    for(const cell of c.cells){
      maxRemaining=Math.max(maxRemaining,cell.trials_remaining);
      html+="<tr><td>"+cell.label+"</td><td>"+cell.detected+"/"+cell.trials+
        "</td><td>"+pct(cell.estimate)+"</td><td>["+pct(cell.wilson_low)+", "+
        pct(cell.wilson_high)+"]</td><td>"+bar(cell)+"</td><td>"+
        (cell.trials_remaining===0?'<span class="ok">ok</span>':"+"+cell.trials_remaining)+
        "</td></tr>";
    }
    html+="</tbody></table>";
    if(c.recomposition){
      const r=c.recomposition;
      html+="<div id='meta'>Pdetect recomposed = (Pen&middot;Pprop + Pem)&middot;Pds = "+
        pct(r.p_detect_recomposed)+" (Pds "+pct(r.p_ds)+", Pem "+pct(r.p_em)+
        ", Pprop "+pct(r.p_prop)+")</div>";
    }
  }
  document.getElementById("campaigns").innerHTML=html;
  const now=Date.now();
  if(lastTrials!=null&&now>lastAt&&totalTrials>lastTrials){
    const inst=(totalTrials-lastTrials)/((now-lastAt)/1000);
    rate=rate==null?inst:0.7*rate+0.3*inst;
  }
  const eta=document.getElementById("eta");
  if(maxRemaining===0){eta.textContent="every cell at target precision";}
  else if(rate&&rate>0){eta.textContent="slowest cell needs "+maxRemaining+
    " more trials; ~"+(maxRemaining/rate).toFixed(0)+"s at "+rate.toFixed(1)+" trials/s";}
  else{eta.textContent="slowest cell needs "+maxRemaining+" more trials";}
  lastTrials=totalTrials;lastAt=now;
}
function renderStatus(doc){
  const rows=doc.workers.map(w=>{
    const cls=!w.connected?"dead":(w.heartbeat_staleness_ms>5000?"warn":"ok");
    const state=!w.connected?"gone":(w.slices_in_flight>0?"busy":"idle");
    return "<tr><td>"+w.id+"</td><td>"+w.name+"</td><td class='"+cls+"'>"+state+
      "</td><td>"+w.completed+"</td><td>"+w.slices_in_flight+"</td><td>"+
      ms(w.oldest_lease_age_ms)+"</td><td>"+ms(w.heartbeat_staleness_ms)+"</td></tr>";
  }).join("");
  document.querySelector("#workers tbody").innerHTML=rows;
  document.getElementById("meta").textContent=
    (doc.done?"fleet done":"fleet running")+" | "+doc.workers.length+" workers";
}
async function poll(){
  try{
    const[cov,st]=await Promise.all([
      fetch("/coverage").then(r=>r.json()),
      fetch("/status").then(r=>r.json())]);
    renderCoverage(cov);renderStatus(st);
    fetch("/metrics").then(r=>r.text()).catch(()=>{});
  }catch(e){
    document.getElementById("meta").textContent="poll failed: "+e;
  }
}
poll();setInterval(poll,1000);
</script>
</body>
</html>
"##;

/// Writes a response with an explicit content type and closes.
fn respond_text(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) {
    let head = format!(
        "HTTP/1.1 {status}\r\n\
         Content-Type: {content_type}\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n",
        body.len()
    );
    let _ = stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body.as_bytes()));
}
