//! The fleet worker: connects to a campaign server, leases slices,
//! runs them through the ordinary [`CampaignRunner`] and streams the
//! results (trials + telemetry snapshot) back.
//!
//! The worker is deliberately stateless: everything it knows about a
//! slice arrives in the [`SliceLease`] (protocol included), and
//! everything it produces leaves in one [`Command::SliceResult`]. A
//! worker that dies mid-lease sends nothing — the server's lease expiry
//! reassigns the slice and the journal never sees a partial slice —
//! which is exactly what `--die-after-leases` simulates for the crash
//! soak in `tests/fleet_equivalence.rs` and the CI `fleet-smoke` job.

use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::campaign::CampaignRunner;
use crate::error_set;
use crate::journal::{CampaignKind, TrialRecord};
use crate::telemetry::{Registry, TelemetrySnapshot};

use super::wire::{read_frame, write_frame, Command, Response, SliceLease, WIRE_VERSION};
use super::FleetError;

/// Configuration of one [`run_worker`] invocation.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Server address to connect to.
    pub connect: String,
    /// Self-reported name (telemetry label on the server).
    pub name: String,
    /// Worker threads per slice (0 = all available cores).
    pub threads: usize,
    /// Idle poll interval when the server has no work yet, ms.
    pub poll_ms: u64,
    /// How long to keep retrying the initial connect, ms.
    pub connect_timeout_ms: u64,
    /// Test hook: die abruptly (drop the connection without sending
    /// anything, a SIGKILL equivalent) immediately after taking this
    /// many leases.
    pub die_after_leases: Option<usize>,
    /// Restrict settle proofs to exact recurrence (no analytic
    /// absorbing band) — must match the server's reference runs when
    /// comparing journals bit for bit.
    pub no_analytic_settle: bool,
    /// Execute statically-inert errors instead of pruning them.
    pub no_prune: bool,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        WorkerOptions {
            connect: "127.0.0.1:7700".to_owned(),
            name: "worker".to_owned(),
            threads: 0,
            poll_ms: 200,
            connect_timeout_ms: 10_000,
            die_after_leases: None,
            no_analytic_settle: false,
            no_prune: false,
        }
    }
}

impl WorkerOptions {
    /// Parses a `fleet_worker` argument list.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the offending flag or value.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut options = WorkerOptions::default();
        let mut iter = args.iter();
        while let Some(flag) = iter.next() {
            let mut value = |name: &str| {
                iter.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} needs a value"))
            };
            match flag.as_str() {
                "--connect" => options.connect = value("--connect")?,
                "--name" => options.name = value("--name")?,
                "--threads" => {
                    options.threads = value("--threads")?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?;
                }
                "--poll-ms" => {
                    options.poll_ms = value("--poll-ms")?
                        .parse()
                        .map_err(|e| format!("--poll-ms: {e}"))?;
                }
                "--connect-timeout-ms" => {
                    options.connect_timeout_ms = value("--connect-timeout-ms")?
                        .parse()
                        .map_err(|e| format!("--connect-timeout-ms: {e}"))?;
                }
                "--die-after-leases" => {
                    options.die_after_leases = Some(
                        value("--die-after-leases")?
                            .parse()
                            .map_err(|e| format!("--die-after-leases: {e}"))?,
                    );
                }
                "--no-analytic-settle" => options.no_analytic_settle = true,
                "--no-prune" => options.no_prune = true,
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        Ok(options)
    }
}

/// What one worker did before exiting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerSummary {
    /// The id the server issued at registration.
    pub worker_id: u64,
    /// Leases taken (including one abandoned by `--die-after-leases`).
    pub leases: u64,
    /// Slice results the server accepted.
    pub slices_completed: u64,
    /// Duplicate results refused by the first-wins race.
    pub slices_duplicate: u64,
    /// Trials executed and submitted in accepted results.
    pub trials: u64,
    /// Whether the worker exited through the `--die-after-leases` hook.
    pub died: bool,
}

/// Runs one worker to completion: until the server reports the fleet
/// done, the connection drops, or the `die_after_leases` hook fires.
///
/// # Errors
///
/// Connect/handshake failures, transport failures mid-conversation, or
/// a typed refusal from the server (version mismatch, unknown worker).
pub fn run_worker(options: &WorkerOptions) -> Result<WorkerSummary, FleetError> {
    let mut stream = connect_with_retry(&options.connect, options.connect_timeout_ms)?;

    write_frame(
        &mut stream,
        &Command::Register {
            wire_version: WIRE_VERSION,
            worker: options.name.clone(),
        },
    )
    .map_err(FleetError::Io)?;
    let (worker_id, lease_ms) = match read_frame::<_, Response>(&mut stream)? {
        Some(Response::Registered {
            worker_id,
            lease_ms,
        }) => (worker_id, lease_ms),
        Some(Response::Refused { kind, message }) => {
            return Err(FleetError::Refused(kind, message));
        }
        Some(other) => {
            return Err(FleetError::Protocol(format!(
                "expected Registered, got {other:?}"
            )));
        }
        None => {
            return Err(FleetError::Protocol(
                "server closed the connection during registration".to_owned(),
            ));
        }
    };

    let mut summary = WorkerSummary {
        worker_id,
        leases: 0,
        slices_completed: 0,
        slices_duplicate: 0,
        trials: 0,
        died: false,
    };

    // Heartbeats are written from a side thread while the slice runs,
    // so the stream's write half is shared behind a mutex; responses
    // only ever answer this thread's requests (heartbeats are
    // fire-and-forget), so the read half stays here unshared.
    let writer = Arc::new(Mutex::new(stream.try_clone().map_err(FleetError::Io)?));

    loop {
        send(&writer, &Command::LeaseRequest { worker_id })?;
        let response = match read_frame::<_, Response>(&mut stream)? {
            Some(response) => response,
            None => {
                return Err(FleetError::Protocol(
                    "server closed the connection while work was pending".to_owned(),
                ));
            }
        };
        match response {
            Response::Lease { slice } => {
                summary.leases += 1;
                if options.die_after_leases == Some(summary.leases as usize) {
                    // SIGKILL equivalent: drop the connection with the
                    // lease held and say nothing. The server's lease
                    // expiry puts the slice back in the queue.
                    summary.died = true;
                    return Ok(summary);
                }
                let trials = slice.error_numbers.len() as u64;
                let (records, telemetry) =
                    execute_slice(&slice, options, &writer, worker_id, lease_ms)?;
                send(
                    &writer,
                    &Command::SliceResult {
                        worker_id,
                        slice_id: slice.slice_id,
                        records,
                        telemetry,
                    },
                )?;
                match read_frame::<_, Response>(&mut stream)? {
                    Some(Response::ResultAck { accepted: true }) => {
                        summary.slices_completed += 1;
                        summary.trials += trials;
                    }
                    Some(Response::ResultAck { accepted: false }) => {
                        summary.slices_duplicate += 1;
                    }
                    Some(Response::Refused { kind, message }) => {
                        return Err(FleetError::Refused(kind, message));
                    }
                    Some(other) => {
                        return Err(FleetError::Protocol(format!(
                            "expected ResultAck, got {other:?}"
                        )));
                    }
                    None => {
                        return Err(FleetError::Protocol(
                            "server closed the connection before acknowledging a result".to_owned(),
                        ));
                    }
                }
            }
            Response::NoWork { done: true } => {
                let _ = send(&writer, &Command::Shutdown { worker_id });
                return Ok(summary);
            }
            Response::NoWork { done: false } => {
                std::thread::sleep(Duration::from_millis(options.poll_ms.max(1)));
            }
            Response::Refused { kind, message } => {
                return Err(FleetError::Refused(kind, message));
            }
            other => {
                return Err(FleetError::Protocol(format!(
                    "unexpected response to a lease request: {other:?}"
                )));
            }
        }
    }
}

/// Dials the server, retrying until `timeout_ms` elapses (the smoke
/// topology starts workers and server concurrently).
fn connect_with_retry(addr: &str, timeout_ms: u64) -> Result<TcpStream, FleetError> {
    let deadline = Instant::now() + Duration::from_millis(timeout_ms);
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => {
                stream.set_nodelay(true).map_err(FleetError::Io)?;
                return Ok(stream);
            }
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(FleetError::Io(e));
                }
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
}

/// Writes one frame through the shared write half.
fn send(writer: &Arc<Mutex<TcpStream>>, command: &Command) -> Result<(), FleetError> {
    let mut stream = writer.lock().expect("no panics while holding lock");
    write_frame(&mut *stream, command).map_err(FleetError::Io)
}

/// Runs every trial of one slice through a fresh [`CampaignRunner`]
/// (own telemetry registry, checkpointing + batching on as in the
/// single-process reference) while a side thread heartbeats the lease.
/// Returns the records in lease order plus the slice's telemetry.
fn execute_slice(
    slice: &SliceLease,
    options: &WorkerOptions,
    writer: &Arc<Mutex<TcpStream>>,
    worker_id: u64,
    lease_ms: u64,
) -> Result<(Vec<TrialRecord>, TelemetrySnapshot), FleetError> {
    let stop = Arc::new(AtomicBool::new(false));
    let heartbeat = {
        let stop = Arc::clone(&stop);
        let writer = Arc::clone(writer);
        let slice_id = slice.slice_id;
        // A third of the TTL keeps the lease alive through two missed
        // beats; heartbeat write errors are ignored here — the main
        // thread sees the same dead stream on its next frame. Sleep in
        // short hops so stopping the thread after a fast slice does
        // not block the join for a whole beat interval.
        let interval = Duration::from_millis((lease_ms / 3).max(1));
        std::thread::spawn(move || {
            let hop = Duration::from_millis(25).min(interval);
            let mut slept = Duration::ZERO;
            while !stop.load(Ordering::SeqCst) {
                std::thread::sleep(hop);
                slept += hop;
                if slept < interval {
                    continue;
                }
                slept = Duration::ZERO;
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let _ = send(
                    &writer,
                    &Command::Heartbeat {
                        worker_id,
                        slice_id,
                    },
                );
            }
        })
    };

    let mut protocol = slice.protocol.clone();
    protocol.workers = options.threads;
    let registry = Arc::new(Registry::new());
    let runner = CampaignRunner::new(protocol)
        .with_analytic_settle(!options.no_analytic_settle)
        .with_pruning(!options.no_prune)
        .with_telemetry(Arc::clone(&registry));
    let pairs: Vec<(usize, usize)> = (0..slice.error_numbers.len())
        .map(|ei| (ei, slice.case_index))
        .collect();
    let records: Result<Vec<TrialRecord>, FleetError> = match slice.kind {
        CampaignKind::E1 => {
            let full = error_set::e1();
            let subset = subset_by_number(&full, &slice.error_numbers, "E1")?;
            Ok(runner
                .run_e1_pairs(&subset, &pairs)
                .into_iter()
                .map(|(ei, ci, trial)| TrialRecord {
                    campaign: CampaignKind::E1,
                    error_number: subset[ei].number,
                    case_index: ci,
                    trial,
                })
                .collect())
        }
        CampaignKind::E2 => {
            let full = error_set::e2();
            let subset = subset_by_number(&full, &slice.error_numbers, "E2")?;
            Ok(runner
                .run_e2_pairs(&subset, &pairs)
                .into_iter()
                .map(|(ei, ci, trial)| TrialRecord {
                    campaign: CampaignKind::E2,
                    error_number: subset[ei].number,
                    case_index: ci,
                    trial,
                })
                .collect())
        }
    };

    stop.store(true, Ordering::SeqCst);
    let _ = heartbeat.join();
    Ok((records?, registry.snapshot()))
}

/// Resolves paper error numbers against the full set (`full[n-1]` has
/// number `n`), preserving lease order.
fn subset_by_number<E: Copy + HasNumber>(
    full: &[E],
    numbers: &[usize],
    label: &str,
) -> Result<Vec<E>, FleetError> {
    numbers
        .iter()
        .map(|&n| {
            full.get(n.wrapping_sub(1))
                .copied()
                .filter(|e| e.number() == n)
                .ok_or_else(|| FleetError::Protocol(format!("unknown {label} error number {n}")))
        })
        .collect()
}

/// Internal: both error kinds expose their paper number for lease
/// resolution.
trait HasNumber {
    fn number(&self) -> usize;
}

impl HasNumber for crate::error_set::E1Error {
    fn number(&self) -> usize {
        self.number
    }
}

impl HasNumber for crate::error_set::E2Error {
    fn number(&self) -> usize {
        self.number
    }
}
