//! The fleet wire protocol: length-prefixed, schema-versioned JSON
//! frames carrying a typed command enum.
//!
//! Every frame is a 4-byte big-endian payload length followed by that
//! many bytes of JSON — one serialized [`Command`] (worker → server) or
//! [`Response`] (server → worker). The length prefix makes framing
//! independent of payload content, and the version carried by
//! [`Command::Register`] lets the server refuse incompatible workers
//! with a typed error instead of a parse failure halfway into a
//! campaign.
//!
//! Decoding is incremental and never panics on hostile input:
//! [`FrameBuffer`] consumes bytes in arbitrary chunk sizes (pinned by
//! the frame-boundary fuzz in `crates/fic/tests/fleet_wire.rs`), a
//! partial frame simply stays pending, an oversized length prefix is a
//! typed [`FrameError::Oversize`], and a payload that is not valid
//! JSON for the expected type is a [`FrameError::Parse`].

use std::fmt;
use std::io::{self, Read, Write};

use serde::{Deserialize, Serialize};

use crate::journal::{CampaignKind, TrialRecord};
use crate::protocol::Protocol;
use crate::telemetry::TelemetrySnapshot;

/// Wire-protocol schema version. A server refuses workers that
/// register with any other value ([`RefusalKind::VersionMismatch`]).
pub const WIRE_VERSION: u32 = 1;

/// Upper bound on one frame's payload, bytes. Large enough for a
/// whole-case slice result at the paper protocol, small enough that a
/// corrupt or malicious length prefix cannot make the receiver
/// allocate unbounded memory. ASCII `"GET "` read as a big-endian
/// length (≈ 1.2 GiB) is far above this bound, which is how the
/// server's single listening port tells HTTP clients from workers.
pub const MAX_FRAME_LEN: usize = 32 << 20;

/// One leased unit of campaign work: every still-pending trial of one
/// ⟨campaign kind, test case⟩ cell. Slices never split a test case, so
/// a worker builds each fault-free prefix exactly once and the fleet's
/// checkpoint-cache counters sum to the single-process reference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SliceLease {
    /// Server-assigned slice identifier (stable across reassignment).
    pub slice_id: u64,
    /// Name of the campaign this slice belongs to.
    pub campaign: String,
    /// Which error set the slice draws from.
    pub kind: CampaignKind,
    /// The protocol to run the trials under.
    pub protocol: Protocol,
    /// Index of the test case shared by every trial in the slice.
    pub case_index: usize,
    /// Paper error numbers (1-based) still pending for this case.
    pub error_numbers: Vec<usize>,
}

/// Worker → server commands.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Command {
    /// First frame on every worker connection: version handshake.
    Register {
        /// The worker's [`WIRE_VERSION`].
        wire_version: u32,
        /// Human-readable worker name (telemetry label only).
        worker: String,
    },
    /// Ask for a slice of work.
    LeaseRequest {
        /// Id from [`Response::Registered`].
        worker_id: u64,
    },
    /// Keep-alive for a held lease; fire-and-forget (no response).
    Heartbeat {
        /// Id from [`Response::Registered`].
        worker_id: u64,
        /// The held slice.
        slice_id: u64,
    },
    /// A completed slice: every trial outcome plus the worker's
    /// telemetry snapshot for the slice.
    SliceResult {
        /// Id from [`Response::Registered`].
        worker_id: u64,
        /// The completed slice.
        slice_id: u64,
        /// One record per ⟨error, case⟩ pair, in error-number order.
        records: Vec<TrialRecord>,
        /// The worker's metrics for this slice (merged server-side).
        telemetry: TelemetrySnapshot,
    },
    /// Polite goodbye; the server releases any leases immediately
    /// (an abrupt disconnect has the same effect).
    Shutdown {
        /// Id from [`Response::Registered`].
        worker_id: u64,
    },
}

/// Server → worker responses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Registration accepted.
    Registered {
        /// The id the worker must present in every later command.
        worker_id: u64,
        /// Lease time-to-live; heartbeat well within this interval.
        lease_ms: u64,
    },
    /// A slice to execute.
    Lease {
        /// The work.
        slice: SliceLease,
    },
    /// Nothing to lease right now.
    NoWork {
        /// `true` once every slice of every campaign is complete —
        /// the worker should shut down instead of polling again.
        done: bool,
    },
    /// Answer to [`Command::SliceResult`].
    ResultAck {
        /// `false` when another worker's result won the first-wins
        /// race (the records were discarded, matching
        /// [`crate::journal::merge`] semantics).
        accepted: bool,
    },
    /// The command was refused; the connection stays usable unless the
    /// refusal says otherwise (version mismatch closes it).
    Refused {
        /// Machine-readable refusal class.
        kind: RefusalKind,
        /// Human-readable diagnostics.
        message: String,
    },
}

/// Typed refusal classes for [`Response::Refused`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RefusalKind {
    /// The worker registered with a different [`WIRE_VERSION`].
    VersionMismatch,
    /// The command names a worker id the server never issued (or that
    /// was retired by a disconnect).
    UnknownWorker,
    /// The command names a slice id the server never issued.
    UnknownSlice,
    /// The command is structurally valid but semantically wrong
    /// (e.g. a slice result whose records do not match the lease).
    Malformed,
}

impl fmt::Display for RefusalKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let label = match self {
            RefusalKind::VersionMismatch => "version mismatch",
            RefusalKind::UnknownWorker => "unknown worker",
            RefusalKind::UnknownSlice => "unknown slice",
            RefusalKind::Malformed => "malformed command",
        };
        f.write_str(label)
    }
}

/// Errors raised while framing or parsing wire traffic.
#[derive(Debug)]
pub enum FrameError {
    /// Transport failure.
    Io(io::Error),
    /// A length prefix above [`MAX_FRAME_LEN`] — corrupt framing or a
    /// non-protocol peer.
    Oversize(usize),
    /// The stream ended mid-frame (after a prefix, before the payload
    /// completed) — the peer died or the frame was truncated.
    Truncated,
    /// The payload is not valid JSON for the expected message type.
    Parse(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame I/O error: {e}"),
            FrameError::Oversize(len) => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME_LEN} cap")
            }
            FrameError::Truncated => f.write_str("stream ended mid-frame"),
            FrameError::Parse(m) => write!(f, "frame payload does not parse: {m}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Encodes one message as a length-prefixed frame.
pub fn encode_frame<T: Serialize>(message: &T) -> Vec<u8> {
    let payload = serde_json::to_string(message).expect("wire messages serialise");
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    frame.extend_from_slice(payload.as_bytes());
    frame
}

/// Parses one frame payload into a message.
///
/// # Errors
///
/// [`FrameError::Parse`] when the payload is not valid JSON for `T`.
pub fn decode_payload<T: Deserialize>(payload: &[u8]) -> Result<T, FrameError> {
    let text = std::str::from_utf8(payload)
        .map_err(|e| FrameError::Parse(format!("payload is not UTF-8: {e}")))?;
    serde_json::from_str(text).map_err(|e| FrameError::Parse(e.to_string()))
}

/// Incremental frame decoder: feed bytes in any chunk sizes, take
/// complete payloads out. Never panics on hostile input; a partial
/// frame stays buffered until more bytes arrive.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buffer: Vec<u8>,
}

impl FrameBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes from the transport.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buffer.extend_from_slice(bytes);
    }

    /// Whether a partial frame is currently buffered (a clean stream
    /// must end on a frame boundary).
    pub fn mid_frame(&self) -> bool {
        !self.buffer.is_empty()
    }

    /// Takes the next complete payload, if one is buffered.
    ///
    /// # Errors
    ///
    /// [`FrameError::Oversize`] when the pending length prefix exceeds
    /// [`MAX_FRAME_LEN`]; the buffer is then poisoned garbage and the
    /// connection should be dropped.
    pub fn next_payload(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        if self.buffer.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([
            self.buffer[0],
            self.buffer[1],
            self.buffer[2],
            self.buffer[3],
        ]) as usize;
        if len > MAX_FRAME_LEN {
            return Err(FrameError::Oversize(len));
        }
        if self.buffer.len() < 4 + len {
            return Ok(None);
        }
        let payload = self.buffer[4..4 + len].to_vec();
        self.buffer.drain(..4 + len);
        Ok(Some(payload))
    }
}

/// Writes one message as a frame and flushes.
///
/// # Errors
///
/// Any transport failure.
pub fn write_frame<W: Write, T: Serialize>(writer: &mut W, message: &T) -> io::Result<()> {
    writer.write_all(&encode_frame(message))?;
    writer.flush()
}

/// Reads one message from the transport. Returns `Ok(None)` on a clean
/// end-of-stream at a frame boundary; an end-of-stream mid-frame is
/// [`FrameError::Truncated`].
///
/// # Errors
///
/// Transport failures, an oversized prefix, a truncated frame, or a
/// payload that does not parse as `T`.
pub fn read_frame<R: Read, T: Deserialize>(reader: &mut R) -> Result<Option<T>, FrameError> {
    let mut prefix = [0u8; 4];
    match read_exact_or_eof(reader, &mut prefix)? {
        ReadOutcome::Eof => return Ok(None),
        ReadOutcome::Partial => return Err(FrameError::Truncated),
        ReadOutcome::Full => {}
    }
    read_frame_after_prefix(reader, prefix).map(Some)
}

/// [`read_frame`] when the 4-byte prefix was already consumed (the
/// server peeks it to route HTTP clients away from the worker path).
///
/// # Errors
///
/// Same conditions as [`read_frame`], minus the clean-EOF case.
pub fn read_frame_after_prefix<R: Read, T: Deserialize>(
    reader: &mut R,
    prefix: [u8; 4],
) -> Result<T, FrameError> {
    let len = u32::from_be_bytes(prefix) as usize;
    if len > MAX_FRAME_LEN {
        return Err(FrameError::Oversize(len));
    }
    let mut payload = vec![0u8; len];
    match read_exact_or_eof(reader, &mut payload)? {
        ReadOutcome::Full => {}
        ReadOutcome::Eof | ReadOutcome::Partial => return Err(FrameError::Truncated),
    }
    decode_payload(&payload)
}

enum ReadOutcome {
    Full,
    Partial,
    Eof,
}

/// `read_exact` that distinguishes "no bytes at all" (clean EOF) from
/// "some but not all" (truncation).
fn read_exact_or_eof<R: Read>(reader: &mut R, buf: &mut [u8]) -> io::Result<ReadOutcome> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 {
                    ReadOutcome::Eof
                } else {
                    ReadOutcome::Partial
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(ReadOutcome::Full)
}
