//! The work-stealing slice scheduler: pure state machine, logical time.
//!
//! The scheduler owns the fleet's queue of grid slices and tracks who
//! holds what. It is deliberately free of clocks, sockets and threads —
//! every method takes the current time as a plain `now_ms` argument —
//! so the property tests in `crates/fic/tests/prop_fleet.rs` can drive
//! lease expiry, worker death and arrival-order permutations
//! deterministically.
//!
//! Lifecycle of one slice:
//!
//! ```text
//! Pending ──lease()──▶ Leased{worker, expires} ──complete()──▶ Done
//!    ▲                        │
//!    └── expiry / release ◀───┘
//! ```
//!
//! "Work stealing" here is pull-based: idle workers keep asking for
//! leases, and a slice whose holder stopped heartbeating (or
//! disconnected) falls back to `Pending` where the next asker takes
//! it. Results are deduplicated first-wins — if a presumed-dead worker
//! resurfaces and submits after its slice was reassigned, whichever
//! submission arrives first is the one that counts, exactly the
//! [`crate::journal::merge`] rule — so reassignment can duplicate
//! *work* but never duplicates *results*.

use std::collections::HashMap;

use crate::journal::CampaignKind;

/// Immutable description of one slice: every still-pending trial of
/// one ⟨campaign, kind, test case⟩ cell.
#[derive(Debug, Clone, PartialEq)]
pub struct SliceSpec {
    /// Index of the campaign this slice belongs to (into the server's
    /// campaign list).
    pub campaign: usize,
    /// Which error set the slice draws from.
    pub kind: CampaignKind,
    /// The test case shared by every trial in the slice.
    pub case_index: usize,
    /// Paper error numbers (1-based) to run for this case.
    pub error_numbers: Vec<usize>,
}

/// Where one slice is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SliceStatus {
    /// Waiting for a worker.
    Pending,
    /// Held under lease.
    Leased {
        /// The holder.
        worker_id: u64,
        /// Logical instant the lease lapses without a heartbeat.
        expires_at_ms: u64,
        /// Logical instant the lease was granted (survives heartbeat
        /// extensions, so lease age is measurable).
        leased_at_ms: u64,
    },
    /// A result was accepted.
    Done,
}

#[derive(Debug)]
struct Slice {
    spec: SliceSpec,
    status: SliceStatus,
}

/// One registered worker.
#[derive(Debug, Clone)]
pub struct WorkerEntry {
    /// Self-reported name (telemetry label).
    pub name: String,
    /// Slices completed by this worker (accepted results only).
    pub completed: u64,
    /// Whether the worker is still connected.
    pub connected: bool,
}

/// Point-in-time liveness of one worker, derived from the slice table
/// by [`Scheduler::liveness`] — the `/status` scoreboard row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerLiveness {
    /// The worker's scheduler id.
    pub worker_id: u64,
    /// Self-reported name.
    pub name: String,
    /// Whether the worker is still connected.
    pub connected: bool,
    /// Slices completed (accepted results only).
    pub completed: u64,
    /// Slices currently leased to this worker.
    pub slices_in_flight: usize,
    /// Age of the oldest lease the worker holds (`None` when idle).
    pub oldest_lease_age_ms: Option<u64>,
    /// Time since the most-stale held lease last heartbeat (`None`
    /// when idle); approaches the lease TTL as the worker goes silent.
    pub heartbeat_staleness_ms: Option<u64>,
}

/// The fleet scheduler; see the module docs for the state machine.
#[derive(Debug)]
pub struct Scheduler {
    lease_ms: u64,
    slices: Vec<Slice>,
    workers: HashMap<u64, WorkerEntry>,
    next_worker_id: u64,
}

impl Scheduler {
    /// An empty scheduler whose leases last `lease_ms` of logical time.
    pub fn new(lease_ms: u64) -> Self {
        Scheduler {
            lease_ms: lease_ms.max(1),
            slices: Vec::new(),
            workers: HashMap::new(),
            next_worker_id: 1,
        }
    }

    /// The lease time-to-live workers must heartbeat within.
    pub const fn lease_ms(&self) -> u64 {
        self.lease_ms
    }

    /// Appends a slice to the queue and returns its id (ids are the
    /// append order, starting at 0).
    pub fn push(&mut self, spec: SliceSpec) -> u64 {
        self.slices.push(Slice {
            spec,
            status: SliceStatus::Pending,
        });
        (self.slices.len() - 1) as u64
    }

    /// Registers a worker and returns its id.
    pub fn register(&mut self, name: &str) -> u64 {
        let id = self.next_worker_id;
        self.next_worker_id += 1;
        self.workers.insert(
            id,
            WorkerEntry {
                name: name.to_owned(),
                completed: 0,
                connected: true,
            },
        );
        id
    }

    /// Whether `worker_id` is a currently-connected registration.
    pub fn knows_worker(&self, worker_id: u64) -> bool {
        self.workers.get(&worker_id).is_some_and(|w| w.connected)
    }

    /// Marks a worker gone (shutdown or disconnect) and releases every
    /// lease it held back to `Pending`. Returns the released slice ids.
    pub fn release_worker(&mut self, worker_id: u64) -> Vec<u64> {
        if let Some(worker) = self.workers.get_mut(&worker_id) {
            worker.connected = false;
        }
        let mut released = Vec::new();
        for (id, slice) in self.slices.iter_mut().enumerate() {
            if let SliceStatus::Leased {
                worker_id: holder, ..
            } = slice.status
            {
                if holder == worker_id {
                    slice.status = SliceStatus::Pending;
                    released.push(id as u64);
                }
            }
        }
        released
    }

    /// Returns every lease that lapsed by `now_ms` to `Pending` (the
    /// heartbeat-timeout path for workers that hang without
    /// disconnecting). Returns the expired slice ids.
    pub fn expire(&mut self, now_ms: u64) -> Vec<u64> {
        let mut expired = Vec::new();
        for (id, slice) in self.slices.iter_mut().enumerate() {
            if let SliceStatus::Leased { expires_at_ms, .. } = slice.status {
                if expires_at_ms <= now_ms {
                    slice.status = SliceStatus::Pending;
                    expired.push(id as u64);
                }
            }
        }
        expired
    }

    /// Leases the lowest-id pending slice to `worker_id` (expiring
    /// lapsed leases first, so a dead holder cannot starve the queue).
    /// Returns the slice id and spec, or `None` when nothing is
    /// pending.
    pub fn lease(&mut self, worker_id: u64, now_ms: u64) -> Option<(u64, SliceSpec)> {
        if !self.knows_worker(worker_id) {
            return None;
        }
        self.expire(now_ms);
        let expires_at_ms = now_ms.saturating_add(self.lease_ms);
        for (id, slice) in self.slices.iter_mut().enumerate() {
            if slice.status == SliceStatus::Pending {
                slice.status = SliceStatus::Leased {
                    worker_id,
                    expires_at_ms,
                    leased_at_ms: now_ms,
                };
                return Some((id as u64, slice.spec.clone()));
            }
        }
        None
    }

    /// Extends the lease on `slice_id` if `worker_id` still holds it.
    /// A heartbeat for a slice the worker no longer holds (expired and
    /// reassigned, or already done) is a no-op returning `false`.
    pub fn heartbeat(&mut self, worker_id: u64, slice_id: u64, now_ms: u64) -> bool {
        let Some(slice) = self.slices.get_mut(slice_id as usize) else {
            return false;
        };
        match slice.status {
            SliceStatus::Leased {
                worker_id: holder,
                leased_at_ms,
                ..
            } if holder == worker_id => {
                slice.status = SliceStatus::Leased {
                    worker_id,
                    expires_at_ms: now_ms.saturating_add(self.lease_ms),
                    leased_at_ms,
                };
                true
            }
            _ => false,
        }
    }

    /// Records a completed slice, first-wins: the first result for a
    /// slice is accepted regardless of who currently holds the lease
    /// (a reassigned-but-alive worker's finished work still counts);
    /// every later result for the same slice is refused. Returns
    /// whether this submission won.
    pub fn complete(&mut self, worker_id: u64, slice_id: u64) -> bool {
        let Some(slice) = self.slices.get_mut(slice_id as usize) else {
            return false;
        };
        if slice.status == SliceStatus::Done {
            return false;
        }
        slice.status = SliceStatus::Done;
        if let Some(worker) = self.workers.get_mut(&worker_id) {
            worker.completed += 1;
        }
        true
    }

    /// The spec of slice `slice_id`, if it exists.
    pub fn spec(&self, slice_id: u64) -> Option<&SliceSpec> {
        self.slices.get(slice_id as usize).map(|s| &s.spec)
    }

    /// The status of slice `slice_id`, if it exists.
    pub fn status(&self, slice_id: u64) -> Option<SliceStatus> {
        self.slices.get(slice_id as usize).map(|s| s.status)
    }

    /// Whether every slice of campaign `campaign` is done.
    pub fn campaign_done(&self, campaign: usize) -> bool {
        self.slices
            .iter()
            .filter(|s| s.spec.campaign == campaign)
            .all(|s| s.status == SliceStatus::Done)
    }

    /// Whether every slice of every campaign is done.
    pub fn all_done(&self) -> bool {
        self.slices.iter().all(|s| s.status == SliceStatus::Done)
    }

    /// `(pending, leased, done)` slice counts for one campaign.
    pub fn campaign_counts(&self, campaign: usize) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for slice in &self.slices {
            if slice.spec.campaign != campaign {
                continue;
            }
            match slice.status {
                SliceStatus::Pending => counts.0 += 1,
                SliceStatus::Leased { .. } => counts.1 += 1,
                SliceStatus::Done => counts.2 += 1,
            }
        }
        counts
    }

    /// `(pending, leased, done)` slice counts.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for slice in &self.slices {
            match slice.status {
                SliceStatus::Pending => counts.0 += 1,
                SliceStatus::Leased { .. } => counts.1 += 1,
                SliceStatus::Done => counts.2 += 1,
            }
        }
        counts
    }

    /// Point-in-time liveness of every registered worker at `now_ms`:
    /// slices currently held, the age of the oldest held lease, and
    /// how long ago the most-stale lease last heartbeat — all derived
    /// from the slice table, so the view is exactly what the scheduler
    /// will act on at the next expiry sweep.
    pub fn liveness(&self, now_ms: u64) -> Vec<WorkerLiveness> {
        let mut rows: Vec<WorkerLiveness> = self
            .workers()
            .into_iter()
            .map(|(worker_id, entry)| WorkerLiveness {
                worker_id,
                name: entry.name,
                connected: entry.connected,
                completed: entry.completed,
                slices_in_flight: 0,
                oldest_lease_age_ms: None,
                heartbeat_staleness_ms: None,
            })
            .collect();
        for slice in &self.slices {
            let SliceStatus::Leased {
                worker_id,
                expires_at_ms,
                leased_at_ms,
            } = slice.status
            else {
                continue;
            };
            let Some(row) = rows.iter_mut().find(|r| r.worker_id == worker_id) else {
                continue;
            };
            row.slices_in_flight += 1;
            let age = now_ms.saturating_sub(leased_at_ms);
            row.oldest_lease_age_ms = Some(row.oldest_lease_age_ms.map_or(age, |a| a.max(age)));
            // expires_at = last heartbeat + TTL, so the last heartbeat
            // (or lease grant) instant is recoverable.
            let staleness = now_ms.saturating_sub(expires_at_ms.saturating_sub(self.lease_ms));
            row.heartbeat_staleness_ms = Some(
                row.heartbeat_staleness_ms
                    .map_or(staleness, |s| s.max(staleness)),
            );
        }
        rows
    }

    /// Registered workers as `(id, entry)`, sorted by id.
    pub fn workers(&self) -> Vec<(u64, WorkerEntry)> {
        let mut workers: Vec<(u64, WorkerEntry)> = self
            .workers
            .iter()
            .map(|(&id, entry)| (id, entry.clone()))
            .collect();
        workers.sort_by_key(|(id, _)| *id);
        workers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(campaign: usize, case_index: usize) -> SliceSpec {
        SliceSpec {
            campaign,
            kind: CampaignKind::E1,
            case_index,
            error_numbers: vec![1, 2],
        }
    }

    #[test]
    fn leases_in_queue_order_and_completes() {
        let mut s = Scheduler::new(1_000);
        s.push(spec(0, 0));
        s.push(spec(0, 1));
        let w = s.register("w");
        let (id0, spec0) = s.lease(w, 0).unwrap();
        assert_eq!((id0, spec0.case_index), (0, 0));
        let (id1, _) = s.lease(w, 0).unwrap();
        assert_eq!(id1, 1);
        assert!(s.lease(w, 0).is_none());
        assert!(s.complete(w, id0));
        assert!(!s.complete(w, id0), "duplicate result must be refused");
        assert!(s.complete(w, id1));
        assert!(s.all_done());
    }

    #[test]
    fn expired_lease_is_reassigned() {
        let mut s = Scheduler::new(500);
        s.push(spec(0, 0));
        let dead = s.register("dead");
        let live = s.register("live");
        let (id, _) = s.lease(dead, 0).unwrap();
        // Within the TTL the slice is not up for grabs...
        assert!(s.lease(live, 400).is_none());
        // ...heartbeats extend it...
        assert!(s.heartbeat(dead, id, 400));
        assert!(s.lease(live, 800).is_none());
        // ...but silence past the TTL hands it to the next asker.
        let (re_id, _) = s.lease(live, 901).unwrap();
        assert_eq!(re_id, id);
        // The old holder's heartbeat is now a no-op.
        assert!(!s.heartbeat(dead, id, 902));
    }

    #[test]
    fn release_worker_returns_leases() {
        let mut s = Scheduler::new(10_000);
        s.push(spec(0, 0));
        let w1 = s.register("w1");
        let w2 = s.register("w2");
        let (id, _) = s.lease(w1, 0).unwrap();
        assert_eq!(s.release_worker(w1), vec![id]);
        assert!(!s.knows_worker(w1));
        let (re_id, _) = s.lease(w2, 1).unwrap();
        assert_eq!(re_id, id);
    }

    #[test]
    fn liveness_tracks_lease_age_and_staleness() {
        let mut s = Scheduler::new(1_000);
        s.push(spec(0, 0));
        s.push(spec(0, 1));
        let busy = s.register("busy");
        let _idle = s.register("idle");
        let (id0, _) = s.lease(busy, 100).unwrap();
        let (_, _) = s.lease(busy, 200).unwrap();
        assert!(s.heartbeat(busy, id0, 600));

        let rows = s.liveness(700);
        assert_eq!(rows.len(), 2);
        let busy_row = &rows[0];
        assert_eq!(busy_row.name, "busy");
        assert_eq!(busy_row.slices_in_flight, 2);
        // Oldest lease was granted at 100; the heartbeat at 600 does
        // not reset its age.
        assert_eq!(busy_row.oldest_lease_age_ms, Some(600));
        // Slice 1 last heartbeat at its grant (200): staleness 500.
        assert_eq!(busy_row.heartbeat_staleness_ms, Some(500));
        let idle_row = &rows[1];
        assert_eq!(idle_row.name, "idle");
        assert_eq!(idle_row.slices_in_flight, 0);
        assert_eq!(idle_row.oldest_lease_age_ms, None);
        assert_eq!(idle_row.heartbeat_staleness_ms, None);

        assert!(s.complete(busy, id0));
        let rows = s.liveness(700);
        assert_eq!(rows[0].slices_in_flight, 1);
        assert_eq!(rows[0].completed, 1);
    }

    #[test]
    fn first_result_wins_even_after_reassignment() {
        let mut s = Scheduler::new(100);
        s.push(spec(0, 0));
        let slow = s.register("slow");
        let fast = s.register("fast");
        let (id, _) = s.lease(slow, 0).unwrap();
        // The lease lapses and is reassigned...
        let (re_id, _) = s.lease(fast, 250).unwrap();
        assert_eq!(re_id, id);
        // ...but the original holder finishes first: its result counts,
        // the reassigned worker's is refused.
        assert!(s.complete(slow, id));
        assert!(!s.complete(fast, id));
        assert_eq!(s.counts(), (0, 0, 1));
    }
}
