//! The campaign fleet service: a work-stealing campaign server and its
//! worker protocol.
//!
//! The paper's fault-injection campaigns are embarrassingly parallel,
//! and PRs 4–5 made every fan-in associative and permutation-invariant
//! — journals merge with first-wins dedup, telemetry snapshots and
//! attribution aggregates merge commutatively. This module turns that
//! algebra into a serving system:
//!
//! - [`wire`] — the length-prefixed, schema-versioned JSON frame
//!   protocol ([`Command`]/[`Response`]) workers speak to the server.
//! - [`scheduler`] — the pure work-stealing state machine: slice
//!   leases, heartbeat-based expiry, reassignment on worker death,
//!   first-wins result dedup.
//! - [`server`] — the `std::net::TcpListener` campaign server: a
//!   multi-tenant queue of named campaigns, journals as the durability
//!   layer (resume on restart), artefact finalization, and an HTTP +
//!   SSE status side-channel on the same port ([`http`]).
//! - [`worker`] — the stateless slice executor built on
//!   [`crate::campaign::CampaignRunner`].
//!
//! Because every slice result lands in the same crash-safe journal and
//! every aggregate is an order-free fold, a fleet run — any worker
//! count, any interleaving, any number of worker deaths — converges to
//! byte-identical Tables 6–9, attribution and telemetry counters
//! versus the single-process `full_campaign` reference; that is the
//! acceptance gate in `tests/fleet_equivalence.rs` and the CI
//! `fleet-smoke` job.

pub mod http;
pub mod recorder;
pub mod scheduler;
pub mod server;
pub mod wire;
pub mod worker;

use std::fmt;
use std::io;

pub use recorder::{FlightLog, FlightRecorder, SpanEvent, SpanKind};
pub use scheduler::{Scheduler, SliceSpec, SliceStatus, WorkerEntry, WorkerLiveness};
pub use server::{CampaignOutcome, CampaignSpec, FleetSummary, Server, ServerOptions};
pub use wire::{Command, FrameBuffer, FrameError, RefusalKind, Response, SliceLease, WIRE_VERSION};
pub use worker::{run_worker, WorkerOptions, WorkerSummary};

/// Errors raised by the fleet client and server entry points.
#[derive(Debug)]
pub enum FleetError {
    /// Transport failure.
    Io(io::Error),
    /// Framing or payload-parse failure.
    Frame(FrameError),
    /// The server refused a command with a typed error.
    Refused(RefusalKind, String),
    /// The peer broke the conversation contract (unexpected response,
    /// premature close, an unknown error number in a lease).
    Protocol(String),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Io(e) => write!(f, "fleet I/O error: {e}"),
            FleetError::Frame(e) => write!(f, "fleet framing error: {e}"),
            FleetError::Refused(kind, message) => write!(f, "server refused ({kind}): {message}"),
            FleetError::Protocol(message) => write!(f, "protocol violation: {message}"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<FrameError> for FleetError {
    fn from(e: FrameError) -> Self {
        FleetError::Frame(e)
    }
}

impl From<io::Error> for FleetError {
    fn from(e: io::Error) -> Self {
        FleetError::Io(e)
    }
}
