//! The campaign server: a multi-tenant queue of named campaigns served
//! to workers over the wire protocol, journaled for durability, with a
//! streaming HTTP/SSE status side-channel.
//!
//! One `std::net::TcpListener` serves both protocols: the first four
//! bytes of each connection route it — ASCII `"GET "` (a length prefix
//! of ≈ 1.2 GiB, far above [`crate::fleet::wire::MAX_FRAME_LEN`]) goes
//! to the HTTP handler, anything else is the first frame of a worker
//! conversation.
//!
//! Durability is the PR 4–5 algebra: every accepted slice result is
//! appended to the campaign's crash-safe journal (trials *and* derived
//! attribution events), and the in-memory reports are the same
//! commutative folds a journal replay performs — so a restarted server
//! resumes by loading the journal, pre-folding the recorded trials and
//! queueing only the missing ⟨kind, case⟩ slices, and the final tables
//! are byte-identical no matter how the fleet interleaved
//! (`tests/fleet_equivalence.rs`).

use std::collections::{HashMap, HashSet};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::attribution::{AttributionAggregate, MonitoredMap};
use crate::campaign::InjectableError;
use crate::convergence::{self, ConvergenceAggregate};
use crate::error_set::{self, E1Error, E2Error};
use crate::journal::{CampaignKind, Journal, JournalWriter, TrialRecord};
use crate::protocol::Protocol;
use crate::results::{E1Report, E2Report};
use crate::telemetry::{self, TelemetrySnapshot};
use crate::{attribution, tables};

use super::http;
use super::recorder::{FlightLog, FlightRecorder, SpanEvent, SpanKind};
use super::scheduler::{Scheduler, SliceSpec};
use super::wire::{
    read_frame, read_frame_after_prefix, write_frame, Command, RefusalKind, Response, SliceLease,
    WIRE_VERSION,
};

/// One named campaign in the server's queue.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Queue name (also the journal file stem and artefact directory).
    pub name: String,
    /// The protocol every trial runs under.
    pub protocol: Protocol,
    /// E1 paper error numbers to run (1-based; empty = no E1 phase).
    pub e1_numbers: Vec<usize>,
    /// E2 paper error numbers to run (1-based; empty = no E2 phase).
    pub e2_numbers: Vec<usize>,
}

impl CampaignSpec {
    /// The full paper campaign: every E1 and E2 error.
    pub fn full(name: &str, protocol: Protocol) -> Self {
        Self::with_limits(name, protocol, 0, 0)
    }

    /// A prefix-limited campaign: the first `e1_limit` E1 errors and
    /// first `e2_limit` E2 errors (`0` = the full set) — the shape the
    /// `fleet_server` binary's `--e1-limit`/`--e2-limit` flags build.
    pub fn with_limits(name: &str, protocol: Protocol, e1_limit: usize, e2_limit: usize) -> Self {
        let clamp = |total: usize, limit: usize| {
            if limit == 0 {
                total
            } else {
                limit.min(total)
            }
        };
        let e1_total = error_set::e1().len();
        let e2_total = error_set::e2().len();
        CampaignSpec {
            name: name.to_owned(),
            protocol,
            e1_numbers: (1..=clamp(e1_total, e1_limit)).collect(),
            e2_numbers: (1..=clamp(e2_total, e2_limit)).collect(),
        }
    }
}

/// Configuration of one [`Server`].
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Listen address (`host:port`; port 0 picks a free port).
    pub listen: String,
    /// Lease time-to-live, ms of wall clock; workers heartbeat within
    /// this interval or their slices are reassigned.
    pub lease_ms: u64,
    /// Artefact root: each campaign writes under `<out>/<name>/`.
    pub out_dir: PathBuf,
    /// Journal directory (`<dir>/<name>.jsonl`); defaults to `out_dir`.
    pub journal_dir: Option<PathBuf>,
    /// Exit [`Server::run`] once every campaign is complete and the
    /// last worker disconnected, instead of serving forever.
    pub once: bool,
    /// Campaign queue names (the `fleet_server` binary pairs these
    /// with its protocol flags via [`ServerOptions::campaign_specs`]).
    pub campaigns: Vec<String>,
    /// Grid scale for the binary's campaigns (`None` = paper 5 × 5).
    pub scale: Option<usize>,
    /// Observation-window override for the binary's campaigns, ms.
    pub observation_ms: Option<u64>,
    /// E1 prefix limit for the binary's campaigns (0 = full set).
    pub e1_limit: usize,
    /// E2 prefix limit for the binary's campaigns (0 = full set).
    pub e2_limit: usize,
    /// Record slice lifecycle span events (the fleet flight recorder):
    /// serves `/trace` and writes `trace/flight_log.json` per campaign.
    pub flight_recorder: bool,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            listen: "127.0.0.1:7700".to_owned(),
            lease_ms: 30_000,
            out_dir: PathBuf::from("results/fleet"),
            journal_dir: None,
            once: false,
            campaigns: Vec::new(),
            scale: None,
            observation_ms: None,
            e1_limit: 0,
            e2_limit: 0,
            flight_recorder: false,
        }
    }
}

impl ServerOptions {
    /// Parses a `fleet_server` argument list.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the offending flag or value.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut options = ServerOptions::default();
        let mut iter = args.iter();
        while let Some(flag) = iter.next() {
            let mut value = |name: &str| {
                iter.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} needs a value"))
            };
            match flag.as_str() {
                "--listen" => options.listen = value("--listen")?,
                "--campaign" => options.campaigns.push(value("--campaign")?),
                "--lease-ms" => {
                    options.lease_ms = value("--lease-ms")?
                        .parse()
                        .map_err(|e| format!("--lease-ms: {e}"))?;
                }
                "--out" => options.out_dir = PathBuf::from(value("--out")?),
                "--journal-dir" => {
                    options.journal_dir = Some(PathBuf::from(value("--journal-dir")?));
                }
                "--once" => options.once = true,
                "--scale" => {
                    options.scale = Some(
                        value("--scale")?
                            .parse()
                            .map_err(|e| format!("--scale: {e}"))?,
                    );
                }
                "--observation" => {
                    options.observation_ms = Some(
                        value("--observation")?
                            .parse()
                            .map_err(|e| format!("--observation: {e}"))?,
                    );
                }
                "--e1-limit" => {
                    options.e1_limit = value("--e1-limit")?
                        .parse()
                        .map_err(|e| format!("--e1-limit: {e}"))?;
                }
                "--e2-limit" => {
                    options.e2_limit = value("--e2-limit")?
                        .parse()
                        .map_err(|e| format!("--e2-limit: {e}"))?;
                }
                "--flight-recorder" => options.flight_recorder = true,
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        if options.lease_ms == 0 {
            return Err("--lease-ms must be positive".to_owned());
        }
        if options.campaigns.is_empty() {
            options.campaigns.push("campaign".to_owned());
        }
        Ok(options)
    }

    /// The protocol the binary's flags describe.
    pub fn protocol(&self) -> Protocol {
        let mut protocol = match self.scale {
            Some(n) => Protocol::scaled(n, simenv::spec::OBSERVATION_MS),
            None => Protocol::paper(),
        };
        if let Some(ms) = self.observation_ms {
            protocol.observation_ms = ms;
        }
        protocol
    }

    /// One [`CampaignSpec`] per `--campaign`, sharing the binary's
    /// protocol and prefix limits.
    pub fn campaign_specs(&self) -> Vec<CampaignSpec> {
        self.campaigns
            .iter()
            .map(|name| {
                CampaignSpec::with_limits(name, self.protocol(), self.e1_limit, self.e2_limit)
            })
            .collect()
    }

    /// Where a campaign's journal lives.
    pub fn journal_path(&self, name: &str) -> PathBuf {
        self.journal_dir
            .as_ref()
            .unwrap_or(&self.out_dir)
            .join(format!("{name}.jsonl"))
    }
}

/// Everything one finished campaign produced, as returned by
/// [`Server::run`] for in-process assertions.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// Campaign name.
    pub name: String,
    /// The journal the campaign's trials are recorded in.
    pub journal_path: PathBuf,
    /// Where the rendered tables and reports were written.
    pub out_dir: PathBuf,
    /// The folded E1 report.
    pub e1_report: E1Report,
    /// The folded E2 report.
    pub e2_report: E2Report,
    /// The folded attribution aggregate.
    pub attribution: AttributionAggregate,
    /// The merged worker telemetry for this campaign.
    pub telemetry: TelemetrySnapshot,
    /// Trials accepted (journal appends, not counting resume replay).
    pub trials: u64,
}

/// What [`Server::run`] hands back in `--once` mode.
#[derive(Debug, Clone)]
pub struct FleetSummary {
    /// One outcome per campaign, in queue order.
    pub campaigns: Vec<CampaignOutcome>,
}

/// Per-campaign mutable state guarded by the core lock.
struct CampaignState {
    spec: CampaignSpec,
    journal: JournalWriter,
    journal_path: PathBuf,
    out_dir: PathBuf,
    recorded: HashSet<(CampaignKind, usize, usize)>,
    e1_report: E1Report,
    e2_report: E2Report,
    attribution: AttributionAggregate,
    telemetry: TelemetrySnapshot,
    trials: u64,
    finalized: bool,
}

/// Scheduler plus campaign states — one lock, because every transition
/// (lease, heartbeat, result, disconnect) must see both consistently.
pub(super) struct Core {
    scheduler: Scheduler,
    campaigns: Vec<CampaignState>,
}

/// State shared between the accept loop, connection threads and the
/// HTTP handlers.
pub(super) struct Shared {
    pub(super) options: ServerOptions,
    pub(super) core: Mutex<Core>,
    pub(super) done: AtomicBool,
    worker_conns: AtomicUsize,
    start: Instant,
    registry: Arc<telemetry::Registry>,
    flight: Option<FlightRecorder>,
    e1_by_number: HashMap<usize, E1Error>,
    e2_by_number: HashMap<usize, E2Error>,
    monitored: MonitoredMap,
}

impl Shared {
    pub(super) fn now_ms(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    /// Records one slice transition when the flight recorder is on.
    /// `campaign` is the slice's campaign name (resolved by the caller,
    /// which holds the core lock and can see the spec).
    fn record_span(
        &self,
        at_ms: u64,
        campaign: &str,
        slice_id: u64,
        kind: SpanKind,
        worker: Option<u64>,
    ) {
        if let Some(flight) = &self.flight {
            flight.record(SpanEvent {
                at_ms,
                campaign: campaign.to_owned(),
                slice_id,
                kind,
                worker,
            });
        }
    }
}

/// The fleet campaign server. [`Server::bind`] loads (or creates) the
/// journals and builds the slice queue; [`Server::run`] serves until
/// every campaign converges (`once`) or forever.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener and prepares every campaign: existing
    /// journals are loaded and pre-folded (resume), missing ⟨kind,
    /// case⟩ cells become queue slices, fully-recorded campaigns are
    /// finalized immediately.
    ///
    /// # Errors
    ///
    /// Socket or filesystem failures, or a journal that does not match
    /// its campaign (protocol mismatch, corrupt records).
    pub fn bind(options: ServerOptions, campaigns: Vec<CampaignSpec>) -> io::Result<Server> {
        let listener = TcpListener::bind(&options.listen)?;
        listener.set_nonblocking(true)?;

        let e1_by_number: HashMap<usize, E1Error> =
            error_set::e1().into_iter().map(|e| (e.number, e)).collect();
        let e2_by_number: HashMap<usize, E2Error> =
            error_set::e2().into_iter().map(|e| (e.number, e)).collect();
        let monitored = MonitoredMap::new();

        let mut scheduler = Scheduler::new(options.lease_ms);
        let mut states = Vec::with_capacity(campaigns.len());
        for (ci, spec) in campaigns.into_iter().enumerate() {
            let journal_path = options.journal_path(&spec.name);
            let out_dir = options.out_dir.join(&spec.name);
            let mut state = CampaignState {
                journal: JournalWriter::append_to(&journal_path, &spec.protocol)?,
                journal_path,
                out_dir,
                recorded: HashSet::new(),
                e1_report: E1Report::new(),
                e2_report: E2Report::new(),
                attribution: AttributionAggregate::new(),
                telemetry: TelemetrySnapshot::new(),
                trials: 0,
                finalized: false,
                spec,
            };
            replay_recorded(&mut state, &e1_by_number, &e2_by_number, &monitored)?;
            queue_slices(&mut scheduler, ci, &state);
            states.push(state);
        }

        // Capture the queue before Shared owns the scheduler: each
        // pending slice becomes an Enqueued span at logical t = 0.
        let enqueued: Vec<(u64, String)> = {
            let (pending, leased, done) = scheduler.counts();
            (0..(pending + leased + done) as u64)
                .filter_map(|id| {
                    scheduler
                        .spec(id)
                        .map(|spec| (id, states[spec.campaign].spec.name.clone()))
                })
                .collect()
        };
        let shared = Arc::new(Shared {
            flight: options.flight_recorder.then(FlightRecorder::new),
            options,
            core: Mutex::new(Core {
                scheduler,
                campaigns: states,
            }),
            done: AtomicBool::new(false),
            worker_conns: AtomicUsize::new(0),
            start: Instant::now(),
            registry: Arc::new(telemetry::Registry::new()),
            e1_by_number,
            e2_by_number,
            monitored,
        });
        for (slice_id, campaign) in enqueued {
            shared.record_span(0, &campaign, slice_id, SpanKind::Enqueued, None);
        }

        // A fully-recorded journal leaves a campaign with no slices:
        // finalize it now so `--once` with nothing to do still writes
        // artefacts and exits.
        {
            let mut core = shared.core.lock().expect("no panics while holding lock");
            finalize_ready(&shared, &mut core);
        }
        Ok(Server { listener, shared })
    }

    /// The bound address (useful with a `:0` listen port).
    ///
    /// # Errors
    ///
    /// The socket refuses to report its address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves the fleet. In `once` mode, returns the summary when
    /// every campaign is complete and the last worker connection
    /// closed; otherwise runs until the process dies.
    ///
    /// # Errors
    ///
    /// Accept-loop failures other than the nonblocking wait.
    pub fn run(self) -> io::Result<FleetSummary> {
        let Server { listener, shared } = self;
        loop {
            match listener.accept() {
                Ok((stream, _addr)) => {
                    let shared = Arc::clone(&shared);
                    std::thread::spawn(move || handle_connection(&shared, stream));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if shared.options.once
                        && shared.done.load(Ordering::SeqCst)
                        && shared.worker_conns.load(Ordering::SeqCst) == 0
                    {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(e),
            }
        }
        let core = shared.core.lock().expect("no panics while holding lock");
        Ok(FleetSummary {
            campaigns: core
                .campaigns
                .iter()
                .map(|c| CampaignOutcome {
                    name: c.spec.name.clone(),
                    journal_path: c.journal_path.clone(),
                    out_dir: c.out_dir.clone(),
                    e1_report: c.e1_report.clone(),
                    e2_report: c.e2_report.clone(),
                    attribution: c.attribution.clone(),
                    telemetry: c.telemetry.clone(),
                    trials: c.trials,
                })
                .collect(),
        })
    }
}

/// Loads an existing journal (if any) and pre-folds its records:
/// dedup first-wins into the reports, the attribution aggregate and
/// the recorded-key set, exactly as a replay would.
fn replay_recorded(
    state: &mut CampaignState,
    e1_by_number: &HashMap<usize, E1Error>,
    e2_by_number: &HashMap<usize, E2Error>,
    monitored: &MonitoredMap,
) -> io::Result<()> {
    if !state.journal_path.exists() {
        return Ok(());
    }
    let journal = Journal::load(&state.journal_path).map_err(io::Error::other)?;
    if !journal
        .header
        .protocol
        .compatible_with(&state.spec.protocol)
    {
        return Err(io::Error::other(format!(
            "journal {} was recorded under a different protocol",
            state.journal_path.display()
        )));
    }
    let cases = state.spec.protocol.cases_per_error();
    for record in &journal.records {
        if record.case_index >= cases {
            return Err(io::Error::other(format!(
                "journal {} case index {} out of range",
                state.journal_path.display(),
                record.case_index
            )));
        }
        let key = (record.campaign, record.error_number, record.case_index);
        if !state.recorded.insert(key) {
            continue;
        }
        fold_record(state, record, e1_by_number, e2_by_number, monitored, false)?;
    }
    Ok(())
}

/// Folds one record into a campaign's reports and aggregate; appends
/// it (and its derived attribution event) to the journal when `append`.
fn fold_record(
    state: &mut CampaignState,
    record: &TrialRecord,
    e1_by_number: &HashMap<usize, E1Error>,
    e2_by_number: &HashMap<usize, E2Error>,
    monitored: &MonitoredMap,
    append: bool,
) -> io::Result<()> {
    let event = match record.campaign {
        CampaignKind::E1 => {
            let error = e1_by_number.get(&record.error_number).ok_or_else(|| {
                io::Error::other(format!("unknown E1 error number S{}", record.error_number))
            })?;
            state.e1_report.record(error, &record.trial);
            error.attribution_event(record.case_index, &record.trial, monitored)
        }
        CampaignKind::E2 => {
            let error = e2_by_number.get(&record.error_number).ok_or_else(|| {
                io::Error::other(format!("unknown E2 error number {}", record.error_number))
            })?;
            state.e2_report.record(error, &record.trial);
            error.attribution_event(record.case_index, &record.trial, monitored)
        }
    };
    state.attribution.record(&event);
    if append {
        state.journal.append(
            record.campaign,
            record.error_number,
            record.case_index,
            &record.trial,
        )?;
        state.journal.append_attribution(&event)?;
        state.trials += 1;
    }
    Ok(())
}

/// Queues one slice per still-incomplete ⟨kind, case⟩ cell: every
/// trial of a case stays in one slice, so a worker builds each
/// fault-free prefix exactly once and the fleet's checkpoint-cache
/// counters sum to the single-process reference.
fn queue_slices(scheduler: &mut Scheduler, campaign: usize, state: &CampaignState) {
    let cases = state.spec.protocol.cases_per_error();
    let phases = [
        (CampaignKind::E1, &state.spec.e1_numbers),
        (CampaignKind::E2, &state.spec.e2_numbers),
    ];
    for (kind, numbers) in phases {
        for case_index in 0..cases {
            let pending: Vec<usize> = numbers
                .iter()
                .copied()
                .filter(|&n| !state.recorded.contains(&(kind, n, case_index)))
                .collect();
            if !pending.is_empty() {
                scheduler.push(SliceSpec {
                    campaign,
                    kind,
                    case_index,
                    error_numbers: pending,
                });
            }
        }
    }
}

/// Finalizes every campaign whose slices are all done, and raises the
/// fleet-wide done flag when nothing is left anywhere.
fn finalize_ready(shared: &Shared, core: &mut Core) {
    for ci in 0..core.campaigns.len() {
        if core.scheduler.campaign_done(ci) && !core.campaigns[ci].finalized {
            if let Err(e) = finalize_campaign(&mut core.campaigns[ci], shared.flight.as_ref()) {
                eprintln!(
                    "fleet_server: finalizing campaign `{}` failed: {e}",
                    core.campaigns[ci].spec.name
                );
            }
            core.campaigns[ci].finalized = true;
        }
    }
    if core.scheduler.all_done() {
        shared.done.store(true, Ordering::SeqCst);
    }
}

/// Writes one finished campaign's artefacts: the JSON reports, Tables
/// 6–9, the merged telemetry report, the attribution report and (when
/// the flight recorder is on) the canonical flight log — the same
/// layout `full_campaign` produces, nested under the campaign's name.
fn finalize_campaign(state: &mut CampaignState, flight: Option<&FlightRecorder>) -> io::Result<()> {
    state.journal.sync()?;
    std::fs::create_dir_all(&state.out_dir)?;
    std::fs::write(
        state.out_dir.join("e1.json"),
        serde_json::to_string_pretty(&state.e1_report).expect("report serialises"),
    )?;
    std::fs::write(
        state.out_dir.join("e2.json"),
        serde_json::to_string_pretty(&state.e2_report).expect("report serialises"),
    )?;
    let e1_errors: Vec<E1Error> = {
        let full = error_set::e1();
        state
            .spec
            .e1_numbers
            .iter()
            .filter_map(|&n| full.get(n - 1).copied())
            .collect()
    };
    let cases = state.spec.protocol.cases_per_error();
    for (name, text) in [
        ("table6.txt", tables::render_table6(&e1_errors, cases)),
        ("table7.txt", tables::render_table7(&state.e1_report)),
        ("table8.txt", tables::render_table8(&state.e1_report)),
        ("table9.txt", tables::render_table9(&state.e2_report)),
    ] {
        std::fs::write(state.out_dir.join(name), text)?;
    }
    let run = telemetry::RunMetadata::for_run(&state.spec.protocol, true, None);
    let telemetry_report =
        telemetry::TelemetryReport::assemble("fleet_server", run.clone(), state.telemetry.clone());
    telemetry::write_report(
        &state.out_dir.join("telemetry"),
        "fleet_server",
        &telemetry_report,
    )?;
    let attribution_report = attribution::AttributionReport::assemble(
        "fleet_server",
        run.clone(),
        state.attribution.clone(),
    );
    attribution::write_report(
        &state.out_dir.join("attribution"),
        "fleet_server",
        &attribution_report,
    )?;
    let aggregate = ConvergenceAggregate::from_reports(&state.e1_report, &state.e2_report);
    let convergence_report = convergence::ConvergenceReport::assemble(
        "fleet_server",
        run,
        aggregate,
        convergence::DEFAULT_DELTA,
    );
    convergence::write_report(
        &state.out_dir.join("convergence"),
        "fleet_server",
        &convergence_report,
    )?;
    if let Some(flight) = flight {
        let log = FlightLog::from_events(flight.snapshot()).for_campaign(&state.spec.name);
        let dir = state.out_dir.join("trace");
        std::fs::create_dir_all(&dir)?;
        let json = serde_json::to_string_pretty(&log).expect("flight log serialises");
        std::fs::write(dir.join("flight_log.json"), format!("{json}\n"))?;
    }
    Ok(())
}

/// Decrements the worker-connection count when a connection thread
/// unwinds, however it exits.
struct ConnGuard<'a>(&'a Shared);

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        self.0.worker_conns.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Routes one accepted connection: HTTP for `"GET "` prefixes, the
/// framed worker protocol for everything else.
fn handle_connection(shared: &Arc<Shared>, mut stream: TcpStream) {
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    let mut prefix = [0u8; 4];
    if let Err(e) = std::io::Read::read_exact(&mut stream, &mut prefix) {
        let _ = e;
        return;
    }
    if &prefix == b"GET " {
        http::handle(shared, stream);
        return;
    }
    shared.worker_conns.fetch_add(1, Ordering::SeqCst);
    let guard = ConnGuard(shared);
    serve_worker(shared, stream, prefix);
    drop(guard);
}

/// The worker conversation: register-first handshake, then a strict
/// command/response loop. Disconnects — clean or abrupt — release the
/// worker's leases immediately.
fn serve_worker(shared: &Shared, mut stream: TcpStream, prefix: [u8; 4]) {
    // First frame must be a version-matched Register.
    let first: Command = match read_frame_after_prefix(&mut stream, prefix) {
        Ok(command) => command,
        Err(_) => return,
    };
    let worker_id = match first {
        Command::Register {
            wire_version,
            worker,
        } if wire_version == WIRE_VERSION => {
            let mut core = shared.core.lock().expect("no panics while holding lock");
            let id = core.scheduler.register(&worker);
            drop(core);
            shared.registry.counter("fleet.workers.registered").inc();
            let response = Response::Registered {
                worker_id: id,
                lease_ms: shared.options.lease_ms,
            };
            if write_frame(&mut stream, &response).is_err() {
                return;
            }
            id
        }
        Command::Register { wire_version, .. } => {
            let refusal = Response::Refused {
                kind: RefusalKind::VersionMismatch,
                message: format!(
                    "worker speaks wire version {wire_version}, this server speaks {WIRE_VERSION}"
                ),
            };
            let _ = write_frame(&mut stream, &refusal);
            return;
        }
        _ => {
            let refusal = Response::Refused {
                kind: RefusalKind::Malformed,
                message: "first command must be Register".to_owned(),
            };
            let _ = write_frame(&mut stream, &refusal);
            return;
        }
    };

    // Clean EOF or any transport/framing failure ends the loop: the
    // worker is gone; its leases go back to the queue.
    while let Ok(Some(command)) = read_frame::<_, Command>(&mut stream) {
        let response = match command {
            Command::Register { .. } => Some(Response::Refused {
                kind: RefusalKind::Malformed,
                message: "already registered".to_owned(),
            }),
            Command::LeaseRequest { worker_id: claimed } => {
                Some(handle_lease(shared, worker_id, claimed))
            }
            Command::Heartbeat {
                worker_id: claimed,
                slice_id,
            } => {
                // Fire-and-forget: heartbeats race slice execution on
                // the worker, so they never get a response frame.
                let now = shared.now_ms();
                let mut core = shared.core.lock().expect("no panics while holding lock");
                if claimed == worker_id && core.scheduler.heartbeat(worker_id, slice_id, now) {
                    if let Some(name) = core.campaign_name_of(slice_id) {
                        shared.record_span(
                            now,
                            &name,
                            slice_id,
                            SpanKind::HeartbeatExtended,
                            Some(worker_id),
                        );
                    }
                }
                drop(core);
                shared.registry.counter("fleet.heartbeats").inc();
                None
            }
            Command::SliceResult {
                worker_id: claimed,
                slice_id,
                records,
                telemetry,
            } => Some(handle_result(
                shared, worker_id, claimed, slice_id, records, telemetry,
            )),
            Command::Shutdown { .. } => break,
        };
        if let Some(response) = response {
            if write_frame(&mut stream, &response).is_err() {
                break;
            }
        }
    }

    let now = shared.now_ms();
    let mut core = shared.core.lock().expect("no panics while holding lock");
    let released = core.scheduler.release_worker(worker_id);
    for &slice_id in &released {
        if let Some(name) = core.campaign_name_of(slice_id) {
            shared.record_span(now, &name, slice_id, SpanKind::Reassigned, Some(worker_id));
        }
    }
    drop(core);
    if !released.is_empty() {
        shared
            .registry
            .counter("fleet.slices.reassigned")
            .add(released.len() as u64);
    }
}

fn handle_lease(shared: &Shared, worker_id: u64, claimed: u64) -> Response {
    if claimed != worker_id {
        return Response::Refused {
            kind: RefusalKind::UnknownWorker,
            message: format!("connection registered worker {worker_id}, command claims {claimed}"),
        };
    }
    let now = shared.now_ms();
    let mut core = shared.core.lock().expect("no panics while holding lock");
    // Expire lapsed leases explicitly (lease() would do it anyway) so
    // heartbeat-timeout reassignments land in the flight log; the old
    // holder is unknown by the time the lease lapses.
    for slice_id in core.scheduler.expire(now) {
        if let Some(name) = core.campaign_name_of(slice_id) {
            shared.record_span(now, &name, slice_id, SpanKind::Reassigned, None);
        }
    }
    match core.scheduler.lease(worker_id, now) {
        Some((slice_id, spec)) => {
            let campaign = &core.campaigns[spec.campaign];
            let slice = SliceLease {
                slice_id,
                campaign: campaign.spec.name.clone(),
                kind: spec.kind,
                protocol: campaign.spec.protocol.clone(),
                case_index: spec.case_index,
                error_numbers: spec.error_numbers,
            };
            drop(core);
            shared.record_span(
                now,
                &slice.campaign,
                slice_id,
                SpanKind::Leased,
                Some(worker_id),
            );
            shared.registry.counter("fleet.slices.leased").inc();
            Response::Lease { slice }
        }
        None => {
            let done = core.scheduler.all_done();
            drop(core);
            Response::NoWork { done }
        }
    }
}

fn handle_result(
    shared: &Shared,
    worker_id: u64,
    claimed: u64,
    slice_id: u64,
    records: Vec<TrialRecord>,
    telemetry: TelemetrySnapshot,
) -> Response {
    if claimed != worker_id {
        return Response::Refused {
            kind: RefusalKind::UnknownWorker,
            message: format!("connection registered worker {worker_id}, command claims {claimed}"),
        };
    }
    let mut core = shared.core.lock().expect("no panics while holding lock");
    let Some(spec) = core.scheduler.spec(slice_id).cloned() else {
        return Response::Refused {
            kind: RefusalKind::UnknownSlice,
            message: format!("slice {slice_id} was never issued"),
        };
    };
    // The records must be exactly the leased trials, in lease order —
    // anything else is a worker bug, refused before the first-wins
    // race is entered (the slice stays leased and will be reassigned).
    let matches = records.len() == spec.error_numbers.len()
        && records.iter().zip(&spec.error_numbers).all(|(r, &n)| {
            r.campaign == spec.kind && r.error_number == n && r.case_index == spec.case_index
        });
    if !matches {
        return Response::Refused {
            kind: RefusalKind::Malformed,
            message: format!("records do not match the lease of slice {slice_id}"),
        };
    }
    let now = shared.now_ms();
    let campaign_name = core.campaigns[spec.campaign].spec.name.clone();
    if !core.scheduler.complete(worker_id, slice_id) {
        drop(core);
        shared.record_span(
            now,
            &campaign_name,
            slice_id,
            SpanKind::Deduped,
            Some(worker_id),
        );
        shared.registry.counter("fleet.results.duplicate").inc();
        return Response::ResultAck { accepted: false };
    }
    shared.record_span(
        now,
        &campaign_name,
        slice_id,
        SpanKind::Submitted,
        Some(worker_id),
    );
    let state = &mut core.campaigns[spec.campaign];
    for record in &records {
        let key = (record.campaign, record.error_number, record.case_index);
        if !state.recorded.insert(key) {
            continue;
        }
        if let Err(e) = fold_record(
            state,
            record,
            &shared.e1_by_number,
            &shared.e2_by_number,
            &shared.monitored,
            true,
        ) {
            eprintln!("fleet_server: journal append failed: {e}");
        }
    }
    state.telemetry.merge(&telemetry);
    shared.record_span(
        shared.now_ms(),
        &campaign_name,
        slice_id,
        SpanKind::Folded,
        Some(worker_id),
    );
    finalize_ready(shared, &mut core);
    drop(core);
    shared.registry.counter("fleet.slices.completed").inc();
    shared
        .registry
        .counter(&format!("fleet.worker.{worker_id}.slices"))
        .inc();
    Response::ResultAck { accepted: true }
}

impl Shared {
    /// The fleet's own metric registry (lease/result/heartbeat
    /// counters, served by the HTTP telemetry endpoint alongside the
    /// merged worker snapshots).
    pub(super) fn registry(&self) -> &Arc<telemetry::Registry> {
        &self.registry
    }

    /// The flight recorder, when `--flight-recorder` is on.
    pub(super) fn flight(&self) -> Option<&FlightRecorder> {
        self.flight.as_ref()
    }
}

impl Core {
    pub(super) fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// The campaign name a slice belongs to (for span events).
    fn campaign_name_of(&self, slice_id: u64) -> Option<String> {
        self.scheduler
            .spec(slice_id)
            .map(|spec| self.campaigns[spec.campaign].spec.name.clone())
    }

    pub(super) fn campaign_views(&self) -> Vec<CampaignView> {
        self.campaigns
            .iter()
            .enumerate()
            .map(|(ci, c)| {
                let (pending, leased, done) = self.scheduler.campaign_counts(ci);
                CampaignView {
                    name: c.spec.name.clone(),
                    pending,
                    leased,
                    done,
                    trials: c.trials,
                    finalized: c.finalized,
                    telemetry: c.telemetry.clone(),
                    attribution: c.attribution.clone(),
                    coverage: ConvergenceAggregate::from_reports(&c.e1_report, &c.e2_report),
                    protocol: c.spec.protocol.clone(),
                }
            })
            .collect()
    }
}

/// A read-only snapshot of one campaign for the HTTP side-channel.
pub(super) struct CampaignView {
    pub(super) name: String,
    pub(super) pending: usize,
    pub(super) leased: usize,
    pub(super) done: usize,
    pub(super) trials: u64,
    pub(super) finalized: bool,
    pub(super) telemetry: TelemetrySnapshot,
    pub(super) attribution: AttributionAggregate,
    pub(super) coverage: ConvergenceAggregate,
    pub(super) protocol: Protocol,
}
