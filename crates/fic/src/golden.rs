//! Golden-run validation and golden-table regression checking.
//!
//! Two distinct "goldens" live here:
//!
//! * **Golden runs** ([`validate_fault_free`]): the paper requires that
//!   every test case, executed without injections, triggers **no**
//!   detection and **no** failure ("All test cases are such that if
//!   they are run on the target system without error injection, none of
//!   the error detection mechanisms report detection", Section 3.4).
//! * **Golden tables** ([`check_dir`] / [`refresh_dir`]): committed
//!   reference campaign results under `results/golden/`. A fresh
//!   campaign (or a journal replay) is compared cell by cell against
//!   the goldens with tolerances derived from Powell-style confidence
//!   intervals — proportions must have overlapping Wilson intervals
//!   ([`ea_core::stats::Proportion::equivalent`]), latency cells must
//!   have overlapping observed ranges. A silently disabled detector
//!   collapses its column to zero, far outside the golden intervals,
//!   and fails the check.

use std::fmt;
use std::io;
use std::path::Path;

use arrestor::{RunConfig, System};
use ea_core::stats::Z_95;
use simenv::TestCase;

use crate::error_set::E1Error;
use crate::protocol::Protocol;
use crate::results::{Cell, E1Report, E2Report, VERSION_LABELS};
use crate::tables;

/// A violation of the golden-run requirement.
#[derive(Debug, Clone, PartialEq)]
pub struct GoldenViolation {
    /// The offending test case.
    pub case: TestCase,
    /// Whether a detection was (wrongly) raised.
    pub spurious_detection: bool,
    /// Whether the arrestment (wrongly) failed.
    pub failed: bool,
}

impl fmt::Display for GoldenViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "golden run violated at m = {} kg, v = {} m/s (spurious detection: {}, failure: {})",
            self.case.mass_kg, self.case.velocity_ms, self.spurious_detection, self.failed
        )
    }
}

impl std::error::Error for GoldenViolation {}

/// Runs every grid case without injections; errors on the first case
/// that detects or fails.
///
/// # Errors
///
/// The first [`GoldenViolation`] encountered, if any.
pub fn validate_fault_free(protocol: &Protocol) -> Result<(), GoldenViolation> {
    for case in protocol.grid.cases() {
        let config = RunConfig {
            observation_ms: protocol.observation_ms,
            ..RunConfig::default()
        };
        let outcome = System::new(case, config).run_to_completion();
        let spurious_detection = !outcome.detections.is_empty();
        let failed = outcome.verdict.failed();
        if spurious_detection || failed {
            return Err(GoldenViolation {
                case,
                spurious_detection,
                failed,
            });
        }
    }
    Ok(())
}

/// One golden-table cell whose current value falls outside the golden
/// tolerance.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// Which paper table the cell belongs to.
    pub table: &'static str,
    /// Human-readable cell coordinates (row, column, measure).
    pub location: String,
    /// The committed golden value, paper-formatted.
    pub golden: String,
    /// The freshly computed value, paper-formatted.
    pub current: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}, {}: golden {} vs current {}",
            self.table, self.location, self.golden, self.current
        )
    }
}

/// Errors while loading or writing golden-table artefacts.
#[derive(Debug)]
pub enum GoldenError {
    /// Filesystem failure (path included in the message).
    Io(String),
    /// A golden artefact does not parse.
    Parse(String),
}

impl fmt::Display for GoldenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GoldenError::Io(m) => write!(f, "golden artefact I/O error: {m}"),
            GoldenError::Parse(m) => write!(f, "golden artefact parse error: {m}"),
        }
    }
}

impl std::error::Error for GoldenError {}

fn compare_cell(
    divergences: &mut Vec<Divergence>,
    prob_table: &'static str,
    latency_table: &'static str,
    row: &str,
    column: &str,
    golden: &Cell,
    current: &Cell,
) {
    for (measure, pick) in [("P(d)", 0usize), ("P(d|fail)", 1), ("P(d|no fail)", 2)] {
        let (g, c) = match pick {
            0 => (&golden.all, &current.all),
            1 => (&golden.fail, &current.fail),
            _ => (&golden.no_fail, &current.no_fail),
        };
        if !g.equivalent(c, Z_95) {
            divergences.push(Divergence {
                table: prob_table,
                location: format!("{row} row, {column} column, {measure}"),
                golden: g.paper_cell(),
                current: c.paper_cell(),
            });
        }
    }
    for (measure, golden_latency, current_latency) in [
        ("latency", &golden.latency, &current.latency),
        ("latency|fail", &golden.latency_fail, &current.latency_fail),
    ] {
        if !golden_latency.consistent_with(current_latency) {
            divergences.push(Divergence {
                table: latency_table,
                location: format!("{row} row, {column} column, {measure}"),
                golden: golden_latency.paper_cell(),
                current: current_latency.paper_cell(),
            });
        }
    }
}

/// Compares an E1 report cell by cell against a golden report
/// (Tables 7 and 8). Returns every divergent cell; empty means the
/// reports are statistically equivalent.
pub fn compare_e1(golden: &E1Report, current: &E1Report) -> Vec<Divergence> {
    let mut divergences = Vec::new();
    for (k, (golden_row, current_row)) in golden.rows.iter().zip(&current.rows).enumerate() {
        for (v, (g, c)) in golden_row.cells.iter().zip(&current_row.cells).enumerate() {
            compare_cell(
                &mut divergences,
                "Table 7",
                "Table 8",
                E1Report::row_label(k),
                VERSION_LABELS[v],
                g,
                c,
            );
        }
    }
    for (v, (g, c)) in golden
        .totals
        .cells
        .iter()
        .zip(&current.totals.cells)
        .enumerate()
    {
        compare_cell(
            &mut divergences,
            "Table 7",
            "Table 8",
            "Total",
            VERSION_LABELS[v],
            g,
            c,
        );
    }
    divergences
}

/// Compares an E2 report against a golden report (Table 9).
pub fn compare_e2(golden: &E2Report, current: &E2Report) -> Vec<Divergence> {
    let mut divergences = Vec::new();
    for (area, g, c) in [
        ("RAM", &golden.ram, &current.ram),
        ("Stack", &golden.stack, &current.stack),
        ("Total", &golden.total, &current.total),
    ] {
        compare_cell(&mut divergences, "Table 9", "Table 9", area, "-", g, c);
    }
    divergences
}

fn read_golden<T: serde::Deserialize>(dir: &Path, name: &str) -> Result<T, GoldenError> {
    let path = dir.join(name);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| GoldenError::Io(format!("{}: {e}", path.display())))?;
    serde_json::from_str(&text).map_err(|e| GoldenError::Parse(format!("{name}: {e}")))
}

/// Checks fresh campaign reports against the committed goldens in
/// `golden_dir` (`e1.json` + `e2.json`, as written by [`refresh_dir`]).
/// Also re-renders Table 6 from the current error set and diffs it
/// exactly against `table6.txt` (Table 6 is protocol-determined, so it
/// admits no statistical tolerance).
///
/// # Errors
///
/// Missing or unparseable golden artefacts.
pub fn check_dir(
    golden_dir: &Path,
    e1_errors: &[E1Error],
    cases_per_error: usize,
    e1: &E1Report,
    e2: &E2Report,
) -> Result<Vec<Divergence>, GoldenError> {
    let golden_e1: E1Report = read_golden(golden_dir, "e1.json")?;
    let golden_e2: E2Report = read_golden(golden_dir, "e2.json")?;
    let mut divergences = compare_e1(&golden_e1, e1);
    divergences.extend(compare_e2(&golden_e2, e2));

    let table6_path = golden_dir.join("table6.txt");
    let golden_table6 = std::fs::read_to_string(&table6_path)
        .map_err(|e| GoldenError::Io(format!("{}: {e}", table6_path.display())))?;
    let current_table6 = tables::render_table6(e1_errors, cases_per_error);
    if golden_table6 != current_table6 {
        divergences.push(Divergence {
            table: "Table 6",
            location: "whole table".to_owned(),
            golden: format!("{} bytes", golden_table6.len()),
            current: format!("{} bytes (text differs)", current_table6.len()),
        });
    }
    Ok(divergences)
}

/// Writes the golden artefacts for the given campaign results into
/// `golden_dir`: `e1.json`, `e2.json` and the rendered `table6.txt` …
/// `table9.txt`.
///
/// # Errors
///
/// Any filesystem failure.
pub fn refresh_dir(
    golden_dir: &Path,
    e1_errors: &[E1Error],
    cases_per_error: usize,
    e1: &E1Report,
    e2: &E2Report,
) -> io::Result<()> {
    std::fs::create_dir_all(golden_dir)?;
    std::fs::write(
        golden_dir.join("e1.json"),
        serde_json::to_string_pretty(e1).expect("report serialises"),
    )?;
    std::fs::write(
        golden_dir.join("e2.json"),
        serde_json::to_string_pretty(e2).expect("report serialises"),
    )?;
    for (name, text) in [
        (
            "table6.txt",
            tables::render_table6(e1_errors, cases_per_error),
        ),
        ("table7.txt", tables::render_table7(e1)),
        ("table8.txt", tables::render_table8(e1)),
        ("table9.txt", tables::render_table9(e2)),
    ] {
        std::fs::write(golden_dir.join(name), text)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error_set;
    use crate::experiment::Trial;
    use arrestor::EaId;

    #[test]
    fn coarse_grid_is_golden() {
        // A 3 × 3 grid including all envelope corners, full window.
        let protocol = Protocol::scaled(3, 40_000);
        validate_fault_free(&protocol).expect("fault-free runs must be silent and safe");
    }

    fn synthetic_e1(detect_every: usize, latency: u64) -> E1Report {
        let mut report = E1Report::new();
        for (k, error) in error_set::e1().iter().enumerate() {
            let mut per_ea_first_ms = [None; 7];
            if k % detect_every == 0 {
                per_ea_first_ms[error.ea.index()] = Some(latency + 20);
            }
            report.record(
                error,
                &Trial {
                    failed: k % 3 == 0,
                    per_ea_first_ms,
                    first_injection_ms: 20,
                    final_distance_m: 200.0,
                },
            );
        }
        report
    }

    fn synthetic_e2(detected: bool) -> E2Report {
        let mut report = E2Report::new();
        for error in &error_set::e2() {
            let mut per_ea_first_ms = [None; 7];
            if detected {
                per_ea_first_ms[EaId::Ea1.index()] = Some(300);
            }
            report.record(
                error,
                &Trial {
                    failed: false,
                    per_ea_first_ms,
                    first_injection_ms: 20,
                    final_distance_m: 200.0,
                },
            );
        }
        report
    }

    #[test]
    fn identical_reports_are_equivalent() {
        let e1 = synthetic_e1(2, 100);
        assert!(compare_e1(&e1, &e1).is_empty());
        let e2 = synthetic_e2(true);
        assert!(compare_e2(&e2, &e2).is_empty());
    }

    fn synthetic_e2_with_rate(extra: bool) -> E2Report {
        // Detects every second error, plus (when `extra`) every fifth:
        // 100/200 vs ~120/200 — Wilson intervals overlap comfortably.
        let mut report = E2Report::new();
        for error in &error_set::e2() {
            let hit = error.number % 2 == 0 || (extra && error.number % 5 == 0);
            let mut per_ea_first_ms = [None; 7];
            if hit {
                per_ea_first_ms[EaId::Ea1.index()] = Some(300);
            }
            report.record(
                error,
                &Trial {
                    failed: false,
                    per_ea_first_ms,
                    first_injection_ms: 20,
                    final_distance_m: 200.0,
                },
            );
        }
        report
    }

    #[test]
    fn small_fluctuations_stay_within_tolerance() {
        let golden = synthetic_e2_with_rate(false);
        let rerun = synthetic_e2_with_rate(true);
        let divergences = compare_e2(&golden, &rerun);
        assert!(divergences.is_empty(), "unexpected: {divergences:?}");
    }

    #[test]
    fn disabled_detector_diverges() {
        // Golden: every second error detected. Current: nothing ever
        // detected (as if the assertions were compiled out).
        let golden = synthetic_e1(2, 100);
        let disabled = synthetic_e1(usize::MAX, 100);
        let divergences = compare_e1(&golden, &disabled);
        assert!(!divergences.is_empty());
        assert!(divergences.iter().any(|d| d.table == "Table 7"));

        let e2_golden = synthetic_e2(true);
        let e2_disabled = synthetic_e2(false);
        assert!(!compare_e2(&e2_golden, &e2_disabled).is_empty());
    }

    #[test]
    fn check_and_refresh_round_trip() {
        let dir = std::env::temp_dir().join(format!("fic-golden-test-{}", std::process::id()));
        let errors = error_set::e1();
        let e1 = synthetic_e1(2, 100);
        let e2 = synthetic_e2(true);
        refresh_dir(&dir, &errors, 25, &e1, &e2).unwrap();
        for name in [
            "e1.json",
            "e2.json",
            "table6.txt",
            "table7.txt",
            "table8.txt",
            "table9.txt",
        ] {
            assert!(dir.join(name).exists(), "{name} missing");
        }
        // Same results check clean...
        let divergences = check_dir(&dir, &errors, 25, &e1, &e2).unwrap();
        assert!(divergences.is_empty(), "unexpected: {divergences:?}");
        // ...a disabled detector does not.
        let broken = synthetic_e1(usize::MAX, 100);
        let divergences = check_dir(&dir, &errors, 25, &broken, &e2).unwrap();
        assert!(!divergences.is_empty());
        // ...and a different protocol breaks the exact Table 6 diff.
        let divergences = check_dir(&dir, &errors, 4, &e1, &e2).unwrap();
        assert!(divergences.iter().any(|d| d.table == "Table 6"));
    }

    #[test]
    fn missing_goldens_error_cleanly() {
        let dir = std::env::temp_dir().join("fic-golden-test-definitely-missing");
        let errors = error_set::e1();
        let e1 = synthetic_e1(2, 100);
        let e2 = synthetic_e2(true);
        assert!(matches!(
            check_dir(&dir, &errors, 25, &e1, &e2),
            Err(GoldenError::Io(_))
        ));
    }
}
