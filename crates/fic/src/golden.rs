//! Golden-run validation: the paper requires that every test case,
//! executed without injections, triggers **no** detection and **no**
//! failure ("All test cases are such that if they are run on the target
//! system without error injection, none of the error detection
//! mechanisms report detection", Section 3.4).

use std::fmt;

use arrestor::{RunConfig, System};
use simenv::TestCase;

use crate::protocol::Protocol;

/// A violation of the golden-run requirement.
#[derive(Debug, Clone, PartialEq)]
pub struct GoldenViolation {
    /// The offending test case.
    pub case: TestCase,
    /// Whether a detection was (wrongly) raised.
    pub spurious_detection: bool,
    /// Whether the arrestment (wrongly) failed.
    pub failed: bool,
}

impl fmt::Display for GoldenViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "golden run violated at m = {} kg, v = {} m/s (spurious detection: {}, failure: {})",
            self.case.mass_kg, self.case.velocity_ms, self.spurious_detection, self.failed
        )
    }
}

impl std::error::Error for GoldenViolation {}

/// Runs every grid case without injections; errors on the first case
/// that detects or fails.
///
/// # Errors
///
/// The first [`GoldenViolation`] encountered, if any.
pub fn validate_fault_free(protocol: &Protocol) -> Result<(), GoldenViolation> {
    for case in protocol.grid.cases() {
        let config = RunConfig {
            observation_ms: protocol.observation_ms,
            ..RunConfig::default()
        };
        let outcome = System::new(case, config).run_to_completion();
        let spurious_detection = !outcome.detections.is_empty();
        let failed = outcome.verdict.failed();
        if spurious_detection || failed {
            return Err(GoldenViolation {
                case,
                spurious_detection,
                failed,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coarse_grid_is_golden() {
        // A 3 × 3 grid including all envelope corners, full window.
        let protocol = Protocol::scaled(3, 40_000);
        validate_fault_free(&protocol).expect("fault-free runs must be silent and safe");
    }
}
