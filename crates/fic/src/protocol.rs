//! Experimental protocol constants (paper Section 3.4).

use serde::{Deserialize, Serialize};
use simenv::TestCaseGrid;

/// The campaign protocol: injection timing, observation window and
/// test-case envelope.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Protocol {
    /// Time between repeated injections of the same error, ms.
    pub injection_period_ms: u64,
    /// Observation window of one run, ms.
    pub observation_ms: u64,
    /// The mass/velocity grid of test cases run per error.
    pub grid: TestCaseGrid,
    /// Worker threads for campaign fan-out (0 = all available cores).
    pub workers: usize,
}

impl Protocol {
    /// The paper's protocol: 20 ms injection period, 40 s window, 25
    /// test cases per error.
    pub fn paper() -> Self {
        Protocol {
            injection_period_ms: simenv::spec::INJECTION_PERIOD_MS,
            observation_ms: simenv::spec::OBSERVATION_MS,
            grid: TestCaseGrid::paper(),
            workers: 0,
        }
    }

    /// A scaled-down protocol for tests and smoke runs: `n × n` test
    /// cases and a shorter window.
    pub fn scaled(n: usize, observation_ms: u64) -> Self {
        Protocol {
            injection_period_ms: simenv::spec::INJECTION_PERIOD_MS,
            observation_ms,
            grid: TestCaseGrid::coarse(n),
            workers: 0,
        }
    }

    /// Runs per error under this protocol.
    pub fn cases_per_error(&self) -> usize {
        self.grid.len()
    }

    /// Whether trials recorded under `other` can be reused for this
    /// protocol (checkpoint/resume): same injection timing, same
    /// window, same test-case grid. Worker count is execution detail —
    /// a campaign may resume on a machine with different parallelism.
    pub fn compatible_with(&self, other: &Protocol) -> bool {
        self.injection_period_ms == other.injection_period_ms
            && self.observation_ms == other.observation_ms
            && self.grid == other.grid
    }

    /// Resolved worker count.
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        }
    }
}

impl Default for Protocol {
    fn default() -> Self {
        Protocol::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_protocol_matches_section_3_4() {
        let p = Protocol::paper();
        assert_eq!(p.injection_period_ms, 20);
        assert_eq!(p.observation_ms, 40_000);
        assert_eq!(p.cases_per_error(), 25);
    }

    #[test]
    fn scaled_protocol_shrinks() {
        let p = Protocol::scaled(2, 1_000);
        assert_eq!(p.cases_per_error(), 4);
        assert_eq!(p.observation_ms, 1_000);
    }

    #[test]
    fn compatibility_ignores_workers_only() {
        let mut a = Protocol::scaled(2, 5_000);
        let mut b = Protocol::scaled(2, 5_000);
        a.workers = 1;
        b.workers = 8;
        assert!(a.compatible_with(&b));
        b.observation_ms = 6_000;
        assert!(!a.compatible_with(&b));
        assert!(!Protocol::scaled(2, 5_000).compatible_with(&Protocol::scaled(3, 5_000)));
    }

    #[test]
    fn effective_workers_positive() {
        assert!(Protocol::paper().effective_workers() >= 1);
        let mut p = Protocol::paper();
        p.workers = 3;
        assert_eq!(p.effective_workers(), 3);
    }
}
