//! Crash-safe trial journal: checkpoint/resume for long campaigns.
//!
//! The paper's full protocol is 2 800 E1 runs plus 5 000 E2 runs of
//! 40 s each — long enough that a campaign host can die mid-flight. The
//! journal streams one JSON line per *completed* ⟨error, test case⟩
//! trial so an interrupted campaign can be resumed without re-running
//! finished work:
//!
//! * line 1 is a [`JournalHeader`] recording the format version and the
//!   [`Protocol`] the trials were run under;
//! * every other line is either a [`TrialRecord`] keyed by
//!   ⟨campaign, error number, case index⟩ — deterministic identifiers
//!   that do not depend on worker count or completion order — or an
//!   attribution line (`{"attribution": …}`) carrying one
//!   [`AttributionEvent`] under the same key space. The two line types
//!   are structurally disjoint, so no tagging byte is needed and
//!   journals without attribution parse exactly as before.
//!
//! Writes are batched and `fsync`'d every [`JournalWriter::batch_size`]
//! records, so a crash loses at most one unsynced batch; the trailing
//! partially-written line that a crash can leave behind is tolerated by
//! [`Journal::load`] (any *earlier* corruption is a hard error, since
//! it cannot be explained by a crash on an append-only file).
//!
//! Because every report in [`crate::results`] is a commutative
//! accumulator (counts, sums, running min/max), replaying journal
//! records in file order and then running only the missing pairs
//! produces a report identical to the uninterrupted campaign.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::attribution::AttributionEvent;
use crate::error_set;
use crate::experiment::Trial;
use crate::protocol::Protocol;
use crate::results::{E1Report, E2Report};
use crate::telemetry;

/// Journal format version written into every header.
pub const FORMAT_VERSION: u32 = 1;

/// Default number of records appended between `fsync`s.
pub const DEFAULT_BATCH_SIZE: usize = 16;

/// Flush latency above which a sync counts as a stall (µs): a batched
/// `fsync` on a healthy local disk finishes in well under 50 ms, so a
/// flush that takes longer means the campaign disk is backing up.
pub const DEFAULT_STALL_THRESHOLD_US: u64 = 250_000;

/// Which campaign a trial belongs to (E1 and E2 number their errors
/// independently, both from 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CampaignKind {
    /// Error set E1: signal-bit errors (Tables 7 and 8).
    E1,
    /// Error set E2: random RAM/stack flips (Table 9).
    E2,
}

impl CampaignKind {
    /// Lowercase phase label used in telemetry metric names and
    /// progress events (`e1`, `e2`).
    pub const fn label(self) -> &'static str {
        match self {
            CampaignKind::E1 => "e1",
            CampaignKind::E2 => "e2",
        }
    }
}

/// Which deterministic slice of the trial grid a sharded campaign ran
/// (`--shard k/n`): shard `index` of `count`, 1-based.
///
/// Recorded in the journal header so shard journals are
/// self-describing and [`merge`] can verify it is combining distinct
/// slices of the same grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardSpec {
    /// 1-based shard index (`k` in `k/n`).
    pub index: usize,
    /// Total shard count (`n` in `k/n`).
    pub count: usize,
}

impl fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// First line of every journal file.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JournalHeader {
    /// Format version ([`FORMAT_VERSION`]).
    pub format_version: u32,
    /// The protocol every journaled trial was run under.
    pub protocol: Protocol,
    /// The grid slice this journal covers; `None` for an unsharded
    /// campaign (and for journals written before sharding existed —
    /// the field deserialises to `None` when absent).
    pub shard: Option<ShardSpec>,
}

/// One completed trial: the deterministic key plus the full outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrialRecord {
    /// The campaign this trial belongs to.
    pub campaign: CampaignKind,
    /// The paper's error number (1-based, stable across runs).
    pub error_number: usize,
    /// Index into [`Protocol::grid`]'s case list (row-major, stable).
    pub case_index: usize,
    /// The trial outcome.
    pub trial: Trial,
}

/// An attribution line: one enrichable detection-story event. Wrapped
/// in a single-key object so the line type is self-describing and can
/// never be confused with a [`TrialRecord`].
#[derive(Debug, Clone, Serialize, Deserialize)]
struct AttributionLine {
    attribution: AttributionEvent,
}

/// Errors raised while reading or validating a journal.
#[derive(Debug)]
pub enum JournalError {
    /// Filesystem failure.
    Io(io::Error),
    /// The header line is missing or does not parse.
    Header(String),
    /// A record line *before* the final one does not parse — the file
    /// was damaged in a way appending cannot explain.
    Corrupt {
        /// 1-based line number of the offending line.
        line: usize,
        /// Parser diagnostics.
        message: String,
    },
    /// The journal does not match the campaign being resumed
    /// (different protocol, unknown error numbers, out-of-range cases).
    Mismatch(String),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::Header(m) => write!(f, "bad journal header: {m}"),
            JournalError::Corrupt { line, message } => {
                write!(f, "corrupt journal record at line {line}: {message}")
            }
            JournalError::Mismatch(m) => write!(f, "journal mismatch: {m}"),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// Telemetry handles for one [`JournalWriter`]: flush latency, batch
/// sizes and bytes written. Built from a
/// [`telemetry::Registry`]; absent handles cost nothing (the same
/// zero-cost contract as the rest of the telemetry layer).
#[derive(Debug)]
pub struct JournalTelemetry {
    flush_latency_us: std::sync::Arc<telemetry::Histogram>,
    batch_records: std::sync::Arc<telemetry::Histogram>,
    bytes_written: std::sync::Arc<telemetry::Counter>,
    appends: std::sync::Arc<telemetry::Counter>,
    flush_stalls: std::sync::Arc<telemetry::Counter>,
}

impl JournalTelemetry {
    /// Registers the journal metric family in `registry`.
    pub fn register(registry: &telemetry::Registry) -> Self {
        JournalTelemetry {
            flush_latency_us: registry
                .histogram("journal.flush_latency_us", &telemetry::span_bounds_us()),
            batch_records: registry
                .histogram("journal.batch_records", &telemetry::small_count_bounds()),
            bytes_written: registry.counter("journal.bytes_written"),
            appends: registry.counter("journal.appends"),
            flush_stalls: registry.counter("journal.flush_stalls"),
        }
    }
}

/// Streams completed trials to an append-only JSONL file with batched
/// `fsync`.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
    buffer: String,
    unsynced: usize,
    batch_size: usize,
    telemetry: Option<JournalTelemetry>,
    stall_threshold_us: u64,
    stalls_warned: u64,
}

impl JournalWriter {
    /// Creates (truncating) a journal for a fresh campaign and writes
    /// the header, synced, before returning.
    ///
    /// # Errors
    ///
    /// Any filesystem failure.
    pub fn create(path: &Path, protocol: &Protocol) -> io::Result<Self> {
        Self::create_sharded(path, protocol, None)
    }

    /// [`JournalWriter::create`] for a sharded campaign: the header
    /// records which grid slice this journal covers.
    ///
    /// # Errors
    ///
    /// Any filesystem failure.
    pub fn create_sharded(
        path: &Path,
        protocol: &Protocol,
        shard: Option<ShardSpec>,
    ) -> io::Result<Self> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let mut writer = JournalWriter {
            file,
            buffer: String::new(),
            unsynced: 0,
            batch_size: DEFAULT_BATCH_SIZE,
            telemetry: None,
            stall_threshold_us: DEFAULT_STALL_THRESHOLD_US,
            stalls_warned: 0,
        };
        let header = JournalHeader {
            format_version: FORMAT_VERSION,
            protocol: protocol.clone(),
            shard,
        };
        let line = serde_json::to_string(&header).expect("header serialises");
        writer.buffer.push_str(&line);
        writer.buffer.push('\n');
        writer.sync()?;
        Ok(writer)
    }

    /// Opens an existing journal for appending (resume); creates a
    /// fresh one if `path` does not exist or is empty. A torn final
    /// line left by a crash is truncated away so new records start on
    /// a fresh line. Header validity is the reader's concern —
    /// [`Journal::load`] before resuming.
    ///
    /// # Errors
    ///
    /// Any filesystem failure.
    pub fn append_to(path: &Path, protocol: &Protocol) -> io::Result<Self> {
        Self::append_to_sharded(path, protocol, None)
    }

    /// [`JournalWriter::append_to`] for a sharded campaign (the shard
    /// is only written when the file is created fresh; an existing
    /// header is left untouched).
    ///
    /// # Errors
    ///
    /// Any filesystem failure.
    pub fn append_to_sharded(
        path: &Path,
        protocol: &Protocol,
        shard: Option<ShardSpec>,
    ) -> io::Result<Self> {
        let exists = std::fs::metadata(path)
            .map(|m| m.len() > 0)
            .unwrap_or(false);
        if !exists {
            return Self::create_sharded(path, protocol, shard);
        }
        let content = std::fs::read(path)?;
        if let Some(pos) = content.iter().rposition(|&b| b == b'\n') {
            if pos + 1 < content.len() {
                let f = OpenOptions::new().write(true).open(path)?;
                f.set_len((pos + 1) as u64)?;
                f.sync_data()?;
            }
        }
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(JournalWriter {
            file,
            buffer: String::new(),
            unsynced: 0,
            batch_size: DEFAULT_BATCH_SIZE,
            telemetry: None,
            stall_threshold_us: DEFAULT_STALL_THRESHOLD_US,
            stalls_warned: 0,
        })
    }

    /// Sets the records-per-`fsync` batch size (min 1).
    pub fn batch_size(mut self, records: usize) -> Self {
        self.batch_size = records.max(1);
        self
    }

    /// Attaches telemetry handles (flush latency, batch sizes, bytes).
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: JournalTelemetry) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Sets the flush-latency threshold (µs) above which a sync counts
    /// as a stall: `journal.flush_stalls` is bumped and the first few
    /// stalls warn on stderr so a backing-up campaign disk is visible
    /// instead of silent. Only observed when telemetry is attached.
    #[must_use]
    pub fn stall_threshold_us(mut self, threshold_us: u64) -> Self {
        self.stall_threshold_us = threshold_us;
        self
    }

    /// Total syncs that exceeded the stall threshold so far.
    pub fn flush_stalls(&self) -> u64 {
        self.telemetry.as_ref().map_or(0, |t| t.flush_stalls.get())
    }

    /// Appends one attribution event; flushes and syncs when the batch
    /// fills. Events share the trial batch, so a crash loses trials and
    /// their attribution together.
    ///
    /// # Errors
    ///
    /// Any filesystem failure while flushing a full batch.
    pub fn append_attribution(&mut self, event: &AttributionEvent) -> io::Result<()> {
        let line = serde_json::to_string(&AttributionLine {
            attribution: event.clone(),
        })
        .expect("attribution event serialises");
        self.buffer.push_str(&line);
        self.buffer.push('\n');
        self.unsynced += 1;
        if let Some(t) = &self.telemetry {
            t.appends.inc();
        }
        if self.unsynced >= self.batch_size {
            self.sync()?;
        }
        Ok(())
    }

    /// Appends one completed trial; flushes and syncs when the batch
    /// fills.
    ///
    /// # Errors
    ///
    /// Any filesystem failure while flushing a full batch.
    pub fn append(
        &mut self,
        campaign: CampaignKind,
        error_number: usize,
        case_index: usize,
        trial: &Trial,
    ) -> io::Result<()> {
        let record = TrialRecord {
            campaign,
            error_number,
            case_index,
            trial: trial.clone(),
        };
        let line = serde_json::to_string(&record).expect("record serialises");
        self.buffer.push_str(&line);
        self.buffer.push('\n');
        self.unsynced += 1;
        if let Some(t) = &self.telemetry {
            t.appends.inc();
        }
        if self.unsynced >= self.batch_size {
            self.sync()?;
        }
        Ok(())
    }

    /// Flushes buffered records to disk and `fsync`s.
    ///
    /// # Errors
    ///
    /// Any filesystem failure.
    pub fn sync(&mut self) -> io::Result<()> {
        let start = self.telemetry.as_ref().map(|t| {
            t.batch_records.record(self.unsynced as u64);
            t.bytes_written.add(self.buffer.len() as u64);
            std::time::Instant::now()
        });
        if !self.buffer.is_empty() {
            self.file.write_all(self.buffer.as_bytes())?;
            self.buffer.clear();
        }
        self.file.sync_data()?;
        self.unsynced = 0;
        if let (Some(start), Some(t)) = (start, self.telemetry.as_ref()) {
            let elapsed_us = start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
            t.flush_latency_us.record(elapsed_us);
            if elapsed_us > self.stall_threshold_us {
                t.flush_stalls.inc();
                // Warn loudly the first few times, then stay quiet —
                // the counter keeps the full tally for telemetry.
                if self.stalls_warned < 3 {
                    self.stalls_warned += 1;
                    eprintln!(
                        "warning: journal flush stalled for {elapsed_us} µs \
                         (threshold {} µs) — campaign disk may be backing up \
                         (stall #{} this writer)",
                        self.stall_threshold_us,
                        t.flush_stalls.get(),
                    );
                }
            }
        }
        Ok(())
    }

    /// Consumes the writer, flushing and syncing the final partial
    /// batch. Prefer this over relying on `Drop` at the end of a
    /// campaign: `Drop` performs the same flush but must swallow any
    /// I/O error, whereas `finish` surfaces it.
    ///
    /// # Errors
    ///
    /// Any filesystem failure while flushing the last batch.
    pub fn finish(mut self) -> io::Result<()> {
        self.sync()
    }
}

impl Drop for JournalWriter {
    fn drop(&mut self) {
        // Best-effort final flush; errors here have nowhere to go —
        // callers that care use `finish` instead.
        let _ = self.sync();
    }
}

/// A parsed journal: header plus every intact record in file order.
#[derive(Debug, Clone)]
pub struct Journal {
    /// The campaign configuration the trials were run under.
    pub header: JournalHeader,
    /// Every intact record, in append order (duplicates possible after
    /// unusual crash/retry interleavings — replay helpers deduplicate).
    pub records: Vec<TrialRecord>,
    /// Every intact attribution event, in append order (same
    /// duplicate caveat; consumers deduplicate first-wins by key).
    pub attribution: Vec<AttributionEvent>,
    /// Whether a partial trailing line was dropped (crash evidence).
    pub truncated_tail: bool,
}

impl Journal {
    /// Loads and parses a journal file. A partial final line (the
    /// expected signature of a crash mid-append) is dropped and flagged
    /// in [`Journal::truncated_tail`]; unparseable content anywhere
    /// else is a [`JournalError::Corrupt`].
    ///
    /// # Errors
    ///
    /// I/O failures, a bad header, or mid-file corruption.
    pub fn load(path: &Path) -> Result<Journal, JournalError> {
        let content = std::fs::read_to_string(path)?;
        let mut lines = content
            .lines()
            .enumerate()
            .filter(|(_, l)| !l.trim().is_empty())
            .peekable();
        let Some((_, header_line)) = lines.next() else {
            return Err(JournalError::Header("empty journal file".to_owned()));
        };
        let header: JournalHeader =
            serde_json::from_str(header_line).map_err(|e| JournalError::Header(e.to_string()))?;
        if header.format_version != FORMAT_VERSION {
            return Err(JournalError::Header(format!(
                "unsupported format version {} (this build reads {})",
                header.format_version, FORMAT_VERSION
            )));
        }
        let mut records = Vec::new();
        let mut attribution = Vec::new();
        let mut truncated_tail = false;
        while let Some((index, line)) = lines.next() {
            match serde_json::from_str::<TrialRecord>(line) {
                Ok(record) => records.push(record),
                // Not a trial record — the only other record type is an
                // attribution line (they are structurally disjoint).
                Err(_) if serde_json::from_str::<AttributionLine>(line).is_ok() => {
                    let parsed: AttributionLine =
                        serde_json::from_str(line).expect("parsed a line ago");
                    attribution.push(parsed.attribution);
                }
                Err(e) if lines.peek().is_none() => {
                    // Torn final line: the crash signature. Drop it;
                    // the trial will simply be re-run.
                    let _ = e;
                    truncated_tail = true;
                }
                Err(e) => {
                    return Err(JournalError::Corrupt {
                        line: index + 1,
                        message: e.to_string(),
                    });
                }
            }
        }
        Ok(Journal {
            header,
            records,
            attribution,
            truncated_tail,
        })
    }

    /// Rebuilds both campaign reports from this journal using the
    /// paper's error sets ([`error_set::e1`] / [`error_set::e2`]).
    /// Duplicate keys are counted once (first occurrence wins; trials
    /// are deterministic per key, so duplicates are identical anyway).
    ///
    /// # Errors
    ///
    /// [`JournalError::Mismatch`] when a record names an unknown error
    /// number or an out-of-range case index.
    pub fn replay(&self) -> Result<(E1Report, E2Report), JournalError> {
        let e1_errors = error_set::e1();
        let e2_errors = error_set::e2();
        let cases = self.header.protocol.cases_per_error();
        let mut e1_report = E1Report::new();
        let mut e2_report = E2Report::new();
        let mut seen = std::collections::HashSet::new();
        for record in &self.records {
            if record.case_index >= cases {
                return Err(JournalError::Mismatch(format!(
                    "case index {} out of range (protocol has {} cases/error)",
                    record.case_index, cases
                )));
            }
            if !seen.insert((record.campaign, record.error_number, record.case_index)) {
                continue;
            }
            match record.campaign {
                CampaignKind::E1 => {
                    let error = e1_errors
                        .iter()
                        .find(|e| e.number == record.error_number)
                        .ok_or_else(|| {
                            JournalError::Mismatch(format!(
                                "unknown E1 error number S{}",
                                record.error_number
                            ))
                        })?;
                    e1_report.record(error, &record.trial);
                }
                CampaignKind::E2 => {
                    let error = e2_errors
                        .iter()
                        .find(|e| e.number == record.error_number)
                        .ok_or_else(|| {
                            JournalError::Mismatch(format!(
                                "unknown E2 error number {}",
                                record.error_number
                            ))
                        })?;
                    e2_report.record(error, &record.trial);
                }
            }
        }
        Ok((e1_report, e2_report))
    }

    /// Writes this journal (header plus records) to `path` as a fresh
    /// file — the inverse of [`Journal::load`].
    ///
    /// # Errors
    ///
    /// Any filesystem failure.
    pub fn write_to(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut out = String::new();
        out.push_str(&serde_json::to_string(&self.header).expect("header serialises"));
        out.push('\n');
        for record in &self.records {
            out.push_str(&serde_json::to_string(record).expect("record serialises"));
            out.push('\n');
        }
        for event in &self.attribution {
            let line = AttributionLine {
                attribution: event.clone(),
            };
            out.push_str(&serde_json::to_string(&line).expect("attribution serialises"));
            out.push('\n');
        }
        std::fs::write(path, out)
    }
}

/// Merges shard journals (`--shard k/n` runs) into one journal
/// covering the union of their trials — the second half of the
/// ROADMAP "campaign sharding" item: fan the grid out across jobs,
/// then combine the journals and rebuild the tables with
/// `--from-journal`.
///
/// Requirements checked:
///
/// * every journal's protocol is compatible with the first's
///   (injection timing, window, grid);
/// * no two journals claim the same shard of the same count (distinct
///   slices — merging a shard with itself is almost certainly a
///   pipeline mistake; duplicate ⟨campaign, error, case⟩ keys are
///   still deduplicated first-wins, so re-merging a merged journal
///   stays idempotent).
///
/// The merged header carries `shard: None` (it covers the whole
/// recorded slice union).
///
/// # Errors
///
/// Load failures of any input, or a protocol/shard mismatch.
pub fn merge(paths: &[std::path::PathBuf]) -> Result<Journal, JournalError> {
    let Some((first_path, rest)) = paths.split_first() else {
        return Err(JournalError::Mismatch(
            "merge needs at least one journal".to_owned(),
        ));
    };
    let first = Journal::load(first_path)?;
    let mut seen_shards: Vec<ShardSpec> = first.header.shard.into_iter().collect();
    let mut truncated_tail = first.truncated_tail;
    let mut records = first.records;
    let mut keys: std::collections::HashSet<(CampaignKind, usize, usize)> = records
        .iter()
        .map(|r| (r.campaign, r.error_number, r.case_index))
        .collect();
    records.retain({
        // Dedup the first journal itself (first occurrence wins), with
        // the same key set the later journals are checked against.
        let mut kept = std::collections::HashSet::new();
        move |r| kept.insert((r.campaign, r.error_number, r.case_index))
    });
    let mut attribution = first.attribution;
    let mut attribution_keys: std::collections::HashSet<(CampaignKind, usize, usize)> =
        attribution.iter().map(AttributionEvent::key).collect();
    attribution.retain({
        let mut kept = std::collections::HashSet::new();
        move |e| kept.insert(e.key())
    });
    for path in rest {
        let journal = Journal::load(path)?;
        if !journal
            .header
            .protocol
            .compatible_with(&first.header.protocol)
        {
            return Err(JournalError::Mismatch(format!(
                "{} was recorded under a different protocol",
                path.display()
            )));
        }
        if let Some(shard) = journal.header.shard {
            if seen_shards.contains(&shard) {
                return Err(JournalError::Mismatch(format!(
                    "{} duplicates shard {shard}",
                    path.display()
                )));
            }
            seen_shards.push(shard);
        }
        truncated_tail |= journal.truncated_tail;
        for record in journal.records {
            if keys.insert((record.campaign, record.error_number, record.case_index)) {
                records.push(record);
            }
        }
        for event in journal.attribution {
            if attribution_keys.insert(event.key()) {
                attribution.push(event);
            }
        }
    }
    Ok(Journal {
        header: JournalHeader {
            format_version: FORMAT_VERSION,
            protocol: first.header.protocol,
            shard: None,
        },
        records,
        attribution,
        truncated_tail,
    })
}

// HashSet key needs Hash; CampaignKind is a two-variant field-less enum.
impl std::hash::Hash for CampaignKind {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u8(match self {
            CampaignKind::E1 => 0,
            CampaignKind::E2 => 1,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_path(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fic-journal-test-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("journal.jsonl")
    }

    fn sample_trial(detected_at: Option<u64>) -> Trial {
        let mut per_ea_first_ms = [None; 7];
        if let Some(at) = detected_at {
            per_ea_first_ms[5] = Some(at);
        }
        Trial {
            failed: detected_at.is_none(),
            per_ea_first_ms,
            first_injection_ms: 20,
            final_distance_m: 187.5,
        }
    }

    #[test]
    fn round_trips_header_and_records() {
        let path = temp_path("roundtrip");
        let protocol = Protocol::scaled(2, 1_000);
        let mut writer = JournalWriter::create(&path, &protocol).unwrap();
        writer
            .append(CampaignKind::E1, 7, 3, &sample_trial(Some(140)))
            .unwrap();
        writer
            .append(CampaignKind::E2, 7, 0, &sample_trial(None))
            .unwrap();
        writer.sync().unwrap();
        drop(writer);

        let journal = Journal::load(&path).unwrap();
        assert_eq!(journal.header.format_version, FORMAT_VERSION);
        assert_eq!(journal.header.protocol.cases_per_error(), 4);
        assert_eq!(journal.records.len(), 2);
        assert!(!journal.truncated_tail);
        assert_eq!(journal.records[0].campaign, CampaignKind::E1);
        assert_eq!(journal.records[0].error_number, 7);
        assert_eq!(journal.records[0].case_index, 3);
        assert_eq!(journal.records[0].trial, sample_trial(Some(140)));
        assert_eq!(journal.records[1].campaign, CampaignKind::E2);
    }

    #[test]
    fn batched_records_survive_without_explicit_sync() {
        let path = temp_path("batch");
        let protocol = Protocol::scaled(1, 1_000);
        let mut writer = JournalWriter::create(&path, &protocol)
            .unwrap()
            .batch_size(2);
        for k in 0..5 {
            writer
                .append(CampaignKind::E1, k + 1, 0, &sample_trial(None))
                .unwrap();
        }
        // Two full batches (4 records) must already be on disk.
        let on_disk = Journal::load(&path).unwrap();
        assert!(
            on_disk.records.len() >= 4,
            "len = {}",
            on_disk.records.len()
        );
        drop(writer); // Drop flushes the odd record out.
        assert_eq!(Journal::load(&path).unwrap().records.len(), 5);
    }

    #[test]
    fn finish_flushes_the_partial_batch() {
        let path = temp_path("finish");
        let protocol = Protocol::scaled(1, 1_000);
        let mut writer = JournalWriter::create(&path, &protocol)
            .unwrap()
            .batch_size(100);
        for k in 0..3 {
            writer
                .append(CampaignKind::E1, k + 1, 0, &sample_trial(None))
                .unwrap();
        }
        // The batch never filled, so nothing past the header is on disk
        // yet...
        assert_eq!(Journal::load(&path).unwrap().records.len(), 0);
        // ...until finish() flushes the partial batch — and, unlike
        // Drop, reports whether that flush made it to disk.
        writer.finish().unwrap();
        assert_eq!(Journal::load(&path).unwrap().records.len(), 3);
    }

    #[test]
    fn tolerates_torn_final_line() {
        let path = temp_path("torn");
        let protocol = Protocol::scaled(1, 1_000);
        let mut writer = JournalWriter::create(&path, &protocol).unwrap();
        writer
            .append(CampaignKind::E1, 1, 0, &sample_trial(Some(60)))
            .unwrap();
        writer.sync().unwrap();
        drop(writer);
        // Simulate a crash mid-append: half a record, no newline.
        let mut content = std::fs::read_to_string(&path).unwrap();
        content.push_str("{\"campaign\":\"E1\",\"error_number\":2,\"case_in");
        std::fs::write(&path, content).unwrap();

        let journal = Journal::load(&path).unwrap();
        assert_eq!(journal.records.len(), 1);
        assert!(journal.truncated_tail);
    }

    #[test]
    fn rejects_mid_file_corruption() {
        let path = temp_path("midfile");
        let protocol = Protocol::scaled(1, 1_000);
        let mut writer = JournalWriter::create(&path, &protocol).unwrap();
        for k in 0..3 {
            writer
                .append(CampaignKind::E1, k + 1, 0, &sample_trial(None))
                .unwrap();
        }
        writer.sync().unwrap();
        drop(writer);
        let content = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<&str> = content.lines().collect();
        lines[2] = "{\"garbage\": tru"; // corrupt a *middle* record
        std::fs::write(&path, lines.join("\n")).unwrap();

        match Journal::load(&path) {
            Err(JournalError::Corrupt { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn rejects_missing_or_bad_header() {
        let path = temp_path("badheader");
        std::fs::write(&path, "").unwrap();
        assert!(matches!(Journal::load(&path), Err(JournalError::Header(_))));
        std::fs::write(&path, "not json\n").unwrap();
        assert!(matches!(Journal::load(&path), Err(JournalError::Header(_))));
    }

    #[test]
    fn replay_deduplicates_and_routes_campaigns() {
        let path = temp_path("replay");
        let protocol = Protocol::scaled(2, 1_000);
        let mut writer = JournalWriter::create(&path, &protocol).unwrap();
        let trial = sample_trial(Some(90));
        writer.append(CampaignKind::E1, 1, 0, &trial).unwrap();
        writer.append(CampaignKind::E1, 1, 0, &trial).unwrap(); // dupe
        writer.append(CampaignKind::E2, 1, 2, &trial).unwrap();
        writer.sync().unwrap();
        drop(writer);

        let journal = Journal::load(&path).unwrap();
        let (e1, e2) = journal.replay().unwrap();
        assert_eq!(e1.trials(), 1);
        assert_eq!(e2.trials(), 1);
    }

    #[test]
    fn flush_stall_watchdog_counts_slow_syncs() {
        let path = temp_path("stalls");
        let protocol = Protocol::scaled(1, 1_000);
        let registry = telemetry::Registry::new();
        // Threshold 0 µs: every timed sync is a "stall", so the
        // watchdog path runs without needing a genuinely slow disk.
        let mut writer = JournalWriter::create(&path, &protocol)
            .unwrap()
            .with_telemetry(JournalTelemetry::register(&registry))
            .stall_threshold_us(0);
        writer
            .append(CampaignKind::E1, 1, 0, &sample_trial(None))
            .unwrap();
        writer.sync().unwrap();
        assert!(writer.flush_stalls() >= 1);
        let snapshot = registry.snapshot();
        assert_eq!(
            snapshot.counters.get("journal.flush_stalls").copied(),
            Some(writer.flush_stalls())
        );

        // A sane threshold on a healthy disk records no stalls.
        let calm_registry = telemetry::Registry::new();
        let mut calm = JournalWriter::create(&temp_path("calm"), &protocol)
            .unwrap()
            .with_telemetry(JournalTelemetry::register(&calm_registry))
            .stall_threshold_us(u64::MAX);
        calm.append(CampaignKind::E1, 1, 0, &sample_trial(None))
            .unwrap();
        calm.sync().unwrap();
        assert_eq!(calm.flush_stalls(), 0);
    }

    #[test]
    fn replay_rejects_unknown_keys() {
        let path = temp_path("badkeys");
        let protocol = Protocol::scaled(2, 1_000);
        let mut writer = JournalWriter::create(&path, &protocol).unwrap();
        writer
            .append(CampaignKind::E1, 9_999, 0, &sample_trial(None))
            .unwrap();
        writer.sync().unwrap();
        drop(writer);
        assert!(matches!(
            Journal::load(&path).unwrap().replay(),
            Err(JournalError::Mismatch(_))
        ));
    }
}
