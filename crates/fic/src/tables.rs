//! Text renderers reproducing the layout of the paper's Tables 6–9.

use ea_core::stats::LatencyStats;

use crate::error_set::E1Error;
use crate::results::{Cell, E1Report, E2Report, VERSION_LABELS};

fn pad(text: &str, width: usize) -> String {
    format!("{text:>width$}")
}

/// Table 6: the distribution of errors in error set E1.
pub fn render_table6(errors: &[E1Error], cases_per_error: usize) -> String {
    let mut out = String::new();
    out.push_str("Table 6. The distribution of errors in the error set E1.\n");
    out.push_str(&format!(
        "{:<14}{:<12}{:>10}{:>16}{:>14}\n",
        "Signal", "Exec. ass.", "# errors", "Error numbers", "# injections"
    ));
    let mut total_errors = 0;
    let mut total_injections = 0;
    for chunk in errors.chunks(16) {
        let Some(first) = chunk.first() else { continue };
        let last = chunk.last().expect("non-empty chunk");
        let injections = chunk.len() * cases_per_error;
        out.push_str(&format!(
            "{:<14}{:<12}{:>10}{:>16}{:>14}\n",
            first.signal_name(),
            first.ea.to_string(),
            chunk.len(),
            format!("S{}-S{}", first.number, last.number),
            injections,
        ));
        total_errors += chunk.len();
        total_injections += injections;
    }
    out.push_str(&format!(
        "{:<14}{:<12}{:>10}{:>16}{:>14}\n",
        "Total", "-", total_errors, "-", total_injections
    ));
    out
}

/// Table 7: error detection probabilities (%) with 95 % confidence
/// intervals, per signal and per version.
pub fn render_table7(report: &E1Report) -> String {
    let mut out = String::new();
    out.push_str("Table 7. Error detection probabilities (%) with confidence intervals at 95%.\n");
    out.push_str(&header());
    for (k, row) in report.rows.iter().enumerate() {
        out.push_str(&probability_rows(E1Report::row_label(k), &row.cells));
    }
    out.push_str(&probability_rows("Total", &report.totals.cells));
    out
}

fn header() -> String {
    let mut line = format!("{:<13}{:<13}", "Signal", "Measure");
    for label in VERSION_LABELS {
        line.push_str(&pad(label, 12));
    }
    line.push('\n');
    line
}

fn probability_rows(label: &str, cells: &[Cell; 8]) -> String {
    let mut out = String::new();
    for (measure, pick) in [("P(d)", 0usize), ("P(d|fail)", 1), ("P(d|no fail)", 2)] {
        out.push_str(&format!(
            "{:<13}{:<13}",
            if pick == 0 { label } else { "" },
            measure
        ));
        for cell in cells {
            let proportion = match pick {
                0 => &cell.all,
                1 => &cell.fail,
                _ => &cell.no_fail,
            };
            out.push_str(&pad(&proportion.paper_cell(), 12));
        }
        out.push('\n');
    }
    out
}

/// Table 8: detection latencies for all detected errors (ms).
pub fn render_table8(report: &E1Report) -> String {
    let mut out = String::new();
    out.push_str("Table 8. Error detection latencies for all errors (milliseconds).\n");
    out.push_str(&header());
    for (k, row) in report.rows.iter().enumerate() {
        out.push_str(&latency_rows(E1Report::row_label(k), &row.cells));
    }
    out.push_str(&latency_rows("Total", &report.totals.cells));
    out
}

fn latency_rows(label: &str, cells: &[Cell; 8]) -> String {
    let mut out = String::new();
    for (measure, pick) in [("Min", 0usize), ("Average", 1), ("Max", 2)] {
        out.push_str(&format!(
            "{:<13}{:<13}",
            if pick == 0 { label } else { "" },
            measure
        ));
        for cell in cells {
            out.push_str(&pad(&latency_component(&cell.latency, pick), 12));
        }
        out.push('\n');
    }
    out
}

fn latency_component(latency: &LatencyStats, pick: usize) -> String {
    let value = match pick {
        0 => latency.min().map(|v| v as f64),
        1 => latency.average(),
        _ => latency.max().map(|v| v as f64),
    };
    value.map_or_else(|| "-".to_owned(), |v| format!("{v:.0}"))
}

/// Table 9: results for error set E2 — coverage and latencies per area.
pub fn render_table9(report: &E2Report) -> String {
    let mut out = String::new();
    out.push_str("Table 9. Results for error set E2.\n");
    out.push_str(&format!(
        "{:<8}{:<14}{:>14} | {:<28}{:<28}\n",
        "Area",
        "Measure",
        "Coverage (%)",
        "Latency all (min/avg/max)",
        "Latency failures (min/avg/max)"
    ));
    for (area, cell) in [
        ("RAM", &report.ram),
        ("Stack", &report.stack),
        ("Total", &report.total),
    ] {
        for (measure, pick) in [("P(d)", 0usize), ("P(d|fail)", 1), ("P(d|no fail)", 2)] {
            let proportion = match pick {
                0 => &cell.all,
                1 => &cell.fail,
                _ => &cell.no_fail,
            };
            let latencies = if pick == 0 {
                format!(
                    "{:<28}{:<28}",
                    cell.latency.paper_cell(),
                    cell.latency_fail.paper_cell()
                )
            } else {
                format!("{:<28}{:<28}", "", "")
            };
            out.push_str(&format!(
                "{:<8}{:<14}{:>14} | {}\n",
                if pick == 0 { area } else { "" },
                measure,
                proportion.paper_cell(),
                latencies,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error_set;
    use crate::experiment::Trial;
    use arrestor::EaId;

    fn fake_e1_report() -> E1Report {
        let mut report = E1Report::new();
        let errors = error_set::e1();
        for (k, error) in errors.iter().enumerate() {
            let mut per_ea_first_ms = [None; 7];
            if k % 2 == 0 {
                per_ea_first_ms[error.ea.index()] = Some(120);
            }
            let trial = Trial {
                failed: k % 3 == 0,
                per_ea_first_ms,
                first_injection_ms: 20,
                final_distance_m: 250.0,
            };
            report.record(error, &trial);
        }
        report
    }

    #[test]
    fn table6_lists_each_signal_and_totals() {
        let errors = error_set::e1();
        let text = render_table6(&errors, 25);
        assert!(text.contains("SetValue"));
        assert!(text.contains("EA7"));
        assert!(text.contains("S97-S112"));
        assert!(text.contains("400"));
        assert!(text.lines().last().unwrap().contains("2800"));
    }

    #[test]
    fn table7_has_24_measure_rows() {
        let text = render_table7(&fake_e1_report());
        let measure_rows = text.lines().filter(|l| l.contains("P(d")).count();
        // 8 signal groups (7 + total) × 3 measures.
        assert_eq!(measure_rows, 24);
        assert!(text.contains("ms_slot_nbr"));
        assert!(text.contains("All"));
    }

    #[test]
    fn table8_shows_latency_triples() {
        let text = render_table8(&fake_e1_report());
        assert!(text.contains("Average"));
        assert!(text.contains("100")); // 120 - 20 ms latency
    }

    #[test]
    fn table9_renders_three_areas() {
        let mut report = E2Report::new();
        let errors = error_set::e2();
        let mut per_ea_first_ms = [None; 7];
        per_ea_first_ms[EaId::Ea1.index()] = Some(500);
        report.record(
            &errors[0],
            &Trial {
                failed: true,
                per_ea_first_ms,
                first_injection_ms: 20,
                final_distance_m: 400.0,
            },
        );
        report.record(
            &errors[199],
            &Trial {
                failed: false,
                per_ea_first_ms: [None; 7],
                first_injection_ms: 20,
                final_distance_m: 250.0,
            },
        );
        let text = render_table9(&report);
        assert!(text.contains("RAM"));
        assert!(text.contains("Stack"));
        assert!(text.contains("Total"));
        assert!(text.contains("480/480/480"));
    }
}
