//! The Section 2.4 coverage algebra applied to measured campaign data:
//! `Pdetect = (Pen·Pprop + Pem)·Pds`.
//!
//! `Pds` is estimated by E1 (errors placed *in* monitored signals),
//! `Pdetect` by E2's RAM portion (errors placed uniformly in application
//! RAM), and `Pem` is known exactly from the memory map (the fraction of
//! RAM bytes occupied by monitored signals). The one unknown, `Pprop` —
//! the probability that an unmonitored error propagates into a monitored
//! signal — is then solved for, which the paper describes but cannot do
//! without the memory map.

use arrestor::{EaSet, MasterNode};
use ea_core::coverage::CoverageModel;
use serde::{Deserialize, Serialize};

use crate::results::{E1Report, E2Report};

/// The assembled Section 2.4 quantities.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoverageAnalysis {
    /// Fraction of application-RAM bytes holding monitored signals.
    pub p_em: f64,
    /// Measured `Pds` (E1 total, all mechanisms).
    pub p_ds: f64,
    /// Measured `Pdetect` (E2 RAM portion, all mechanisms).
    pub p_detect_ram: f64,
    /// Inferred propagation probability, if the measurements are
    /// consistent.
    pub p_prop: Option<f64>,
}

/// Computes `Pem` from the live memory map: monitored bytes over total
/// application-RAM bytes.
pub fn p_em_from_map() -> f64 {
    let node = MasterNode::new(120, EaSet::ALL);
    let monitored_bytes = node.signals().monitored().len() * 2;
    monitored_bytes as f64 / node.memory().app().len() as f64
}

/// Assembles the analysis from campaign reports.
///
/// Returns `None` when either report is empty.
pub fn analyse(e1: &E1Report, e2: &E2Report) -> Option<CoverageAnalysis> {
    let p_ds = e1.p_ds()?;
    let p_detect_ram = e2.ram.all.estimate()?;
    let p_em = p_em_from_map();
    // CoverageModel validates the probabilities; Pprop = 0.5 is a dummy
    // placeholder for the inversion call.
    let model = CoverageModel::new(p_em, 0.5, p_ds).ok()?;
    let p_prop = model.infer_p_prop(p_detect_ram);
    Some(CoverageAnalysis {
        p_em,
        p_ds,
        p_detect_ram,
        p_prop,
    })
}

/// Renders the analysis as explanatory text.
pub fn render(analysis: &CoverageAnalysis) -> String {
    let mut out = String::from("Section 2.4 coverage algebra: Pdetect = (Pen*Pprop + Pem)*Pds\n");
    out.push_str(&format!(
        "  Pem     = {:.4}   (monitored bytes / application RAM, from the memory map)\n",
        analysis.p_em
    ));
    out.push_str(&format!(
        "  Pds     = {:.4}   (measured: E1 total P(d), all mechanisms)\n",
        analysis.p_ds
    ));
    out.push_str(&format!(
        "  Pdetect = {:.4}   (measured: E2 RAM P(d), all mechanisms)\n",
        analysis.p_detect_ram
    ));
    match analysis.p_prop {
        Some(p) => out.push_str(&format!(
            "  Pprop   = {p:.4}   (inferred: probability an unmonitored RAM error\n\
             \x20                    propagates into a monitored signal)\n"
        )),
        None => out.push_str("  Pprop   = n/a      (measurements inconsistent with the algebra)\n"),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error_set::E1Error;
    use crate::experiment::Trial;
    use arrestor::EaId;
    use memsim::{BitFlip, Region};

    #[test]
    fn p_em_matches_hand_count() {
        // 7 monitored 16-bit signals = 14 bytes of 417.
        let p_em = p_em_from_map();
        assert!((p_em - 14.0 / 417.0).abs() < 1e-12);
    }

    fn trial(detected: bool) -> Trial {
        let mut per_ea_first_ms = [None; 7];
        if detected {
            per_ea_first_ms[0] = Some(100);
        }
        Trial {
            failed: false,
            per_ea_first_ms,
            first_injection_ms: 20,
            final_distance_m: 250.0,
        }
    }

    #[test]
    fn analyse_round_trips_consistent_data() {
        // Pds = 1.0 from E1; Pdetect chosen so that Pprop lands in
        // [0, 1]: with Pem ≈ 0.0336, Pdetect = 0.5 → Pprop ≈ 0.483.
        let mut e1 = E1Report::new();
        let error = E1Error {
            number: 1,
            ea: EaId::Ea1,
            signal_bit: 0,
            flip: BitFlip::new(Region::AppRam, 8, 0),
        };
        e1.record(&error, &trial(true));

        let mut e2 = E2Report::new();
        let ram_error = crate::error_set::E2Error {
            number: 1,
            flip: BitFlip::new(Region::AppRam, 100, 0),
        };
        e2.record(&ram_error, &trial(true));
        e2.record(&ram_error, &trial(false));

        let analysis = analyse(&e1, &e2).expect("non-empty reports");
        assert_eq!(analysis.p_ds, 1.0);
        assert_eq!(analysis.p_detect_ram, 0.5);
        let p_prop = analysis.p_prop.expect("consistent");
        // Check the algebra forward: (Pen·Pprop + Pem)·Pds == Pdetect.
        let forward = ((1.0 - analysis.p_em) * p_prop + analysis.p_em) * analysis.p_ds;
        assert!((forward - 0.5).abs() < 1e-12);
    }

    #[test]
    fn analyse_flags_inconsistent_data() {
        // Pdetect > Pds is impossible under the algebra.
        let mut e1 = E1Report::new();
        let error = E1Error {
            number: 1,
            ea: EaId::Ea1,
            signal_bit: 0,
            flip: BitFlip::new(Region::AppRam, 8, 0),
        };
        e1.record(&error, &trial(false)); // Pds = 0

        let mut e2 = E2Report::new();
        let ram_error = crate::error_set::E2Error {
            number: 1,
            flip: BitFlip::new(Region::AppRam, 100, 0),
        };
        e2.record(&ram_error, &trial(true)); // Pdetect = 1

        let analysis = analyse(&e1, &e2).expect("non-empty");
        assert_eq!(analysis.p_prop, None);
    }

    #[test]
    fn render_mentions_every_quantity() {
        let analysis = CoverageAnalysis {
            p_em: 0.03,
            p_ds: 0.73,
            p_detect_ram: 0.05,
            p_prop: Some(0.04),
        };
        let text = render(&analysis);
        for needle in ["Pem", "Pds", "Pdetect", "Pprop", "0.7300"] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }
}
