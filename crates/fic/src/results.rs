//! Aggregation of trial outcomes into the paper's result tables.

use arrestor::{EaId, EaSet};
use ea_core::stats::{LatencyStats, Proportion};
use memsim::Region;
use serde::{Deserialize, Serialize};

use crate::error_set::{E1Error, E2Error};
use crate::experiment::Trial;

/// The eight software versions of the evaluation, column order of
/// Tables 7 and 8: EA1..EA7 alone, then all seven.
pub fn versions() -> [EaSet; 8] {
    EaSet::paper_versions()
}

/// Column labels of Tables 7 and 8.
pub const VERSION_LABELS: [&str; 8] = ["EA1", "EA2", "EA3", "EA4", "EA5", "EA6", "EA7", "All"];

/// One measurement cell: detections split by run outcome, plus latency
/// aggregations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Cell {
    /// All runs: `P(d)` numerator/denominator.
    pub all: Proportion,
    /// Failing runs only: `P(d|fail)`.
    pub fail: Proportion,
    /// Non-failing runs only: `P(d|no fail)`.
    pub no_fail: Proportion,
    /// Latencies over all detected runs (Table 8 cells).
    pub latency: LatencyStats,
    /// Latencies over detected runs that failed (Table 9 split).
    pub latency_fail: LatencyStats,
}

impl Cell {
    /// Feeds one trial into the cell for the given version.
    pub fn record(&mut self, trial: &Trial, version: EaSet) {
        let detected = trial.detected(version);
        self.all.record(detected);
        if trial.failed {
            self.fail.record(detected);
        } else {
            self.no_fail.record(detected);
        }
        if let Some(latency) = trial.latency_ms(version) {
            self.latency.record(latency);
            if trial.failed {
                self.latency_fail.record(latency);
            }
        }
    }

    /// Merges another cell (parallel workers).
    pub fn merge(&mut self, other: &Cell) {
        self.all.merge(other.all);
        self.fail.merge(other.fail);
        self.no_fail.merge(other.no_fail);
        self.latency.merge(other.latency);
        self.latency_fail.merge(other.latency_fail);
    }
}

/// One Table 7/8 row: a monitored signal across the eight versions.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SignalRow {
    /// Cells in version order (EA1..EA7, All).
    pub cells: [Cell; 8],
}

/// The results of the E1 campaign (Tables 7 and 8).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct E1Report {
    /// One row per monitored signal, Table 6 order.
    pub rows: [SignalRow; 7],
    /// The Total row.
    pub totals: SignalRow,
    trials: usize,
}

impl E1Report {
    /// An empty report.
    pub fn new() -> Self {
        E1Report::default()
    }

    /// Accumulates one trial of error `error`.
    pub fn record(&mut self, error: &E1Error, trial: &Trial) {
        self.trials += 1;
        let row = error.ea.index();
        for (v, version) in versions().iter().enumerate() {
            self.rows[row].cells[v].record(trial, *version);
            self.totals.cells[v].record(trial, *version);
        }
    }

    /// Merges a partial report from a worker.
    pub fn merge(&mut self, other: &E1Report) {
        self.trials += other.trials;
        for (row, other_row) in self.rows.iter_mut().zip(&other.rows) {
            for (cell, other_cell) in row.cells.iter_mut().zip(&other_row.cells) {
                cell.merge(other_cell);
            }
        }
        for (cell, other_cell) in self.totals.cells.iter_mut().zip(&other.totals.cells) {
            cell.merge(other_cell);
        }
    }

    /// Number of trials recorded.
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// Row label for row index `k` (the signal's name).
    pub fn row_label(k: usize) -> &'static str {
        EaId::from_index(k).map_or("?", EaId::signal_name)
    }

    /// The paper's headline `Pds` estimate: `P(d)` of the All column,
    /// Total row.
    pub fn p_ds(&self) -> Option<f64> {
        self.totals.cells[7].all.estimate()
    }
}

/// The results of the E2 campaign (Table 9), all-mechanisms version.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct E2Report {
    /// Errors injected into application RAM.
    pub ram: Cell,
    /// Errors injected into the stack.
    pub stack: Cell,
    /// All E2 errors.
    pub total: Cell,
    trials: usize,
}

impl E2Report {
    /// An empty report.
    pub fn new() -> Self {
        E2Report::default()
    }

    /// Accumulates one trial of error `error` (All version).
    pub fn record(&mut self, error: &E2Error, trial: &Trial) {
        self.trials += 1;
        let cell = match error.flip.region {
            Region::AppRam => &mut self.ram,
            Region::Stack => &mut self.stack,
        };
        cell.record(trial, EaSet::ALL);
        self.total.record(trial, EaSet::ALL);
    }

    /// Merges a partial report from a worker.
    pub fn merge(&mut self, other: &E2Report) {
        self.trials += other.trials;
        self.ram.merge(&other.ram);
        self.stack.merge(&other.stack);
        self.total.merge(&other.total);
    }

    /// Number of trials recorded.
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// The paper's headline `Pdetect` estimate: total `P(d)`.
    pub fn p_detect(&self) -> Option<f64> {
        self.total.all.estimate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::BitFlip;

    fn trial(detected_ea: Option<EaId>, failed: bool, at: u64) -> Trial {
        let mut per_ea_first_ms = [None; 7];
        if let Some(ea) = detected_ea {
            per_ea_first_ms[ea.index()] = Some(at);
        }
        Trial {
            failed,
            per_ea_first_ms,
            first_injection_ms: 20,
            final_distance_m: 100.0,
        }
    }

    fn e1_error(ea: EaId) -> E1Error {
        E1Error {
            number: 1,
            ea,
            signal_bit: 0,
            flip: BitFlip::new(Region::AppRam, 0, 0),
        }
    }

    #[test]
    fn e1_report_routes_to_signal_row_and_version_columns() {
        let mut report = E1Report::new();
        report.record(&e1_error(EaId::Ea6), &trial(Some(EaId::Ea6), true, 120));
        report.record(&e1_error(EaId::Ea6), &trial(None, false, 0));

        let row = &report.rows[EaId::Ea6.index()];
        // EA6 column: 1 of 2 detected.
        assert_eq!(row.cells[5].all.detected(), 1);
        assert_eq!(row.cells[5].all.total(), 2);
        // EA1 column: nothing detected.
        assert_eq!(row.cells[0].all.detected(), 0);
        // All column: same single detection.
        assert_eq!(row.cells[7].all.detected(), 1);
        // Conditioned splits.
        assert_eq!(row.cells[7].fail.total(), 1);
        assert_eq!(row.cells[7].fail.detected(), 1);
        assert_eq!(row.cells[7].no_fail.total(), 1);
        assert_eq!(row.cells[7].no_fail.detected(), 0);
        // Latency: 120 - 20 = 100 ms.
        assert_eq!(row.cells[5].latency.min(), Some(100));
        assert_eq!(report.trials(), 2);
        // Totals row sees both.
        assert_eq!(report.totals.cells[7].all.total(), 2);
    }

    #[test]
    fn e1_report_merge() {
        let mut a = E1Report::new();
        a.record(&e1_error(EaId::Ea1), &trial(Some(EaId::Ea1), false, 50));
        let mut b = E1Report::new();
        b.record(&e1_error(EaId::Ea1), &trial(None, true, 0));
        a.merge(&b);
        assert_eq!(a.trials(), 2);
        assert_eq!(a.rows[0].cells[0].all.total(), 2);
        assert_eq!(a.rows[0].cells[0].all.detected(), 1);
    }

    #[test]
    fn e2_report_splits_regions() {
        let mut report = E2Report::new();
        let ram_err = E2Error {
            number: 1,
            flip: BitFlip::new(Region::AppRam, 5, 1),
        };
        let stack_err = E2Error {
            number: 2,
            flip: BitFlip::new(Region::Stack, 5, 1),
        };
        report.record(&ram_err, &trial(Some(EaId::Ea1), true, 220));
        report.record(&stack_err, &trial(None, true, 0));
        assert_eq!(report.ram.all.detected(), 1);
        assert_eq!(report.stack.all.detected(), 0);
        assert_eq!(report.total.all.total(), 2);
        assert_eq!(report.ram.latency_fail.min(), Some(200));
        assert_eq!(report.p_detect(), Some(0.5));
    }

    #[test]
    fn p_ds_reads_total_all_column() {
        let mut report = E1Report::new();
        report.record(&e1_error(EaId::Ea2), &trial(Some(EaId::Ea2), false, 30));
        assert_eq!(report.p_ds(), Some(1.0));
    }

    #[test]
    fn row_labels_match_signals() {
        assert_eq!(E1Report::row_label(0), "SetValue");
        assert_eq!(E1Report::row_label(6), "OutValue");
    }
}
