//! Streaming coverage-convergence estimation: how statistically
//! settled are Tables 7–9 *right now*?
//!
//! The paper's headline artefacts are binomial coverage estimates, but
//! a running campaign only exposes throughput — nothing says how tight
//! the Wilson intervals around `Pds` and `Pdetect` already are, or how
//! many more trials it would take to pin a cell to a target precision.
//! This module folds the same trial stream every other consumer uses
//! (the campaign collector, `--resume` replay, the fleet server's
//! journal fold) into a [`ConvergenceAggregate`]: one
//! [`Proportion`] per E1 signal cell (the All-version column of
//! Table 7), the E1 total, and the two E2 region cells of Table 9 —
//! plus the recomposed §2.4 `Pdetect` and a per-cell precision
//! forecast ("trials remaining to reach a ±δ half-width").
//!
//! The aggregate's `merge` is associative, commutative and
//! permutation-invariant (`crates/fic/tests/prop_convergence.rs`), so
//! worker fan-in, shard merges and resume replay all land on the same
//! value, and [`aggregate_journal`] re-derives it from any journal —
//! the artefact is a pure function of the journaled trials. Like
//! telemetry, attribution and the cost profiler before it, the monitor
//! is an **observer**: enabling it changes no journal byte, no table
//! cell, no attribution or telemetry report
//! (`tests/convergence_equivalence.rs`).

use std::io;
use std::path::{Path, PathBuf};

use arrestor::EaSet;
use ea_core::stats::{Proportion, Z_95};
use memsim::Region;
use serde::{Deserialize, Serialize};

use crate::error_set::{E1Error, E2Error};
use crate::experiment::Trial;
use crate::journal::{CampaignKind, Journal, JournalError};
use crate::results::{E1Report, E2Report};
use crate::telemetry::RunMetadata;

/// Version stamp of [`ConvergenceReport`] and the `/coverage` payload.
pub const SCHEMA_VERSION: u32 = 1;

/// The report's `kind` discriminator.
pub const REPORT_KIND: &str = "coverage-convergence";

/// Default half-width target δ for the precision forecast (±5 points,
/// the resolution at which the paper's own tables are quoted).
pub const DEFAULT_DELTA: f64 = 0.05;

/// Which table cell a trial lands in, as exposed by the error kinds
/// (`InjectableError::convergence_key`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellKey {
    /// An E1 trial targeting the `k`-th monitored signal (Table 6
    /// row order, `EaId::index`).
    Signal(usize),
    /// An E2 trial flipping a bit in the given region.
    Region(Region),
}

/// The incremental per-cell coverage estimator. Detection criterion is
/// the All-mechanisms version ([`EaSet::ALL`]) — the same cells the
/// paper's headline `Pds` and `Pdetect` come from.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceAggregate {
    /// Per-signal All-version detection, Table 6 row order.
    pub per_signal: [Proportion; 7],
    /// The E1 Total row's All-version cell (the paper's `Pds`).
    pub e1_total: Proportion,
    /// E2 application-RAM flips (the paper's `Pdetect`).
    pub e2_ram: Proportion,
    /// E2 stack flips.
    pub e2_stack: Proportion,
}

impl ConvergenceAggregate {
    /// An empty aggregate (the identity of [`merge`](Self::merge)).
    pub fn new() -> Self {
        ConvergenceAggregate::default()
    }

    /// Folds one trial into the cell named by `key`.
    pub fn record(&mut self, key: CellKey, detected: bool) {
        match key {
            CellKey::Signal(k) => {
                self.per_signal[k % 7].record(detected);
                self.e1_total.record(detected);
            }
            CellKey::Region(Region::AppRam) => self.e2_ram.record(detected),
            CellKey::Region(Region::Stack) => self.e2_stack.record(detected),
        }
    }

    /// Folds one completed E1 trial.
    pub fn record_e1(&mut self, error: &E1Error, trial: &Trial) {
        self.record(
            CellKey::Signal(error.ea.index()),
            trial.detected(EaSet::ALL),
        );
    }

    /// Folds one completed E2 trial.
    pub fn record_e2(&mut self, error: &E2Error, trial: &Trial) {
        self.record(
            CellKey::Region(error.flip.region),
            trial.detected(EaSet::ALL),
        );
    }

    /// Merges another aggregate (worker fan-in, shard merge). The
    /// operation is associative, commutative and permutation-invariant.
    pub fn merge(&mut self, other: &ConvergenceAggregate) {
        for (mine, theirs) in self.per_signal.iter_mut().zip(&other.per_signal) {
            mine.merge(*theirs);
        }
        self.e1_total.merge(other.e1_total);
        self.e2_ram.merge(other.e2_ram);
        self.e2_stack.merge(other.e2_stack);
    }

    /// Derives the aggregate from already-folded campaign reports — the
    /// fleet server's path: its per-campaign [`E1Report`]/[`E2Report`]
    /// hold exactly these cells, so no second fold state is needed and
    /// the estimator cannot drift from the tables.
    pub fn from_reports(e1: &E1Report, e2: &E2Report) -> Self {
        let mut per_signal = [Proportion::default(); 7];
        for (k, slot) in per_signal.iter_mut().enumerate() {
            *slot = e1.rows[k].cells[7].all;
        }
        ConvergenceAggregate {
            per_signal,
            e1_total: e1.totals.cells[7].all,
            e2_ram: e2.ram.all,
            e2_stack: e2.stack.all,
        }
    }

    /// The combined E2 cell (RAM ∪ stack, Table 9's Total row).
    pub fn e2_total(&self) -> Proportion {
        let mut total = self.e2_ram;
        total.merge(self.e2_stack);
        total
    }

    /// E1 trials folded so far.
    pub fn e1_trials(&self) -> u64 {
        self.e1_total.total()
    }

    /// E2 trials folded so far.
    pub fn e2_trials(&self) -> u64 {
        self.e2_ram.total() + self.e2_stack.total()
    }

    /// Total trials folded so far.
    pub fn trials(&self) -> u64 {
        self.e1_trials() + self.e2_trials()
    }

    /// Whether nothing has been folded yet.
    pub fn is_empty(&self) -> bool {
        self.trials() == 0
    }

    /// The named per-cell estimates (detections, Wilson CI, forecast)
    /// in render order: seven signal rows, the E1 total, the two E2
    /// regions and the E2 total.
    pub fn cells(&self, delta: f64) -> Vec<CellEstimate> {
        let mut cells = Vec::with_capacity(11);
        for (k, cell) in self.per_signal.iter().enumerate() {
            cells.push(CellEstimate::from_proportion(
                E1Report::row_label(k),
                cell,
                delta,
            ));
        }
        cells.push(CellEstimate::from_proportion(
            "E1 total",
            &self.e1_total,
            delta,
        ));
        cells.push(CellEstimate::from_proportion("E2 RAM", &self.e2_ram, delta));
        cells.push(CellEstimate::from_proportion(
            "E2 stack",
            &self.e2_stack,
            delta,
        ));
        cells.push(CellEstimate::from_proportion(
            "E2 total",
            &self.e2_total(),
            delta,
        ));
        cells
    }

    /// One self-describing coverage view (the `/coverage` payload per
    /// campaign, a `--convergence-jsonl` snapshot line, and the
    /// campaign_watch frame all share this shape).
    pub fn coverage(&self, name: &str, delta: f64) -> CampaignCoverage {
        CampaignCoverage {
            name: name.to_owned(),
            delta,
            e1_trials: self.e1_trials(),
            e2_trials: self.e2_trials(),
            cells: self.cells(delta),
            recomposition: Recomposition::from_aggregate(self),
        }
    }
}

/// Projects how many further trials a cell needs before its Wilson 95 %
/// half-width drops to ±`delta`.
///
/// CI width scales as `1/√n` at fixed `p̂`, so the projection from the
/// current width `w` over `n` trials is `n·(w/δ)² − n`. An empty cell
/// has no `p̂` yet and is forecast at the worst case `p = ½` through
/// the normal approximation, `⌈z²/(4δ²)⌉`. Returns 0 once the target
/// is met; `delta` must be positive (enforced by callers).
pub fn trials_to_half_width(cell: &Proportion, delta: f64) -> u64 {
    debug_assert!(delta > 0.0);
    let Some((low, high)) = cell.interval_wilson(Z_95) else {
        return ((Z_95 * Z_95) / (4.0 * delta * delta)).ceil() as u64;
    };
    let width = (high - low) / 2.0;
    if width <= delta {
        return 0;
    }
    let n = cell.total() as f64;
    let required = n * (width / delta) * (width / delta);
    (required.ceil() as u64).saturating_sub(cell.total())
}

/// One table cell's current estimate, interval and precision forecast.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellEstimate {
    /// Cell name (`CLOCK` … `PRES_B`, `E1 total`, `E2 RAM`, …).
    pub label: String,
    /// Detected trials.
    pub detected: u64,
    /// Total trials.
    pub trials: u64,
    /// Point estimate `detected / trials` (absent while empty).
    pub estimate: Option<f64>,
    /// Wilson 95 % lower bound.
    pub wilson_low: Option<f64>,
    /// Wilson 95 % upper bound.
    pub wilson_high: Option<f64>,
    /// Half of the Wilson interval's width.
    pub half_width: Option<f64>,
    /// Projected further trials until the half-width reaches ±δ.
    pub trials_remaining: u64,
}

impl CellEstimate {
    /// Snapshots one proportion under the forecast target `delta`.
    pub fn from_proportion(label: &str, cell: &Proportion, delta: f64) -> Self {
        let interval = cell.interval_wilson(Z_95);
        CellEstimate {
            label: label.to_owned(),
            detected: cell.detected(),
            trials: cell.total(),
            estimate: cell.estimate(),
            wilson_low: interval.map(|(low, _)| low),
            wilson_high: interval.map(|(_, high)| high),
            half_width: interval.map(|(low, high)| (high - low) / 2.0),
            trials_remaining: trials_to_half_width(cell, delta),
        }
    }
}

/// The §2.4 coverage algebra recomposed from the live cells, the same
/// clamped inversion `attribution::Decomposition` uses: `Pem` is exact
/// from the memory map, `Pds` comes from the E1 total, `Pprop` is
/// inverted from the E2 RAM measurement (clamped into `[0, 1]` against
/// sampling noise), and `Pdetect = (Pen·Pprop + Pem)·Pds`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Recomposition {
    /// Monitored fraction of application RAM (exact, from the map).
    pub p_em: f64,
    /// `1 − Pem`.
    pub p_en: f64,
    /// The E1 total detection estimate.
    pub p_ds: f64,
    /// The measured E2 RAM detection estimate.
    pub p_detect_ram: f64,
    /// Propagation probability inverted from the algebra, clamped.
    pub p_prop: f64,
    /// `(Pen·Pprop + Pem)·Pds`.
    pub p_detect_recomposed: f64,
}

impl Recomposition {
    /// Recomposes from an aggregate; `None` until both the E1 total
    /// and the E2 RAM cell have trials.
    pub fn from_aggregate(aggregate: &ConvergenceAggregate) -> Option<Self> {
        let p_ds = aggregate.e1_total.estimate()?;
        let p_detect_ram = aggregate.e2_ram.estimate()?;
        let p_em = crate::coverage_report::p_em_from_map();
        let p_en = 1.0 - p_em;
        let p_prop = if p_ds > 0.0 && p_en > 0.0 {
            ((p_detect_ram / p_ds - p_em) / p_en).clamp(0.0, 1.0)
        } else {
            0.0
        };
        Some(Recomposition {
            p_em,
            p_en,
            p_ds,
            p_detect_ram,
            p_prop,
            p_detect_recomposed: (p_en * p_prop + p_em) * p_ds,
        })
    }
}

/// One campaign's live coverage view: the `/coverage` payload carries
/// one of these per queued campaign, and `--convergence-jsonl` streams
/// them as snapshot lines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignCoverage {
    /// Campaign (or producer) name.
    pub name: String,
    /// The forecast's half-width target δ.
    pub delta: f64,
    /// E1 trials folded.
    pub e1_trials: u64,
    /// E2 trials folded.
    pub e2_trials: u64,
    /// Per-cell estimates in render order.
    pub cells: Vec<CellEstimate>,
    /// The recomposed coverage algebra, once both campaigns have data.
    pub recomposition: Option<Recomposition>,
}

/// The `/coverage` endpoint's whole payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoverageSnapshot {
    /// [`SCHEMA_VERSION`].
    pub schema_version: u32,
    /// Always [`REPORT_KIND`] — lets dashboards sanity-check the URL.
    pub kind: String,
    /// One entry per campaign.
    pub campaigns: Vec<CampaignCoverage>,
}

impl CoverageSnapshot {
    /// Wraps per-campaign views into the versioned payload.
    pub fn new(campaigns: Vec<CampaignCoverage>) -> Self {
        CoverageSnapshot {
            schema_version: SCHEMA_VERSION,
            kind: REPORT_KIND.to_owned(),
            campaigns,
        }
    }
}

/// The persisted convergence artefact (`results/convergence/*.json`):
/// a pure function of the journaled trials, schema-versioned like the
/// telemetry/attribution/profile reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceReport {
    /// [`SCHEMA_VERSION`].
    pub schema_version: u32,
    /// Artefact discriminator, always [`REPORT_KIND`].
    pub kind: String,
    /// Which binary produced the report.
    pub producer: String,
    /// Run attribution (same metadata as telemetry reports).
    pub run: RunMetadata,
    /// The forecast's half-width target δ.
    pub delta: f64,
    /// The folded estimator state.
    pub aggregate: ConvergenceAggregate,
    /// Per-cell estimates derived from the aggregate.
    pub cells: Vec<CellEstimate>,
    /// The recomposed coverage algebra derived from the aggregate.
    pub recomposition: Option<Recomposition>,
}

impl ConvergenceReport {
    /// Assembles a report (cells and recomposition are derived on the
    /// spot, so they can never disagree with the aggregate).
    pub fn assemble(
        producer: &str,
        run: RunMetadata,
        aggregate: ConvergenceAggregate,
        delta: f64,
    ) -> Self {
        ConvergenceReport {
            schema_version: SCHEMA_VERSION,
            kind: REPORT_KIND.to_owned(),
            producer: producer.to_owned(),
            run,
            delta,
            cells: aggregate.cells(delta),
            recomposition: Recomposition::from_aggregate(&aggregate),
            aggregate,
        }
    }

    /// Structural validation: version, discriminator, conservation
    /// laws, and that the derived cells and recomposition re-derive
    /// from the aggregate (used by `telemetry_check --convergence`).
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema_version != SCHEMA_VERSION {
            return Err(format!(
                "schema_version {} (this build reads {})",
                self.schema_version, SCHEMA_VERSION
            ));
        }
        if self.kind != REPORT_KIND {
            return Err(format!("unexpected kind `{}`", self.kind));
        }
        if self.delta <= 0.0 || self.delta.is_nan() {
            return Err(format!("delta {} is not positive", self.delta));
        }
        let agg = &self.aggregate;
        let signal_total: u64 = agg.per_signal.iter().map(Proportion::total).sum();
        if signal_total != agg.e1_total.total() {
            return Err(format!(
                "per-signal totals sum to {} but the E1 total holds {}",
                signal_total,
                agg.e1_total.total()
            ));
        }
        let signal_detected: u64 = agg.per_signal.iter().map(Proportion::detected).sum();
        if signal_detected != agg.e1_total.detected() {
            return Err(format!(
                "per-signal detections sum to {} but the E1 total holds {}",
                signal_detected,
                agg.e1_total.detected()
            ));
        }
        let expected_cells = agg.cells(self.delta);
        if self.cells != expected_cells {
            return Err("cells do not re-derive from the aggregate".to_owned());
        }
        let expected = Recomposition::from_aggregate(agg);
        match (&self.recomposition, &expected) {
            (None, None) => {}
            (Some(mine), Some(theirs)) => {
                let close = |a: f64, b: f64| (a - b).abs() < 1e-9;
                if !(close(mine.p_em, theirs.p_em)
                    && close(mine.p_en, theirs.p_en)
                    && close(mine.p_ds, theirs.p_ds)
                    && close(mine.p_detect_ram, theirs.p_detect_ram)
                    && close(mine.p_prop, theirs.p_prop)
                    && close(mine.p_detect_recomposed, theirs.p_detect_recomposed))
                {
                    return Err("recomposition does not follow from the aggregate".to_owned());
                }
            }
            _ => return Err("recomposition presence disagrees with the aggregate".to_owned()),
        }
        Ok(())
    }
}

/// Re-derives the aggregate from a journal: first-wins dedup on the
/// trial key, then a fold of every record — the exact algebra the live
/// collector and the fleet server use, which is what makes the
/// artefact journal-checkable.
///
/// # Errors
///
/// [`JournalError::Mismatch`] when a record names an unknown error
/// number or an out-of-range test case.
pub fn aggregate_journal(journal: &Journal) -> Result<ConvergenceAggregate, JournalError> {
    let e1_errors = crate::error_set::e1();
    let e2_errors = crate::error_set::e2();
    let cases = journal.header.protocol.cases_per_error();
    let mut seen = std::collections::HashSet::new();
    let mut aggregate = ConvergenceAggregate::new();
    for record in &journal.records {
        if record.case_index >= cases {
            return Err(JournalError::Mismatch(format!(
                "case index {} out of range (protocol has {} cases/error)",
                record.case_index, cases
            )));
        }
        if !seen.insert((record.campaign, record.error_number, record.case_index)) {
            continue;
        }
        match record.campaign {
            CampaignKind::E1 => {
                let error = e1_errors
                    .iter()
                    .find(|e| e.number == record.error_number)
                    .ok_or_else(|| {
                        JournalError::Mismatch(format!(
                            "unknown E1 error number S{}",
                            record.error_number
                        ))
                    })?;
                aggregate.record_e1(error, &record.trial);
            }
            CampaignKind::E2 => {
                let error = e2_errors
                    .iter()
                    .find(|e| e.number == record.error_number)
                    .ok_or_else(|| {
                        JournalError::Mismatch(format!(
                            "unknown E2 error number {}",
                            record.error_number
                        ))
                    })?;
                aggregate.record_e2(error, &record.trial);
            }
        }
    }
    Ok(aggregate)
}

/// Writes a report as `<dir>/<label>.json` (pretty-printed).
///
/// # Errors
///
/// Directory creation or write failures.
pub fn write_report(dir: &Path, label: &str, report: &ConvergenceReport) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{label}.json"));
    let json = serde_json::to_string_pretty(report).expect("report serialises");
    std::fs::write(&path, format!("{json}\n"))?;
    Ok(path)
}

/// Renders one coverage view as a fixed-width TTY table: cell name,
/// detections, point estimate, Wilson interval, half-width and the
/// forecast — the frame `campaign_watch` repaints and the summary
/// `--precision-report` prints.
pub fn render_coverage(coverage: &CampaignCoverage) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "[{}] convergence  e1 {} trials  e2 {} trials  (target ±{:.3})\n",
        coverage.name, coverage.e1_trials, coverage.e2_trials, coverage.delta
    ));
    out.push_str(&format!(
        "{:<10} {:>6}/{:<6} {:>7} {:>17} {:>7} {:>10}\n",
        "cell", "det", "trials", "p", "wilson 95%", "±", "need"
    ));
    for cell in &coverage.cells {
        let (p, interval, half) = match (cell.estimate, cell.wilson_low, cell.half_width) {
            (Some(p), Some(low), Some(half)) => {
                let high = cell.wilson_high.unwrap_or(low);
                (
                    format!("{p:.3}"),
                    format!("[{low:.3}, {high:.3}]"),
                    format!("{half:.3}"),
                )
            }
            _ => ("-".to_owned(), "-".to_owned(), "-".to_owned()),
        };
        let need = if cell.trials_remaining == 0 && cell.trials > 0 {
            "ok".to_owned()
        } else {
            format!("+{}", cell.trials_remaining)
        };
        out.push_str(&format!(
            "{:<10} {:>6}/{:<6} {:>7} {:>17} {:>7} {:>10}\n",
            cell.label, cell.detected, cell.trials, p, interval, half, need
        ));
    }
    if let Some(r) = &coverage.recomposition {
        out.push_str(&format!(
            "Pdetect = (Pen·Pprop + Pem)·Pds = ({:.4}·{:.4} + {:.4})·{:.4} = {:.4}  (measured RAM {:.4})\n",
            r.p_en, r.p_prop, r.p_em, r.p_ds, r.p_detect_recomposed, r.p_detect_ram
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error_set;

    fn trial(detections: &[(usize, u64)], failed: bool) -> Trial {
        let mut per_ea = [None; 7];
        for &(ea, ms) in detections {
            per_ea[ea % 7] = Some(ms);
        }
        Trial {
            failed,
            per_ea_first_ms: per_ea,
            first_injection_ms: 20,
            final_distance_m: 200.0,
        }
    }

    fn sample_aggregate() -> ConvergenceAggregate {
        let e1 = error_set::e1();
        let e2 = error_set::e2();
        let mut aggregate = ConvergenceAggregate::new();
        aggregate.record_e1(&e1[0], &trial(&[(0, 40)], true));
        aggregate.record_e1(&e1[30], &trial(&[], false));
        aggregate.record_e2(&e2[0], &trial(&[(2, 60)], true));
        aggregate.record_e2(&e2[1], &trial(&[], false));
        aggregate
    }

    #[test]
    fn schema_version_is_pinned() {
        assert_eq!(SCHEMA_VERSION, 1);
        assert_eq!(REPORT_KIND, "coverage-convergence");
    }

    #[test]
    fn recording_routes_to_the_named_cell() {
        let aggregate = sample_aggregate();
        assert_eq!(aggregate.e1_trials(), 2);
        assert_eq!(aggregate.e2_trials(), 2);
        assert_eq!(aggregate.e1_total.detected(), 1);
        let signal_total: u64 = aggregate.per_signal.iter().map(Proportion::total).sum();
        assert_eq!(signal_total, 2);
        assert_eq!(aggregate.e2_total().total(), 2);
    }

    #[test]
    fn from_reports_matches_the_incremental_fold() {
        let e1_errors = error_set::e1();
        let e2_errors = error_set::e2();
        let mut e1 = E1Report::new();
        let mut e2 = E2Report::new();
        let mut aggregate = ConvergenceAggregate::new();
        for (k, error) in e1_errors.iter().take(12).enumerate() {
            let t = trial(&[(k % 7, 40 + k as u64)], k % 3 == 0);
            e1.record(error, &t);
            aggregate.record_e1(error, &t);
        }
        for (k, error) in e2_errors.iter().take(8).enumerate() {
            let t = trial(if k % 2 == 0 { &[(1, 80)] } else { &[] }, k % 2 == 0);
            e2.record(error, &t);
            aggregate.record_e2(error, &t);
        }
        assert_eq!(ConvergenceAggregate::from_reports(&e1, &e2), aggregate);
    }

    #[test]
    fn forecast_is_zero_once_the_target_is_met() {
        let wide = Proportion::new(1, 4);
        assert!(trials_to_half_width(&wide, 0.05) > 0);
        let tight = Proportion::new(5_000, 10_000);
        assert_eq!(trials_to_half_width(&tight, 0.05), 0);
        let empty = Proportion::default();
        let worst = ((Z_95 * Z_95) / (4.0 * 0.05 * 0.05)).ceil() as u64;
        assert_eq!(trials_to_half_width(&empty, 0.05), worst);
    }

    #[test]
    fn report_assembles_and_validates() {
        let aggregate = sample_aggregate();
        let run = RunMetadata::for_run(&crate::Protocol::paper(), true, None);
        let report = ConvergenceReport::assemble("test", run, aggregate, DEFAULT_DELTA);
        report.validate().unwrap();
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: ConvergenceReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        back.validate().unwrap();
    }

    #[test]
    fn validate_rejects_tampered_reports() {
        let run = RunMetadata::for_run(&crate::Protocol::paper(), true, None);
        let good = ConvergenceReport::assemble("test", run, sample_aggregate(), DEFAULT_DELTA);

        let mut wrong_version = good.clone();
        wrong_version.schema_version = 99;
        assert!(wrong_version.validate().is_err());

        let mut wrong_kind = good.clone();
        wrong_kind.kind = "telemetry".to_owned();
        assert!(wrong_kind.validate().is_err());

        let mut torn_total = good.clone();
        torn_total.aggregate.e1_total.record(true);
        assert!(torn_total.validate().is_err());

        let mut stale_cells = good.clone();
        stale_cells.cells[0].detected += 1;
        assert!(stale_cells.validate().is_err());

        let mut bad_recomposition = good;
        if let Some(r) = &mut bad_recomposition.recomposition {
            r.p_detect_recomposed += 0.5;
        }
        assert!(bad_recomposition.validate().is_err());
    }

    #[test]
    fn render_names_every_cell() {
        let coverage = sample_aggregate().coverage("unit", DEFAULT_DELTA);
        let rendered = render_coverage(&coverage);
        for label in ["E1 total", "E2 RAM", "E2 stack", "E2 total"] {
            assert!(rendered.contains(label), "missing {label}:\n{rendered}");
        }
        assert!(rendered.contains("Pdetect"));
    }
}
