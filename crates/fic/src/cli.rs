//! Minimal shared argument parsing for the table/figure binaries.
//!
//! Flags understood by every binary:
//!
//! * `--scale <n>` — use an `n × n` test-case grid instead of the
//!   paper's 5 × 5;
//! * `--observation <ms>` — shorten the 40 s observation window;
//! * `--workers <n>` — worker threads (default: all cores);
//! * `--out <dir>` — artefact directory (default `results/`);
//! * `--load <file>` — render from a previously saved JSON report
//!   instead of re-running the campaign.

use std::path::PathBuf;

use crate::protocol::Protocol;

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct CliOptions {
    /// Grid scale override (`n × n`).
    pub scale: Option<usize>,
    /// Observation-window override, ms.
    pub observation_ms: Option<u64>,
    /// Worker-thread override.
    pub workers: Option<usize>,
    /// Artefact output directory.
    pub out_dir: PathBuf,
    /// Load a saved report instead of running.
    pub load: Option<PathBuf>,
}

impl Default for CliOptions {
    fn default() -> Self {
        CliOptions {
            scale: None,
            observation_ms: None,
            workers: None,
            out_dir: PathBuf::from("results"),
            load: None,
        }
    }
}

impl CliOptions {
    /// Parses `std::env::args`; exits with a usage message on bad input.
    pub fn from_env() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match Self::parse(&args) {
            Ok(options) => options,
            Err(message) => {
                eprintln!("{message}");
                eprintln!(
                    "usage: [--scale n] [--observation ms] [--workers n] [--out dir] [--load file]"
                );
                std::process::exit(2);
            }
        }
    }

    /// Parses an argument list.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the offending flag or value.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut options = CliOptions::default();
        let mut iter = args.iter();
        while let Some(flag) = iter.next() {
            let mut value = |name: &str| {
                iter.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} needs a value"))
            };
            match flag.as_str() {
                "--scale" => {
                    options.scale = Some(
                        value("--scale")?
                            .parse()
                            .map_err(|e| format!("--scale: {e}"))?,
                    );
                }
                "--observation" => {
                    options.observation_ms = Some(
                        value("--observation")?
                            .parse()
                            .map_err(|e| format!("--observation: {e}"))?,
                    );
                }
                "--workers" => {
                    options.workers = Some(
                        value("--workers")?
                            .parse()
                            .map_err(|e| format!("--workers: {e}"))?,
                    );
                }
                "--out" => options.out_dir = PathBuf::from(value("--out")?),
                "--load" => options.load = Some(PathBuf::from(value("--load")?)),
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        Ok(options)
    }

    /// Builds the protocol these options describe.
    pub fn protocol(&self) -> Protocol {
        let mut protocol = match self.scale {
            Some(n) => Protocol::scaled(n, simenv::spec::OBSERVATION_MS),
            None => Protocol::paper(),
        };
        if let Some(ms) = self.observation_ms {
            protocol.observation_ms = ms;
        }
        if let Some(w) = self.workers {
            protocol.workers = w;
        }
        protocol
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn defaults_to_paper_protocol() {
        let options = CliOptions::parse(&[]).unwrap();
        let protocol = options.protocol();
        assert_eq!(protocol.cases_per_error(), 25);
        assert_eq!(protocol.observation_ms, 40_000);
        assert_eq!(options.out_dir, PathBuf::from("results"));
    }

    #[test]
    fn parses_overrides() {
        let options = CliOptions::parse(&args(&[
            "--scale",
            "2",
            "--observation",
            "5000",
            "--workers",
            "3",
            "--out",
            "/tmp/x",
        ]))
        .unwrap();
        let protocol = options.protocol();
        assert_eq!(protocol.cases_per_error(), 4);
        assert_eq!(protocol.observation_ms, 5_000);
        assert_eq!(protocol.workers, 3);
        assert_eq!(options.out_dir, PathBuf::from("/tmp/x"));
    }

    #[test]
    fn rejects_unknown_flags_and_missing_values() {
        assert!(CliOptions::parse(&args(&["--bogus"])).is_err());
        assert!(CliOptions::parse(&args(&["--scale"])).is_err());
        assert!(CliOptions::parse(&args(&["--scale", "two"])).is_err());
    }
}
