//! Minimal shared argument parsing for the table/figure binaries.
//!
//! Flags understood by every binary:
//!
//! * `--scale <n>` — use an `n × n` test-case grid instead of the
//!   paper's 5 × 5;
//! * `--observation <ms>` — shorten the 40 s observation window;
//! * `--workers <n>` — worker threads (default: all cores);
//! * `--out <dir>` — artefact directory (default `results/`);
//! * `--load <file>` — render from a previously saved JSON report
//!   instead of re-running the campaign;
//! * `--journal <file>` — stream every completed trial to a crash-safe
//!   JSONL journal;
//! * `--resume` — replay the journal named by `--journal` and run only
//!   the missing trials;
//! * `--from-journal <file>` — rebuild the reports from a journal
//!   instead of running any trials;
//! * `--check-golden` — after the campaign, compare the reports against
//!   the committed goldens (exit 1 on divergence);
//! * `--refresh-golden` — write the campaign's artefacts into the
//!   golden directory;
//! * `--golden-dir <dir>` — golden directory (default `results/golden`);
//! * `--trace` — enable the differential trace oracle: on a golden-run
//!   or golden-table failure, dump a minimal reproducer bundle
//!   (`fic::trace::ReproBundle`) for the offending ⟨error, case⟩;
//! * `--repro-dir <dir>` — where reproducer bundles go (default
//!   `results/repro`);
//! * `--no-checkpoint` — disable checkpointed trial execution (prefix
//!   forking and steady-state fast-forward) and replay every trial from
//!   t = 0. Results are bit-identical either way; this is the slow
//!   cross-check and benchmark baseline;
//! * `--scalar` — run checkpointed trials one at a time instead of in
//!   lockstep batches (the pre-batching execution path). Results are
//!   bit-identical either way; this is the differential cross-check
//!   the batch-equivalence suite runs against;
//! * `--batch-size <n>` — cap the number of lanes per lockstep batch
//!   (default [`crate::campaign::DEFAULT_BATCH_SIZE`]; `0` = all trials of a
//!   test case in one batch). Split points cannot change any result;
//! * `--no-analytic-settle` — restrict settle proofs to exact state
//!   recurrence, disabling the analytic absorbing-band relaxation
//!   (`arrestor::settle`). Results are bit-identical either way; trials
//!   whose pressures are still creeping toward their fixed point run
//!   longer;
//! * `--no-prune` — execute statically-inert errors (`fic::prune`)
//!   instead of sharing their test case's reference trial. Results are
//!   bit-identical either way; this is the differential cross-check
//!   for the dominance-prune pass;
//! * `--shard k/n` — run only shard `k` of `n` (1-based) of the trial
//!   grid: a deterministic slice recorded in the journal header.
//!   Combine shard journals with `merge_journals`;
//! * `--telemetry-jsonl <file>` — append periodic machine-readable
//!   progress snapshots (one JSON object per line) to `file`;
//! * `--no-telemetry` — disable the metrics registry, the live
//!   progress line and the end-of-campaign telemetry report;
//! * `--attribution` — record one assertion-level attribution event
//!   per trial (first-firing assertion, signal class, latency split),
//!   fold them into `<out>/attribution/<producer>.json`, and append
//!   them to the journal when one is attached;
//! * `--no-attribution` — explicitly disable attribution (the
//!   default; the pair of flags exists so scripts can be explicit);
//! * `--profile` — count every assertion check per EA during the run,
//!   sample per-check wall clock afterwards, and write the
//!   schema-versioned cost profile to `<out>/profile/` (see
//!   `fic::profile`); never changes a result bit;
//! * `--metrics-file <path>` — additionally write the end-of-campaign
//!   telemetry snapshot as Prometheus text exposition format 0.0.4
//!   (the same body the fleet server serves on `/metrics`);
//! * `--convergence-jsonl <file>` — enable the coverage-convergence
//!   monitor (`fic::convergence`) and append periodic per-cell
//!   Wilson-CI snapshot lines to `file`; also writes the final report
//!   under `<out>/convergence/`; never changes a result bit;
//! * `--precision-report` — enable the convergence monitor and print
//!   the advisory end-of-campaign precision summary (per-cell interval
//!   half-widths and trials-remaining forecast) on stderr; also writes
//!   the report under `<out>/convergence/`.

use std::path::PathBuf;
use std::sync::Arc;

use crate::attribution;
use crate::campaign::{AttributionSink, CampaignRunner, ConvergenceSink, ProgressOptions};
use crate::convergence;
use crate::profile;
use crate::protocol::Protocol;
use crate::telemetry;

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct CliOptions {
    /// Grid scale override (`n × n`).
    pub scale: Option<usize>,
    /// Observation-window override, ms.
    pub observation_ms: Option<u64>,
    /// Worker-thread override.
    pub workers: Option<usize>,
    /// Artefact output directory.
    pub out_dir: PathBuf,
    /// Load a saved report instead of running.
    pub load: Option<PathBuf>,
    /// Stream completed trials to this journal file.
    pub journal: Option<PathBuf>,
    /// Replay the `--journal` file and run only missing trials.
    pub resume: bool,
    /// Rebuild reports from a completed journal; no trials run.
    pub from_journal: Option<PathBuf>,
    /// Compare the results against the committed goldens.
    pub check_golden: bool,
    /// Overwrite the committed goldens with the current results.
    pub refresh_golden: bool,
    /// Where the golden artefacts live.
    pub golden_dir: PathBuf,
    /// Dump differential-oracle reproducer bundles on failure.
    pub trace: bool,
    /// Where reproducer bundles are written.
    pub repro_dir: PathBuf,
    /// Replay every trial from t = 0 instead of forking cached
    /// fault-free prefixes.
    pub no_checkpoint: bool,
    /// Run checkpointed trials one at a time instead of in lockstep
    /// batches.
    pub scalar: bool,
    /// Lane cap per lockstep batch (`None` = whole case per batch).
    pub batch_size: Option<usize>,
    /// Restrict settle proofs to exact recurrence (no analytic
    /// absorbing band).
    pub no_analytic_settle: bool,
    /// Execute statically-inert errors instead of pruning them.
    pub no_prune: bool,
    /// Run only this deterministic slice of the trial grid:
    /// `(index, count)`, 1-based, from `--shard k/n`.
    pub shard: Option<(usize, usize)>,
    /// Append machine-readable progress snapshots to this JSONL file.
    pub telemetry_jsonl: Option<PathBuf>,
    /// Disable telemetry collection, progress and reports entirely.
    pub no_telemetry: bool,
    /// Record assertion-level attribution events and write the
    /// aggregate report under `<out>/attribution/`.
    pub attribution: bool,
    /// Count per-EA assertion checks and write the cost profile under
    /// `<out>/profile/`.
    pub profile: bool,
    /// Also write the telemetry snapshot as Prometheus text exposition
    /// to this file.
    pub metrics_file: Option<PathBuf>,
    /// Stream periodic coverage-convergence snapshots (per-cell Wilson
    /// CIs) to this JSONL file; implies the convergence monitor.
    pub convergence_jsonl: Option<PathBuf>,
    /// Print the advisory precision forecast at the end of the run;
    /// implies the convergence monitor.
    pub precision_report: bool,
}

impl Default for CliOptions {
    fn default() -> Self {
        CliOptions {
            scale: None,
            observation_ms: None,
            workers: None,
            out_dir: PathBuf::from("results"),
            load: None,
            journal: None,
            resume: false,
            from_journal: None,
            check_golden: false,
            refresh_golden: false,
            golden_dir: PathBuf::from("results/golden"),
            trace: false,
            repro_dir: PathBuf::from("results/repro"),
            no_checkpoint: false,
            scalar: false,
            batch_size: None,
            no_analytic_settle: false,
            no_prune: false,
            shard: None,
            telemetry_jsonl: None,
            no_telemetry: false,
            attribution: false,
            profile: false,
            metrics_file: None,
            convergence_jsonl: None,
            precision_report: false,
        }
    }
}

impl CliOptions {
    /// Parses `std::env::args`; exits with a usage message on bad input.
    pub fn from_env() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match Self::parse(&args) {
            Ok(options) => options,
            Err(message) => {
                eprintln!("{message}");
                eprintln!(
                    "usage: [--scale n] [--observation ms] [--workers n] [--out dir] \
                     [--load file] [--journal file] [--resume] [--from-journal file] \
                     [--check-golden] [--refresh-golden] [--golden-dir dir] \
                     [--trace] [--repro-dir dir] [--no-checkpoint] [--scalar] \
                     [--batch-size n] [--no-analytic-settle] [--no-prune] \
                     [--shard k/n] \
                     [--telemetry-jsonl file] [--no-telemetry] \
                     [--attribution] [--no-attribution] \
                     [--profile] [--metrics-file path] \
                     [--convergence-jsonl file] [--precision-report]"
                );
                std::process::exit(2);
            }
        }
    }

    /// Parses an argument list.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the offending flag or value.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut options = CliOptions::default();
        let mut no_attribution = false;
        let mut iter = args.iter();
        while let Some(flag) = iter.next() {
            let mut value = |name: &str| {
                iter.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} needs a value"))
            };
            match flag.as_str() {
                "--scale" => {
                    options.scale = Some(
                        value("--scale")?
                            .parse()
                            .map_err(|e| format!("--scale: {e}"))?,
                    );
                }
                "--observation" => {
                    options.observation_ms = Some(
                        value("--observation")?
                            .parse()
                            .map_err(|e| format!("--observation: {e}"))?,
                    );
                }
                "--workers" => {
                    options.workers = Some(
                        value("--workers")?
                            .parse()
                            .map_err(|e| format!("--workers: {e}"))?,
                    );
                }
                "--out" => options.out_dir = PathBuf::from(value("--out")?),
                "--load" => options.load = Some(PathBuf::from(value("--load")?)),
                "--journal" => options.journal = Some(PathBuf::from(value("--journal")?)),
                "--resume" => options.resume = true,
                "--from-journal" => {
                    options.from_journal = Some(PathBuf::from(value("--from-journal")?));
                }
                "--check-golden" => options.check_golden = true,
                "--refresh-golden" => options.refresh_golden = true,
                "--golden-dir" => options.golden_dir = PathBuf::from(value("--golden-dir")?),
                "--trace" => options.trace = true,
                "--repro-dir" => options.repro_dir = PathBuf::from(value("--repro-dir")?),
                "--no-checkpoint" => options.no_checkpoint = true,
                "--scalar" => options.scalar = true,
                "--batch-size" => {
                    options.batch_size = Some(
                        value("--batch-size")?
                            .parse()
                            .map_err(|e| format!("--batch-size: {e}"))?,
                    );
                }
                "--no-analytic-settle" => options.no_analytic_settle = true,
                "--no-prune" => options.no_prune = true,
                "--shard" => options.shard = Some(parse_shard(&value("--shard")?)?),
                "--telemetry-jsonl" => {
                    options.telemetry_jsonl = Some(PathBuf::from(value("--telemetry-jsonl")?));
                }
                "--no-telemetry" => options.no_telemetry = true,
                "--attribution" => options.attribution = true,
                "--no-attribution" => no_attribution = true,
                "--profile" => options.profile = true,
                "--metrics-file" => {
                    options.metrics_file = Some(PathBuf::from(value("--metrics-file")?));
                }
                "--convergence-jsonl" => {
                    options.convergence_jsonl = Some(PathBuf::from(value("--convergence-jsonl")?));
                }
                "--precision-report" => options.precision_report = true,
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        if options.resume && options.journal.is_none() {
            return Err("--resume needs --journal <file>".to_owned());
        }
        if options.no_telemetry && options.telemetry_jsonl.is_some() {
            return Err("--no-telemetry contradicts --telemetry-jsonl".to_owned());
        }
        if options.from_journal.is_some() && (options.journal.is_some() || options.resume) {
            return Err("--from-journal replays a finished journal; it cannot be \
                 combined with --journal/--resume"
                .to_owned());
        }
        if options.attribution && no_attribution {
            return Err("--attribution contradicts --no-attribution".to_owned());
        }
        if options.no_telemetry && options.metrics_file.is_some() {
            return Err("--no-telemetry contradicts --metrics-file".to_owned());
        }
        if no_attribution {
            options.attribution = false;
        }
        Ok(options)
    }

    /// Builds the protocol these options describe.
    pub fn protocol(&self) -> Protocol {
        let mut protocol = match self.scale {
            Some(n) => Protocol::scaled(n, simenv::spec::OBSERVATION_MS),
            None => Protocol::paper(),
        };
        if let Some(ms) = self.observation_ms {
            protocol.observation_ms = ms;
        }
        if let Some(w) = self.workers {
            protocol.workers = w;
        }
        protocol
    }

    /// A fresh metrics registry, or `None` under `--no-telemetry`.
    pub fn registry(&self) -> Option<Arc<telemetry::Registry>> {
        (!self.no_telemetry).then(|| Arc::new(telemetry::Registry::new()))
    }

    /// A campaign runner configured from these options: checkpointing,
    /// shard slice, and (when `registry` is given) metrics plus live
    /// progress with the optional `--telemetry-jsonl` stream.
    pub fn runner(&self, registry: Option<&Arc<telemetry::Registry>>) -> CampaignRunner {
        let mut runner = CampaignRunner::new(self.protocol())
            .with_checkpointing(!self.no_checkpoint)
            .with_batching(!self.scalar)
            .with_analytic_settle(!self.no_analytic_settle)
            .with_pruning(!self.no_prune)
            .with_attribution(self.attribution);
        if self.profile {
            runner = runner.with_profile(Arc::new(profile::ProfileRecorder::new()));
        }
        if self.convergence_enabled() {
            let mut sink = ConvergenceSink::new();
            if let Some(path) = &self.convergence_jsonl {
                match std::fs::File::create(path) {
                    Ok(file) => sink = sink.with_stream(file, 0),
                    Err(e) => {
                        eprintln!("failed to open convergence stream {}: {e}", path.display())
                    }
                }
            }
            runner = runner.with_convergence(Arc::new(sink));
        }
        if let Some(lanes) = self.batch_size {
            runner = runner.with_batch_size(lanes);
        }
        if let Some((index, count)) = self.shard {
            runner = runner.with_shard(index, count);
        }
        if let Some(registry) = registry {
            runner = runner
                .with_telemetry(Arc::clone(registry))
                .with_progress(ProgressOptions {
                    live: true,
                    stream_path: self.telemetry_jsonl.clone(),
                    stream_every: 0,
                });
        }
        runner
    }

    /// End-of-campaign telemetry emission: prints the human summary on
    /// stderr and writes the schema-versioned report under
    /// `<out>/telemetry/` (labelled by `producer`, with the shard
    /// suffixed so parallel shard runs never clobber each other).
    pub fn emit_telemetry(&self, producer: &str, registry: &telemetry::Registry) {
        let snapshot = registry.snapshot();
        eprint!("{}", telemetry::render_summary(&snapshot));
        if let Some(path) = &self.metrics_file {
            match std::fs::write(path, snapshot.to_prometheus()) {
                Ok(()) => eprintln!("metrics exposition written to {}", path.display()),
                Err(e) => eprintln!("failed to write metrics exposition: {e}"),
            }
        }
        let run =
            telemetry::RunMetadata::for_run(&self.protocol(), !self.no_checkpoint, self.shard);
        let report = telemetry::TelemetryReport::assemble(producer, run, snapshot);
        let label = match self.shard {
            Some((index, count)) => format!("{producer}-shard-{index}-of-{count}"),
            None => producer.to_owned(),
        };
        match telemetry::write_report(&self.out_dir.join("telemetry"), &label, &report) {
            Ok(path) => eprintln!("telemetry report written to {}", path.display()),
            Err(e) => eprintln!("failed to write telemetry report: {e}"),
        }
    }

    /// End-of-campaign attribution emission: prints the league table
    /// and coverage decomposition on stderr and writes the
    /// schema-versioned report under `<out>/attribution/` (shard
    /// suffixed, like telemetry).
    pub fn emit_attribution(&self, producer: &str, sink: &AttributionSink) {
        let aggregate = sink.snapshot();
        eprint!("{}", attribution::render_league(&aggregate));
        let run =
            telemetry::RunMetadata::for_run(&self.protocol(), !self.no_checkpoint, self.shard);
        let report = attribution::AttributionReport::assemble(producer, run, aggregate);
        eprint!(
            "{}",
            attribution::render_decomposition(&report.decomposition)
        );
        let label = match self.shard {
            Some((index, count)) => format!("{producer}-shard-{index}-of-{count}"),
            None => producer.to_owned(),
        };
        match attribution::write_report(&self.out_dir.join("attribution"), &label, &report) {
            Ok(path) => eprintln!("attribution report written to {}", path.display()),
            Err(e) => eprintln!("failed to write attribution report: {e}"),
        }
    }

    /// End-of-campaign profile emission: samples per-check wall clock,
    /// prints the cost league table on stderr and writes the
    /// schema-versioned report under `<out>/profile/` (shard suffixed,
    /// like telemetry).
    pub fn emit_profile(&self, producer: &str, recorder: &profile::ProfileRecorder) {
        let wall = profile::sample_wall_ns();
        let run =
            telemetry::RunMetadata::for_run(&self.protocol(), !self.no_checkpoint, self.shard);
        let report = profile::ProfileReport::assemble(producer, run, recorder, Some(wall));
        eprint!("{}", profile::render_league(&report));
        let label = match self.shard {
            Some((index, count)) => format!("{producer}-shard-{index}-of-{count}"),
            None => producer.to_owned(),
        };
        match profile::write_report(&self.out_dir.join("profile"), &label, &report) {
            Ok(path) => eprintln!("profile report written to {}", path.display()),
            Err(e) => eprintln!("failed to write profile report: {e}"),
        }
    }

    /// Whether either convergence flag switched the monitor on.
    pub fn convergence_enabled(&self) -> bool {
        self.convergence_jsonl.is_some() || self.precision_report
    }

    /// End-of-campaign convergence emission: flushes a final snapshot
    /// line to the `--convergence-jsonl` stream, prints the advisory
    /// precision forecast under `--precision-report`, and writes the
    /// schema-versioned report under `<out>/convergence/` (shard
    /// suffixed, like telemetry).
    pub fn emit_convergence(&self, producer: &str, sink: &ConvergenceSink) {
        sink.flush_stream();
        let aggregate = sink.snapshot();
        let run =
            telemetry::RunMetadata::for_run(&self.protocol(), !self.no_checkpoint, self.shard);
        let report =
            convergence::ConvergenceReport::assemble(producer, run, aggregate, sink.delta());
        if self.precision_report {
            eprint!(
                "{}",
                convergence::render_coverage(&aggregate.coverage(producer, sink.delta()))
            );
        }
        let label = match self.shard {
            Some((index, count)) => format!("{producer}-shard-{index}-of-{count}"),
            None => producer.to_owned(),
        };
        match convergence::write_report(&self.out_dir.join("convergence"), &label, &report) {
            Ok(path) => eprintln!("convergence report written to {}", path.display()),
            Err(e) => eprintln!("failed to write convergence report: {e}"),
        }
    }
}

/// Parses a `k/n` shard spec (1-based, `1 ≤ k ≤ n`).
fn parse_shard(spec: &str) -> Result<(usize, usize), String> {
    let (index, count) = spec
        .split_once('/')
        .ok_or_else(|| format!("--shard: `{spec}` is not of the form k/n"))?;
    let index: usize = index
        .parse()
        .map_err(|e| format!("--shard index `{index}`: {e}"))?;
    let count: usize = count
        .parse()
        .map_err(|e| format!("--shard count `{count}`: {e}"))?;
    if count == 0 || index == 0 || index > count {
        return Err(format!(
            "--shard: index must satisfy 1 ≤ k ≤ n, got {index}/{count}"
        ));
    }
    Ok((index, count))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn defaults_to_paper_protocol() {
        let options = CliOptions::parse(&[]).unwrap();
        let protocol = options.protocol();
        assert_eq!(protocol.cases_per_error(), 25);
        assert_eq!(protocol.observation_ms, 40_000);
        assert_eq!(options.out_dir, PathBuf::from("results"));
        assert_eq!(options.golden_dir, PathBuf::from("results/golden"));
        assert!(!options.resume && !options.check_golden && !options.refresh_golden);
        assert!(options.journal.is_none() && options.from_journal.is_none());
        assert!(!options.trace);
        assert_eq!(options.repro_dir, PathBuf::from("results/repro"));
        assert!(!options.no_checkpoint);
    }

    #[test]
    fn parses_trace_flags() {
        let options = CliOptions::parse(&args(&["--trace", "--repro-dir", "/tmp/repro"])).unwrap();
        assert!(options.trace);
        assert_eq!(options.repro_dir, PathBuf::from("/tmp/repro"));
        assert!(CliOptions::parse(&args(&["--repro-dir"])).is_err());
    }

    #[test]
    fn parses_no_checkpoint() {
        let options = CliOptions::parse(&args(&["--no-checkpoint"])).unwrap();
        assert!(options.no_checkpoint);
    }

    #[test]
    fn parses_scalar_and_batch_size() {
        let options = CliOptions::parse(&[]).unwrap();
        assert!(!options.scalar);
        assert_eq!(options.batch_size, None);
        let runner = options.runner(None);
        assert!(runner.batching());
        assert_eq!(runner.batch_size(), crate::campaign::DEFAULT_BATCH_SIZE);

        let options = CliOptions::parse(&args(&["--scalar", "--batch-size", "16"])).unwrap();
        assert!(options.scalar);
        assert_eq!(options.batch_size, Some(16));
        let runner = options.runner(None);
        assert!(!runner.batching());
        assert_eq!(runner.batch_size(), 16);

        assert!(CliOptions::parse(&args(&["--batch-size"])).is_err());
        assert!(CliOptions::parse(&args(&["--batch-size", "many"])).is_err());
    }

    #[test]
    fn parses_settle_and_prune_escape_hatches() {
        let options = CliOptions::parse(&[]).unwrap();
        assert!(!options.no_analytic_settle && !options.no_prune);
        let runner = options.runner(None);
        assert!(runner.analytic_settle());
        assert!(runner.pruning());

        let options = CliOptions::parse(&args(&["--no-analytic-settle", "--no-prune"])).unwrap();
        assert!(options.no_analytic_settle && options.no_prune);
        let runner = options.runner(None);
        assert!(!runner.analytic_settle());
        assert!(!runner.pruning());
    }

    /// Every flag documented in the README's flag tables must be one
    /// that *some* parser knows — `fic::cli` for the table/figure
    /// binaries, or the fleet server/worker parsers for theirs — so
    /// the drift this PR fixes stays fixed.
    #[test]
    fn readme_documents_only_known_flags() {
        let readme =
            std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../README.md"))
                .expect("README.md at the repo root");
        // A parser "knows" a flag unless it rejects both the
        // with-value and the bare form as an unknown flag.
        fn unknown<T>(r: &Result<T, String>) -> bool {
            r.as_ref().err().is_some_and(|e| e.contains("unknown flag"))
        }
        let mut checked = 0;
        for line in readme.lines() {
            let Some(rest) = line.strip_prefix("| `--") else {
                continue;
            };
            let flag: String = rest
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '-')
                .collect();
            let flag = format!("--{flag}");
            // A plausible value for flags that take one; harmless
            // trailing junk is an "unknown flag" error for those that
            // don't, so probe both shapes.
            let value = if flag == "--shard" { "1/2" } else { "1" };
            let with_value = args(&[&flag, value]);
            let bare = args(&[&flag]);
            let cli_knows =
                !(unknown(&CliOptions::parse(&with_value)) && unknown(&CliOptions::parse(&bare)));
            let server_knows = !(unknown(&crate::fleet::ServerOptions::parse(&with_value))
                && unknown(&crate::fleet::ServerOptions::parse(&bare)));
            let worker_knows = !(unknown(&crate::fleet::WorkerOptions::parse(&with_value))
                && unknown(&crate::fleet::WorkerOptions::parse(&bare)));
            assert!(
                cli_knows || server_knows || worker_knows,
                "README documents `{flag}`, which no fic parser accepts"
            );
            checked += 1;
        }
        assert!(checked >= 20, "README flag table went missing ({checked})");
    }

    /// The reverse direction: every flag literal one of the parsers
    /// matches on must be documented (backticked) in the README, so a
    /// new flag cannot land without a row in a flag table. Flag
    /// literals are extracted from the parser sources up to their
    /// `#[cfg(test)]` modules — tests probe deliberately-unknown flags.
    #[test]
    fn readme_documents_every_parser_flag() {
        let readme =
            std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../README.md"))
                .expect("README.md at the repo root");
        // Flags the README documents: every `` `--name `` occurrence,
        // captured until the first non-flag character (rows write
        // operands as `` `--scale <n>` ``).
        let documented: std::collections::BTreeSet<String> = readme
            .match_indices("`--")
            .map(|(at, _)| {
                readme[at + 1..]
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '-')
                    .collect()
            })
            .collect();
        // Flags the parsers accept: every string literal of the shape
        // `"--name"` before the test module. The opener is assembled at
        // runtime so this test's own source text never matches itself.
        let opener = format!("{}--", '"');
        let sources = [
            ("cli.rs", include_str!("cli.rs")),
            ("fleet/server.rs", include_str!("fleet/server.rs")),
            ("fleet/worker.rs", include_str!("fleet/worker.rs")),
        ];
        let mut accepted = 0;
        for (file, source) in sources {
            let parser = source.split("#[cfg(test)]").next().unwrap();
            for (at, _) in parser.match_indices(&opener) {
                let name: String = parser[at + opener.len()..]
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '-')
                    .collect();
                if name.is_empty() || !parser[at + opener.len() + name.len()..].starts_with('"') {
                    continue;
                }
                let flag = format!("--{name}");
                assert!(
                    documented.contains(&flag),
                    "{file} accepts `{flag}` but the README does not document it"
                );
                accepted += 1;
            }
        }
        assert!(accepted >= 30, "flag extraction went missing ({accepted})");
    }

    #[test]
    fn parses_overrides() {
        let options = CliOptions::parse(&args(&[
            "--scale",
            "2",
            "--observation",
            "5000",
            "--workers",
            "3",
            "--out",
            "/tmp/x",
        ]))
        .unwrap();
        let protocol = options.protocol();
        assert_eq!(protocol.cases_per_error(), 4);
        assert_eq!(protocol.observation_ms, 5_000);
        assert_eq!(protocol.workers, 3);
        assert_eq!(options.out_dir, PathBuf::from("/tmp/x"));
    }

    #[test]
    fn parses_journal_and_golden_flags() {
        let options = CliOptions::parse(&args(&[
            "--journal",
            "results/campaign.jsonl",
            "--resume",
            "--check-golden",
            "--golden-dir",
            "results/golden-alt",
        ]))
        .unwrap();
        assert_eq!(
            options.journal,
            Some(PathBuf::from("results/campaign.jsonl"))
        );
        assert!(options.resume);
        assert!(options.check_golden);
        assert_eq!(options.golden_dir, PathBuf::from("results/golden-alt"));

        let options =
            CliOptions::parse(&args(&["--from-journal", "x.jsonl", "--refresh-golden"])).unwrap();
        assert_eq!(options.from_journal, Some(PathBuf::from("x.jsonl")));
        assert!(options.refresh_golden);
    }

    #[test]
    fn parses_shard_and_telemetry_flags() {
        let options = CliOptions::parse(&args(&[
            "--shard",
            "2/4",
            "--telemetry-jsonl",
            "/tmp/progress.jsonl",
        ]))
        .unwrap();
        assert_eq!(options.shard, Some((2, 4)));
        assert_eq!(
            options.telemetry_jsonl,
            Some(PathBuf::from("/tmp/progress.jsonl"))
        );
        assert!(!options.no_telemetry);
        let options = CliOptions::parse(&args(&["--no-telemetry"])).unwrap();
        assert!(options.no_telemetry);
    }

    #[test]
    fn rejects_bad_shards() {
        for bad in ["0/4", "5/4", "2", "a/b", "1/0", "/3"] {
            assert!(
                CliOptions::parse(&args(&["--shard", bad])).is_err(),
                "accepted --shard {bad}"
            );
        }
        assert!(
            CliOptions::parse(&args(&["--no-telemetry", "--telemetry-jsonl", "x.jsonl"])).is_err()
        );
    }

    #[test]
    fn parses_attribution_flags() {
        assert!(!CliOptions::parse(&[]).unwrap().attribution);
        assert!(
            CliOptions::parse(&args(&["--attribution"]))
                .unwrap()
                .attribution
        );
        assert!(
            !CliOptions::parse(&args(&["--no-attribution"]))
                .unwrap()
                .attribution
        );
        assert!(CliOptions::parse(&args(&["--attribution", "--no-attribution"])).is_err());
    }

    #[test]
    fn parses_profile_and_metrics_flags() {
        let options = CliOptions::parse(&[]).unwrap();
        assert!(!options.profile && options.metrics_file.is_none());
        assert!(options.runner(None).profile().is_none());

        let options =
            CliOptions::parse(&args(&["--profile", "--metrics-file", "/tmp/m.prom"])).unwrap();
        assert!(options.profile);
        assert_eq!(options.metrics_file, Some(PathBuf::from("/tmp/m.prom")));
        assert!(options.runner(None).profile().is_some());

        assert!(CliOptions::parse(&args(&["--metrics-file"])).is_err());
        assert!(CliOptions::parse(&args(&["--no-telemetry", "--metrics-file", "x"])).is_err());
    }

    #[test]
    fn parses_convergence_flags() {
        let options = CliOptions::parse(&[]).unwrap();
        assert!(options.convergence_jsonl.is_none() && !options.precision_report);
        assert!(!options.convergence_enabled());
        assert!(options.runner(None).convergence().is_none());

        let options = CliOptions::parse(&args(&[
            "--convergence-jsonl",
            "/tmp/conv.jsonl",
            "--precision-report",
        ]))
        .unwrap();
        assert_eq!(
            options.convergence_jsonl,
            Some(PathBuf::from("/tmp/conv.jsonl"))
        );
        assert!(options.precision_report && options.convergence_enabled());

        let options = CliOptions::parse(&args(&["--precision-report"])).unwrap();
        assert!(options.convergence_enabled());
        assert!(options.runner(None).convergence().is_some());

        assert!(CliOptions::parse(&args(&["--convergence-jsonl"])).is_err());
    }

    #[test]
    fn rejects_unknown_flags_and_missing_values() {
        assert!(CliOptions::parse(&args(&["--bogus"])).is_err());
        assert!(CliOptions::parse(&args(&["--scale"])).is_err());
        assert!(CliOptions::parse(&args(&["--scale", "two"])).is_err());
    }

    #[test]
    fn rejects_inconsistent_journal_flags() {
        assert!(CliOptions::parse(&args(&["--resume"])).is_err());
        assert!(CliOptions::parse(&args(&[
            "--from-journal",
            "a.jsonl",
            "--journal",
            "b.jsonl"
        ]))
        .is_err());
        assert!(CliOptions::parse(&args(&["--from-journal", "a.jsonl", "--resume"])).is_err());
    }
}
