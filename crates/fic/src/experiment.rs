//! One experiment run: an error, a test case, an observation window.

use arrestor::{RunConfig, System};
use memsim::BitFlip;
use serde::{Deserialize, Serialize};
use simenv::TestCase;

use crate::protocol::Protocol;

/// The outcome of one ⟨error, test case⟩ run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trial {
    /// Whether the arrestment violated a constraint (system failure).
    pub failed: bool,
    /// First detection timestamp of each mechanism EA1..EA7, ms.
    pub per_ea_first_ms: [Option<u64>; 7],
    /// Timestamp of the first injection, ms.
    pub first_injection_ms: u64,
    /// Final distance travelled, m (diagnostics).
    pub final_distance_m: f64,
}

impl Trial {
    /// First detection by *any* of the mechanisms in the given version.
    pub fn first_detection(&self, version: arrestor::EaSet) -> Option<u64> {
        version
            .iter()
            .filter_map(|ea| self.per_ea_first_ms[ea.index()])
            .min()
    }

    /// Whether the given version detected the error at least once.
    pub fn detected(&self, version: arrestor::EaSet) -> bool {
        self.first_detection(version).is_some()
    }

    /// Detection latency for a version: first injection → first
    /// detection (the paper's Table 8/9 metric).
    pub fn latency_ms(&self, version: arrestor::EaSet) -> Option<u64> {
        self.first_detection(version)
            .map(|t| t.saturating_sub(self.first_injection_ms))
    }
}

/// Runs one trial: the error is injected every
/// [`Protocol::injection_period_ms`] for the entire observation window
/// (injections may race the assertions, as in the paper), all mechanisms
/// log detections, and the run is classified for failure at the end.
pub fn run_trial(protocol: &Protocol, flip: BitFlip, case: TestCase) -> Trial {
    run_trial_impl(protocol, flip, case, false).0
}

/// [`run_trial`] with per-tick trace capture, for the differential
/// oracle (`fic::trace`). The returned [`Trial`] is identical to the
/// untraced one — recording observes, never influences.
pub fn run_trial_traced(
    protocol: &Protocol,
    flip: BitFlip,
    case: TestCase,
) -> (Trial, arrestor::Trace) {
    let (trial, trace) = run_trial_impl(protocol, flip, case, true);
    (trial, trace.expect("tracing was enabled"))
}

/// [`run_trial`] with periodic plant readout capture every
/// `record_every_ms` milliseconds, replayed straight through the full
/// window (the baseline the checkpointed recorded path is checked
/// against). The returned [`Trial`] is identical to [`run_trial`]'s.
pub fn run_trial_recorded(
    protocol: &Protocol,
    flip: BitFlip,
    case: TestCase,
    record_every_ms: u64,
) -> (Trial, simenv::Readout) {
    let config = RunConfig {
        observation_ms: protocol.observation_ms,
        record_every_ms,
        ..RunConfig::default()
    };
    let mut system = System::new(case, config);
    let period = protocol.injection_period_ms.max(1);
    while system.time_ms() < protocol.observation_ms {
        let t = system.time_ms();
        if t > 0 && t.is_multiple_of(period) {
            system.inject(flip);
        }
        system.tick();
    }
    let (trial, outcome) = finish_outcome(system, period);
    (trial, outcome.readout)
}

/// How a checkpointed trial actually executed — the execution-shape
/// facts the campaign telemetry aggregates. Separate from [`Trial`]
/// on purpose: results are result-bearing artefacts, execution shape
/// is observability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrialExecution {
    /// Simulation time at which the settle detector stopped the run,
    /// ms; `None` when the trial ran its full observation window.
    pub settle_stop_ms: Option<u64>,
    /// What proved the early stop sound.
    pub settle_proof: Option<arrestor::SettleProof>,
    /// Fingerprint captures the detector took.
    pub settle_captures: u64,
    /// Milliseconds of window actually simulated by this call
    /// (excludes the forked prefix).
    pub simulated_ms: u64,
    /// Milliseconds of window skipped (prefix fork + settle
    /// fast-forward).
    pub skipped_ms: u64,
    /// Assertion checks each mechanism EA1..EA7 executed over the
    /// trial's whole timeline (the forked fault-free prefix included —
    /// the target system runs its assertions there too). Input to the
    /// per-assertion cost profile; identical batched vs scalar.
    pub ea_checks: [u64; 7],
}

/// [`run_trial`] resumed from a fault-free prefix [`arrestor::Snapshot`]
/// instead of replaying the prefix from t = 0, with steady-state
/// fast-forward: once the [`arrestor::SettleDetector`] proves the run's
/// outputs are final, the remaining window is skipped.
///
/// The returned [`Trial`] is bit-identical to [`run_trial`]'s — the
/// prefix fork is a deep copy of a deterministic simulation, and the
/// detector only fires on a proven state recurrence (see
/// [`arrestor::checkpoint`] for the argument). The equivalence is
/// enforced by the checkpoint-equivalence test suite and by the
/// committed table fixtures.
///
/// `prefix` must come from [`fault_free_prefix`] for the same protocol
/// and case (checked in debug builds).
pub fn run_trial_checkpointed(
    protocol: &Protocol,
    flip: BitFlip,
    case: TestCase,
    prefix: &arrestor::Snapshot,
) -> Trial {
    run_trial_checkpointed_observed(protocol, flip, case, prefix).0
}

/// [`run_trial_checkpointed`] plus the [`TrialExecution`] shape the
/// telemetry layer records. The [`Trial`] is the same either way —
/// observing execution never influences it.
pub fn run_trial_checkpointed_observed(
    protocol: &Protocol,
    flip: BitFlip,
    case: TestCase,
    prefix: &arrestor::Snapshot,
) -> (Trial, TrialExecution) {
    run_trial_checkpointed_observed_with(protocol, flip, case, prefix, false)
}

/// [`run_trial_checkpointed_observed`] with the settle detector's
/// analytic absorbing-band relaxation switched on or off
/// ([`arrestor::SettleDetector::with_analytic`]). The [`Trial`] is
/// bit-identical either way — the band only changes *when* a run is
/// proven final, never what its outputs are — but the execution shape
/// (stop time, proof kind) differs, which is why the plain name pins
/// the historical `false` and the campaign layer passes its
/// `--no-analytic-settle` setting here explicitly.
pub fn run_trial_checkpointed_observed_with(
    protocol: &Protocol,
    flip: BitFlip,
    case: TestCase,
    prefix: &arrestor::Snapshot,
    analytic_settle: bool,
) -> (Trial, TrialExecution) {
    debug_assert_eq!(prefix.case(), case, "prefix belongs to another case");
    let mut system = prefix.resume();
    let resumed_at = system.time_ms();
    let period = protocol.injection_period_ms.max(1);
    let mut settle =
        arrestor::SettleDetector::new(&system, Some(flip), period).with_analytic(analytic_settle);

    let mut settle_stop_ms = None;
    while system.time_ms() < protocol.observation_ms {
        let t = system.time_ms();
        if settle.check(&system) {
            settle_stop_ms = Some(t);
            break;
        }
        if t > 0 && t.is_multiple_of(period) {
            system.inject(flip);
        }
        system.tick();
    }

    let stopped_at = system.time_ms();
    let execution = TrialExecution {
        settle_stop_ms,
        settle_proof: settle.proof(),
        settle_captures: settle.captures(),
        simulated_ms: stopped_at - resumed_at,
        skipped_ms: resumed_at + protocol.observation_ms.saturating_sub(stopped_at),
        ea_checks: system.master().detectors().check_counts(),
    };
    (finish_trial(system, period).0, execution)
}

/// One lane's outcome from [`run_case_batch`]: the slot ties it back
/// to the flip slice (and hence the campaign's error index).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchTrial {
    /// Index of this trial's flip in the slice given to
    /// [`run_case_batch`].
    pub slot: usize,
    /// The trial outcome — bit-identical to the scalar
    /// [`run_trial_checkpointed_observed`] result for the same flip.
    pub trial: Trial,
    /// The execution shape, for telemetry.
    pub execution: TrialExecution,
}

/// Runs every flip in `flips` against the same test case as one
/// lockstep batch ([`arrestor::batch`]): all lanes fork from `prefix`
/// once and step together, sharing the fault-free reference
/// environment until their command histories diverge.
///
/// Each returned [`Trial`] and [`TrialExecution`] is bit-identical to
/// what [`run_trial_checkpointed_observed`] produces for the same
/// flip — the batch changes the execution schedule, never the
/// results. Pinned by `tests/batch_equivalence.rs` and the lane
/// invariance properties in `crates/arrestor/tests/prop_batch.rs`.
pub fn run_case_batch(
    protocol: &Protocol,
    flips: &[BitFlip],
    case: TestCase,
    prefix: &arrestor::Snapshot,
) -> Vec<BatchTrial> {
    run_case_batch_with(protocol, flips, case, prefix, false)
}

/// [`run_case_batch`] with the analytic settle relaxation switched on
/// or off — the batched counterpart of
/// [`run_trial_checkpointed_observed_with`], with the same contract:
/// identical [`Trial`]s, different execution shape.
pub fn run_case_batch_with(
    protocol: &Protocol,
    flips: &[BitFlip],
    case: TestCase,
    prefix: &arrestor::Snapshot,
    analytic_settle: bool,
) -> Vec<BatchTrial> {
    debug_assert_eq!(prefix.case(), case, "prefix belongs to another case");
    let period = protocol.injection_period_ms.max(1);
    let config = arrestor::BatchConfig {
        observation_ms: protocol.observation_ms,
        injection_period_ms: protocol.injection_period_ms,
        analytic_settle,
    };
    arrestor::batch::run_lockstep(prefix, flips, &config)
        .into_iter()
        .map(|lane| {
            let execution = TrialExecution {
                settle_stop_ms: lane.settle_stop_ms,
                settle_proof: lane.settle_proof,
                settle_captures: lane.settle_captures,
                simulated_ms: lane.stopped_at_ms - lane.resumed_at_ms,
                skipped_ms: lane.resumed_at_ms
                    + protocol.observation_ms.saturating_sub(lane.stopped_at_ms),
                ea_checks: lane.system.master().detectors().check_counts(),
            };
            BatchTrial {
                slot: lane.slot,
                trial: finish_trial(lane.system, period).0,
                execution,
            }
        })
        .collect()
}

/// The reference trial an **inert** error shares: the fault-free
/// continuation of `prefix` through the same checkpointed trial loop
/// as [`run_trial_checkpointed_observed_with`], minus the injections.
///
/// An inert error (`fic::prune`) flips bits that no instruction ever
/// reads — dead stack space, or the `reserved`/`dbg_trace` RAM blocks —
/// so its trial's entire *read* history, and therefore its [`Trial`],
/// is bit-identical to this fault-free run's. The dominance-prune pass
/// executes this once per test case and shares the result across every
/// inert error of the case; `first_injection_ms` is stamped exactly as
/// the executed trial would stamp it. Pinned by the prune half of the
/// differential gate in `tests/settle_prune_equivalence.rs`.
pub fn run_reference_trial_with(
    protocol: &Protocol,
    case: TestCase,
    prefix: &arrestor::Snapshot,
    analytic_settle: bool,
) -> Trial {
    debug_assert_eq!(prefix.case(), case, "prefix belongs to another case");
    let mut system = prefix.resume();
    let period = protocol.injection_period_ms.max(1);
    let mut settle =
        arrestor::SettleDetector::new(&system, None, period).with_analytic(analytic_settle);
    while system.time_ms() < protocol.observation_ms {
        if settle.check(&system) {
            break;
        }
        system.tick();
    }
    finish_trial(system, period).0
}

/// [`run_trial_checkpointed`] for a readout-recording run: the prefix
/// must come from [`fault_free_prefix_recorded`] with the same sample
/// period. The settle detector stays enabled — its alignment absorbs
/// the sample grid — and when it stops the run early, the missing
/// periodic samples are reconstructed from the proven recurrence
/// ([`arrestor::System::backfill_readout`]), so both the [`Trial`] and
/// the returned sample series are bit-identical to
/// [`run_trial_recorded`]'s.
pub fn run_trial_checkpointed_recorded(
    protocol: &Protocol,
    flip: BitFlip,
    case: TestCase,
    prefix: &arrestor::Snapshot,
) -> (Trial, simenv::Readout) {
    debug_assert_eq!(prefix.case(), case, "prefix belongs to another case");
    let mut system = prefix.resume();
    let period = protocol.injection_period_ms.max(1);
    let mut settle = arrestor::SettleDetector::new(&system, Some(flip), period);

    while system.time_ms() < protocol.observation_ms {
        let t = system.time_ms();
        if settle.check(&system) {
            let d = settle
                .recurrence_ms()
                .expect("readout-mode settle proofs carry a distance");
            system.backfill_readout(d, protocol.observation_ms);
            break;
        }
        if t > 0 && t.is_multiple_of(period) {
            system.inject(flip);
        }
        system.tick();
    }

    let (trial, outcome) = finish_outcome(system, period);
    (trial, outcome.readout)
}

/// Simulates the fault-free prefix of a trial — everything strictly
/// before the first injection instant — and freezes it for forking
/// with [`run_trial_checkpointed`].
pub fn fault_free_prefix(protocol: &Protocol, case: TestCase) -> arrestor::Snapshot {
    prefix_with_config(
        protocol,
        case,
        RunConfig {
            observation_ms: protocol.observation_ms,
            ..RunConfig::default()
        },
    )
}

/// [`fault_free_prefix`] with readout capture enabled, for forking
/// with [`run_trial_checkpointed_recorded`].
pub fn fault_free_prefix_recorded(
    protocol: &Protocol,
    case: TestCase,
    record_every_ms: u64,
) -> arrestor::Snapshot {
    prefix_with_config(
        protocol,
        case,
        RunConfig {
            observation_ms: protocol.observation_ms,
            record_every_ms,
            ..RunConfig::default()
        },
    )
}

fn prefix_with_config(
    protocol: &Protocol,
    case: TestCase,
    config: RunConfig,
) -> arrestor::Snapshot {
    let mut system = System::new(case, config);
    let first_injection = protocol
        .injection_period_ms
        .max(1)
        .min(protocol.observation_ms);
    while system.time_ms() < first_injection {
        system.tick();
    }
    system.checkpoint()
}

fn run_trial_impl(
    protocol: &Protocol,
    flip: BitFlip,
    case: TestCase,
    trace: bool,
) -> (Trial, Option<arrestor::Trace>) {
    let config = RunConfig {
        observation_ms: protocol.observation_ms,
        trace,
        ..RunConfig::default()
    };
    let mut system = System::new(case, config);
    let period = protocol.injection_period_ms.max(1);

    while system.time_ms() < protocol.observation_ms {
        let t = system.time_ms();
        if t > 0 && t.is_multiple_of(period) {
            system.inject(flip);
        }
        system.tick();
    }

    finish_trial(system, period)
}

fn finish_trial(system: System, first_injection_ms: u64) -> (Trial, Option<arrestor::Trace>) {
    let (trial, outcome) = finish_outcome(system, first_injection_ms);
    (trial, outcome.trace)
}

fn finish_outcome(system: System, first_injection_ms: u64) -> (Trial, arrestor::RunOutcome) {
    let outcome = system.finish();
    let mut per_ea_first_ms: [Option<u64>; 7] = [None; 7];
    for event in &outcome.detections {
        let idx = event.monitor.0;
        if idx < 7 && per_ea_first_ms[idx].is_none() {
            per_ea_first_ms[idx] = Some(event.at);
        }
    }
    let trial = Trial {
        failed: outcome.verdict.failed(),
        per_ea_first_ms,
        first_injection_ms,
        final_distance_m: outcome.verdict.final_distance_m,
    };
    (trial, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use arrestor::{EaId, EaSet, MasterNode};
    use memsim::Region;

    fn short_protocol() -> Protocol {
        Protocol::scaled(1, 6_000)
    }

    fn signal_addr(name: &str) -> usize {
        let node = MasterNode::new(120, EaSet::ALL);
        node.signals()
            .monitored()
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, a)| *a)
            .expect("monitored signal")
    }

    #[test]
    fn mscnt_msb_error_detected_quickly_by_ea6() {
        let flip = BitFlip::new(Region::AppRam, signal_addr("mscnt") + 1, 7);
        let trial = run_trial(&short_protocol(), flip, TestCase::new(12_000.0, 55.0));
        let ea6 = trial.per_ea_first_ms[EaId::Ea6.index()];
        assert!(ea6.is_some(), "EA6 should fire");
        // Detected within a few ms of the first injection at t = 20.
        assert!(ea6.unwrap() <= 25, "latency too long: {ea6:?}");
        assert_eq!(
            trial.latency_ms(EaSet::only(EaId::Ea6)),
            Some(ea6.unwrap() - 20)
        );
    }

    #[test]
    fn version_filtering_works() {
        let flip = BitFlip::new(Region::AppRam, signal_addr("mscnt") + 1, 7);
        let trial = run_trial(&short_protocol(), flip, TestCase::new(12_000.0, 55.0));
        assert!(trial.detected(EaSet::ALL));
        assert!(trial.detected(EaSet::only(EaId::Ea6)));
        // A mechanism that has nothing to do with mscnt stays silent.
        assert!(!trial.detected(EaSet::only(EaId::Ea5)));
        assert!(!trial.detected(EaSet::NONE));
    }

    #[test]
    fn set_value_msb_error_fails_and_is_detected() {
        // +32768 pu on the set point: massive overpressure.
        let flip = BitFlip::new(Region::AppRam, signal_addr("SetValue") + 1, 7);
        let trial = run_trial(
            &Protocol::scaled(1, 15_000),
            flip,
            TestCase::new(8_000.0, 40.0),
        );
        assert!(trial.detected(EaSet::only(EaId::Ea1)), "EA1 silent");
        assert!(trial.failed, "light aircraft must fail under full pressure");
    }

    #[test]
    fn low_bit_out_value_error_neither_fails_nor_detects() {
        let flip = BitFlip::new(Region::AppRam, signal_addr("OutValue"), 1);
        let trial = run_trial(&short_protocol(), flip, TestCase::new(12_000.0, 55.0));
        assert!(!trial.detected(EaSet::ALL));
    }

    #[test]
    fn dead_stack_error_is_inert() {
        let flip = BitFlip::new(Region::Stack, 10, 3);
        let trial = run_trial(
            &Protocol::scaled(1, 25_000),
            flip,
            TestCase::new(12_000.0, 55.0),
        );
        assert!(!trial.detected(EaSet::ALL));
        assert!(!trial.failed);
    }

    #[test]
    fn case_batch_matches_scalar_checkpointed_trials() {
        let protocol = Protocol::scaled(2, 2_000);
        let case = TestCase::new(12_000.0, 55.0);
        let prefix = fault_free_prefix(&protocol, case);
        let flips = [
            BitFlip::new(Region::AppRam, signal_addr("SetValue") + 1, 7),
            BitFlip::new(Region::AppRam, signal_addr("OutValue"), 1),
            BitFlip::new(Region::AppRam, signal_addr("mscnt") + 1, 7),
            BitFlip::new(Region::Stack, 10, 3),
        ];
        let batched = run_case_batch(&protocol, &flips, case, &prefix);
        assert_eq!(batched.len(), flips.len());
        for (slot, &flip) in flips.iter().enumerate() {
            let (trial, execution) =
                run_trial_checkpointed_observed(&protocol, flip, case, &prefix);
            assert_eq!(batched[slot].slot, slot);
            assert_eq!(batched[slot].trial, trial, "flip {flip:?}");
            assert_eq!(batched[slot].execution, execution, "flip {flip:?}");
        }
    }

    #[test]
    fn kernel_stack_error_hangs_and_fails_undetected() {
        // Top of the stack: the ISR context. The node hangs, the valves
        // freeze, the aircraft overruns — and no assertion ever runs.
        let flip = BitFlip::new(Region::Stack, memsim::STACK_BYTES - 4, 0);
        let trial = run_trial(
            &Protocol::scaled(1, 25_000),
            flip,
            TestCase::new(12_000.0, 55.0),
        );
        assert!(trial.failed, "hung node must overrun");
        assert!(!trial.detected(EaSet::ALL));
    }
}
