//! Differential-oracle driver: determinism gate + per-error divergence
//! analysis.
//!
//! Phase 1 (always): every selected test case is recorded twice,
//! fault-free and independently, and the two traces are diffed. Any
//! divergence means the simulation is not deterministic — the oracle's
//! ground assumption — so the run dumps a reproducer bundle and exits 1.
//!
//! Phase 2 (with `--error S<k>` or `--e2 <n>`): the chosen error is
//! injected per the campaign protocol in every selected case; each
//! traced run is diffed against the memoised fault-free reference. The
//! report shows the first-divergence instant (time, scheduler slot,
//! signal), the propagation path, and the detection latency measured by
//! the assertions — cross-checking Tables 8–9: a detection can never
//! precede the first divergence. Per monitored signal, the fraction of
//! cases whose path reaches it is an empirical `Pprop` estimate.
//!
//! ```text
//! trace_diff [--scale n] [--observation ms] [--case idx]
//!            [--error S<k>] [--e2 <n>] [--repro-dir dir]
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use fic::error_set;
use fic::trace::{self, ReferenceCache, ReproBundle, ReproError};
use fic::{run_trial_traced, telemetry, Protocol};
use memsim::BitFlip;
use simenv::TestCase;

struct Options {
    scale: Option<usize>,
    observation_ms: Option<u64>,
    case: Option<usize>,
    error: Option<(String, BitFlip)>,
    repro_dir: PathBuf,
}

fn usage() -> ! {
    eprintln!(
        "usage: trace_diff [--scale n] [--observation ms] [--case idx] \
         [--error S<k>] [--e2 <n>] [--repro-dir dir]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut options = Options {
        scale: None,
        observation_ms: None,
        case: None,
        error: None,
        repro_dir: PathBuf::from("results/repro"),
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next().cloned().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage();
            })
        };
        match flag.as_str() {
            "--scale" => options.scale = Some(parse_num(&value("--scale"), "--scale")),
            "--observation" => {
                options.observation_ms = Some(parse_num(&value("--observation"), "--observation"));
            }
            "--case" => options.case = Some(parse_num(&value("--case"), "--case")),
            "--error" => {
                let spec = value("--error");
                let k: usize = parse_num(spec.trim_start_matches(['S', 's']), "--error");
                let errors = error_set::e1();
                let Some(error) = errors.get(k.wrapping_sub(1)) else {
                    eprintln!("--error: S{k} is outside S1..S{}", errors.len());
                    std::process::exit(2);
                };
                options.error = Some((format!("S{k}"), error.flip));
            }
            "--e2" => {
                let k: usize = parse_num(&value("--e2"), "--e2");
                let errors = error_set::e2();
                let Some(error) = errors.get(k.wrapping_sub(1)) else {
                    eprintln!("--e2: {k} is outside 1..{}", errors.len());
                    std::process::exit(2);
                };
                options.error = Some((format!("E2#{k}"), error.flip));
            }
            "--repro-dir" => options.repro_dir = PathBuf::from(value("--repro-dir")),
            other => {
                eprintln!("unknown flag `{other}`");
                usage();
            }
        }
    }
    options
}

fn parse_num<T: std::str::FromStr>(text: &str, flag: &str) -> T
where
    T::Err: std::fmt::Display,
{
    text.parse().unwrap_or_else(|e| {
        eprintln!("{flag}: {e}");
        usage();
    })
}

fn main() -> ExitCode {
    let options = parse_args();
    let mut protocol = match options.scale {
        Some(n) => Protocol::scaled(n, simenv::spec::OBSERVATION_MS),
        None => Protocol::paper(),
    };
    if let Some(ms) = options.observation_ms {
        protocol.observation_ms = ms;
    }
    let all_cases = protocol.grid.cases();
    let cases: Vec<TestCase> = match options.case {
        Some(idx) => {
            let Some(case) = all_cases.get(idx) else {
                eprintln!("--case: index {idx} is outside 0..{}", all_cases.len());
                return ExitCode::from(2);
            };
            vec![*case]
        }
        None => all_cases,
    };
    eprintln!(
        "protocol: {} case(s), {} ms window, {} ms injection period",
        cases.len(),
        protocol.observation_ms,
        protocol.injection_period_ms
    );

    // Phase 1: determinism gate. Two independent fault-free recordings
    // of every case must be bit-identical.
    let registry = telemetry::Registry::new();
    let cache = ReferenceCache::new(protocol.clone()).with_telemetry(&registry);
    for (idx, case) in cases.iter().enumerate() {
        let reference = cache.get(*case);
        let rerun = trace::record_reference(&protocol, *case);
        let diff = trace::diff(&reference, &rerun);
        if diff.diverged() {
            let first = diff.first.clone().expect("diverged");
            eprintln!(
                "NON-DETERMINISTIC: case {idx} (m = {} kg, v = {} m/s) diverged from \
                 its own re-run at t = {} ms, slot {}, signal {}",
                case.mass_kg, case.velocity_ms, first.t_ms, first.slot, first.signal
            );
            let bundle = ReproBundle::assemble(
                "fault-free re-run diverged (simulation must be deterministic)",
                &protocol,
                *case,
                None,
                None,
                &reference,
                &rerun,
            );
            match trace::write_repro(&options.repro_dir, &format!("nondet-case{idx}"), &bundle) {
                Ok(path) => eprintln!("reproducer written to {}", path.display()),
                Err(e) => eprintln!("failed to write reproducer: {e}"),
            }
            return ExitCode::FAILURE;
        }
        println!(
            "case {idx:>2} (m = {:>6} kg, v = {:>4} m/s): deterministic over {} ticks",
            case.mass_kg, case.velocity_ms, diff.compared_ticks
        );
    }
    println!("determinism gate: ok ({} case(s))", cases.len());

    // Phase 2: divergence analysis of one injected error.
    let Some((label, flip)) = options.error else {
        return ExitCode::SUCCESS;
    };
    println!();
    println!(
        "injecting {label} ({:?} byte {} bit {}) every {} ms:",
        flip.region, flip.addr, flip.bit, protocol.injection_period_ms
    );

    let monitored = [
        "SetValue",
        "IsValue",
        "i",
        "pulscnt",
        "ms_slot_nbr",
        "mscnt",
        "OutValue",
    ];
    let mut reached = [0usize; 7];
    let mut diverged_cases = 0usize;
    let mut failures = 0usize;
    for (idx, case) in cases.iter().enumerate() {
        let reference = cache.get(*case);
        let (trial, observed) = run_trial_traced(&protocol, flip, *case);
        let diff = trace::diff(&reference, &observed);
        trace::record_divergence_to_detection(&registry, &diff, &trial);
        let detection_ms = trial.first_detection(arrestor::EaSet::ALL);
        if diff.diverged() {
            diverged_cases += 1;
            for (k, signal) in monitored.iter().enumerate() {
                if diff.reaches(signal) {
                    reached[k] += 1;
                }
            }
        }
        let divergence_text = match &diff.first {
            Some(d) => format!(
                "first divergence t = {} ms, slot {}, {} ({} -> {})",
                d.t_ms, d.slot, d.signal, d.reference, d.observed
            ),
            None => "no divergence".to_owned(),
        };
        let detection_text = match detection_ms {
            Some(t) => format!(
                "detected at {t} ms (latency {} ms)",
                t.saturating_sub(trial.first_injection_ms)
            ),
            None => "undetected".to_owned(),
        };
        println!("case {idx:>2}: {divergence_text}; {detection_text}");
        if !diff.path.is_empty() {
            let shown: Vec<String> = diff
                .path
                .iter()
                .take(6)
                .map(|d| format!("{}@{}", d.signal, d.t_ms))
                .collect();
            let more = diff.path.len().saturating_sub(6);
            let suffix = if more > 0 {
                format!(" (+{more} more)")
            } else {
                String::new()
            };
            println!("         path: {}{}", shown.join(" -> "), suffix);
        }

        // The oracle's cross-check: an assertion can only fire on state
        // that differs from the fault-free run, so detection at or
        // before the first divergence is a contradiction.
        let contradiction = match (detection_ms, diff.first_divergence_ms()) {
            (Some(t_detect), Some(t_diverge)) => t_diverge > t_detect,
            (Some(_), None) => true,
            _ => false,
        };
        if contradiction {
            failures += 1;
            eprintln!(
                "ORACLE VIOLATION: case {idx} detected {label} before any recorded \
                 state diverged from the reference"
            );
            let bundle = ReproBundle::assemble(
                format!("detection precedes first divergence for {label}"),
                &protocol,
                *case,
                Some(ReproError::new(label.clone(), flip)),
                Some(trial.clone()),
                &reference,
                &observed,
            );
            match trace::write_repro(
                &options.repro_dir,
                &format!("oracle-{label}-case{idx}"),
                &bundle,
            ) {
                Ok(path) => eprintln!("reproducer written to {}", path.display()),
                Err(e) => eprintln!("failed to write reproducer: {e}"),
            }
        }
    }

    println!();
    println!(
        "{label}: {diverged_cases}/{} cases diverged (empirical Pprop to monitored signals):",
        cases.len()
    );
    for (k, signal) in monitored.iter().enumerate() {
        println!(
            "  {signal:<12} {:>3}/{} ({:.0}%)",
            reached[k],
            cases.len(),
            100.0 * reached[k] as f64 / cases.len() as f64
        );
    }
    let snapshot = registry.snapshot();
    eprint!("{}", telemetry::render_summary(&snapshot));
    let report = telemetry::TelemetryReport::assemble(
        "trace_diff",
        telemetry::RunMetadata::for_run(&protocol, false, None),
        snapshot,
    );
    match telemetry::write_report(&PathBuf::from("results/telemetry"), "trace_diff", &report) {
        Ok(path) => eprintln!("telemetry report written to {}", path.display()),
        Err(e) => eprintln!("failed to write telemetry report: {e}"),
    }

    if failures > 0 {
        eprintln!("{failures} oracle violation(s)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
