//! Regenerates paper Table 8: detection latencies per signal and
//! software version, from the E1 campaign.
//!
//! Prefers `--load results/e1.json` (written by `table7` or
//! `full_campaign`) so the campaign runs once for both tables;
//! `--from-journal results/campaign.jsonl` rebuilds the report from a
//! trial journal instead.

use fic::cli::CliOptions;
use fic::journal::Journal;
use fic::{error_set, golden, tables, E1Report};

fn main() {
    let options = CliOptions::from_env();
    let report: E1Report = if let Some(path) = &options.from_journal {
        let journal = Journal::load(path).expect("readable --from-journal file");
        let (e1, _) = journal
            .replay()
            .expect("journal matches the paper error sets");
        e1
    } else if let Some(path) = &options.load {
        let data = std::fs::read_to_string(path).expect("readable --load file");
        serde_json::from_str(&data).expect("valid saved E1 report")
    } else {
        let protocol = options.protocol();
        golden::validate_fault_free(&protocol).expect("golden runs must be clean");
        let errors = error_set::e1();
        eprintln!(
            "running E1: {} errors x {} cases...",
            errors.len(),
            protocol.cases_per_error()
        );
        let registry = options.registry();
        let runner = options.runner(registry.as_ref());
        let report = runner.run_e1(&errors);
        if let Some(registry) = &registry {
            options.emit_telemetry("table8", registry);
        }
        if let Some(sink) = runner.attribution() {
            options.emit_attribution("table8", sink);
        }
        if let Some(sink) = runner.convergence() {
            options.emit_convergence("table8", sink);
        }
        std::fs::create_dir_all(&options.out_dir).expect("create out dir");
        std::fs::write(
            options.out_dir.join("e1.json"),
            serde_json::to_string_pretty(&report).unwrap(),
        )
        .expect("write e1.json");
        report
    };
    print!("{}", tables::render_table8(&report));
}
