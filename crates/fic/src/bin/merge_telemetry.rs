//! Merges per-shard telemetry reports (`results/telemetry/*.json`)
//! into one fleet view — the observability side of campaign sharding:
//! `merge_journals` combines the trials, `merge_telemetry` combines
//! the metrics recorded while producing them.
//!
//! ```text
//! merge_telemetry <out.json> <in.json> [<in.json>...]
//! ```
//!
//! Every input must be a valid campaign-telemetry report of the pinned
//! schema version; snapshots merge with
//! [`fic::telemetry::TelemetrySnapshot::merge`] (counters add, gauges
//! max, histograms bucket-wise — associative and commutative, so input
//! order is irrelevant). The merged report keeps the first input's run
//! metadata with the shard cleared, and is itself re-validated before
//! being written.
//!
//! Note that a merged report's checkpoint-cache counters no longer obey
//! the fresh-single-run ground truth (`misses = Σ distinct cases`):
//! each shard misses its own cases once. `telemetry_check --shards n`
//! knows the sharded ground truth; plain `--report` schema validation
//! always applies.

use std::path::PathBuf;
use std::process::ExitCode;

use fic::telemetry::{TelemetryReport, TelemetrySnapshot};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 || args.iter().any(|a| a.starts_with("--")) {
        eprintln!("usage: merge_telemetry <out.json> <in.json> [<in.json>...]");
        return ExitCode::from(2);
    }
    let out_path = PathBuf::from(&args[0]);
    let inputs: Vec<PathBuf> = args[1..].iter().map(PathBuf::from).collect();
    if inputs
        .iter()
        .any(|p| p.canonicalize().ok() == out_path.canonicalize().ok() && out_path.exists())
    {
        eprintln!("refusing to merge {} into itself", out_path.display());
        return ExitCode::FAILURE;
    }

    let mut merged: Option<TelemetryReport> = None;
    let mut snapshot = TelemetrySnapshot::default();
    for path in &inputs {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("cannot read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let report: TelemetryReport = match serde_json::from_str(&text) {
            Ok(report) => report,
            Err(e) => {
                eprintln!(
                    "{} does not parse as a telemetry report: {e}",
                    path.display()
                );
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = report.validate() {
            eprintln!("{} is not a valid report: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!(
            "merging {} (producer {}, shard {})",
            path.display(),
            report.producer,
            report.run.shard.as_deref().unwrap_or("-")
        );
        snapshot.merge(&report.snapshot);
        merged.get_or_insert(report);
    }
    let Some(first) = merged else {
        eprintln!("no inputs merged");
        return ExitCode::FAILURE;
    };

    let mut run = first.run;
    run.shard = None; // the merged view covers the union of the shards
    let producer = format!("merge_telemetry({})", first.producer);
    let report = TelemetryReport::assemble(&producer, run, snapshot);
    if let Err(e) = report.validate() {
        eprintln!("merged report failed validation: {e}");
        return ExitCode::FAILURE;
    }

    let stem = out_path.file_stem().map_or_else(
        || "telemetry".to_owned(),
        |s| s.to_string_lossy().into_owned(),
    );
    let target = out_path
        .parent()
        .filter(|d| !d.as_os_str().is_empty())
        .map_or_else(|| PathBuf::from("."), std::path::Path::to_path_buf);
    match fic::telemetry::write_report(&target, &stem, &report) {
        Ok(path) => {
            eprintln!("merged {} report(s) into {}", inputs.len(), path.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("failed to write {}: {e}", out_path.display());
            ExitCode::FAILURE
        }
    }
}
