//! Combines shard journals into one journal covering the union of
//! their trials — the scale-out companion of `--shard k/n`:
//!
//! ```text
//! full_campaign --shard 1/3 --journal shard1.jsonl   # host A
//! full_campaign --shard 2/3 --journal shard2.jsonl   # host B
//! full_campaign --shard 3/3 --journal shard3.jsonl   # host C
//! merge_journals merged.jsonl shard1.jsonl shard2.jsonl shard3.jsonl
//! full_campaign --from-journal merged.jsonl          # full tables
//! ```
//!
//! Inputs must agree on the protocol and claim distinct shards
//! (duplicate ⟨campaign, error, case⟩ records are deduplicated
//! first-wins, so re-merging is idempotent). The output is a fresh,
//! unsharded journal that `--from-journal` and `--resume` accept.

use std::path::PathBuf;
use std::process::ExitCode;

use fic::journal;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: merge_journals <out.jsonl> <in.jsonl> [<in.jsonl> ...]");
        return ExitCode::from(2);
    }
    let out = PathBuf::from(&args[0]);
    let inputs: Vec<PathBuf> = args[1..].iter().map(PathBuf::from).collect();
    if inputs.contains(&out) {
        eprintln!("refusing to overwrite input {}", out.display());
        return ExitCode::from(2);
    }

    let merged = match journal::merge(&inputs) {
        Ok(journal) => journal,
        Err(e) => {
            eprintln!("merge failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if merged.truncated_tail {
        eprintln!("note: an input had a torn final line (crash evidence); dropped");
    }
    if let Err(e) = merged.write_to(&out) {
        eprintln!("failed to write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    let e1 = merged
        .records
        .iter()
        .filter(|r| r.campaign == journal::CampaignKind::E1)
        .count();
    eprintln!(
        "merged {} journal(s): {} records ({} E1 + {} E2) -> {}",
        inputs.len(),
        merged.records.len(),
        e1,
        merged.records.len() - e1,
        out.display()
    );
    ExitCode::SUCCESS
}
