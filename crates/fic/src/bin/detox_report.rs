//! Joins a campaign journal with an assertion cost profile into the
//! "detox" league table: which subsets of the seven EAs buy how much
//! detection coverage for how many runtime operations.
//!
//! The paper evaluates eight versions (EA1..EA7 individually, then all
//! seven). The journal records *every* mechanism's first detection per
//! trial (`per_ea_first_ms`), so coverage of any of the 128 subsets is
//! measurable from one all-mechanisms run — and the profile report
//! prices each mechanism in deterministic comparisons + mask probes
//! per check ([`fic::profile`]). This binary folds the two:
//!
//! * **measured coverage** of a subset `S` — the fraction of journaled
//!   trials where at least one mechanism in `S` detected;
//! * **predicted coverage** — the independence composition
//!   `1 − Π_{i∈S} (1 − pᵢ)` from the per-EA singleton rates, the same
//!   algebra the attribution decomposition uses; the gap between the
//!   two columns is the overlap structure the paper discusses
//!   (mechanisms watching the same signals fire together, so the
//!   independence bound overshoots);
//! * **cost** — `Σ_{i∈S} checks · ops_per_check` from the profile
//!   report, plus the sampled wall-clock view when the profile carries
//!   one.
//!
//! The league table keeps the Pareto front: subsets no other subset
//! beats on both coverage and cost. The full 128-row join lands in
//! `<out>/detox_report.json` (schema-versioned) for downstream tools.
//!
//! ```text
//! usage: detox_report <journal> --profile <file> [--out dir]
//! ```
//!
//! Exits 0 on success, 1 on unreadable/invalid inputs.

use std::path::PathBuf;
use std::process::ExitCode;

use arrestor::{EaId, EaSet};
use fic::journal::Journal;
use fic::profile::ProfileReport;
use serde::{Serialize, Value};

/// Schema version of the `detox_report.json` artefact.
const DETOX_SCHEMA_VERSION: u32 = 1;

/// The artefact's `kind` discriminator.
const DETOX_KIND: &str = "assertion-detox-report";

fn usage() -> ! {
    eprintln!("usage: detox_report <journal> --profile <file> [--out dir]");
    std::process::exit(2);
}

/// One subset's joined row.
struct SubsetRow {
    /// Bitmask over EA1..EA7 (bit k = EA(k+1)), 1..=127.
    mask: u8,
    /// Human name, `EA2+EA5` style.
    name: String,
    /// Fraction of journaled trials the subset detected.
    measured: f64,
    /// Independence composition of the singleton rates.
    predicted: f64,
    /// `Σ checks · ops_per_check` over the subset's mechanisms.
    cost_ops: u64,
    /// Sampled wall-clock total, when the profile carries a wall view.
    wall_ns: Option<f64>,
    /// Whether the row survives Pareto domination.
    on_front: bool,
}

fn main() -> ExitCode {
    let mut journal_path: Option<PathBuf> = None;
    let mut profile_path: Option<PathBuf> = None;
    let mut out_dir = PathBuf::from("results");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next().cloned().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage();
            })
        };
        match arg.as_str() {
            "--profile" => profile_path = Some(PathBuf::from(value("--profile"))),
            "--out" => out_dir = PathBuf::from(value("--out")),
            other if other.starts_with("--") => usage(),
            other if journal_path.is_none() => journal_path = Some(PathBuf::from(other)),
            _ => usage(),
        }
    }
    let (Some(journal_path), Some(profile_path)) = (journal_path, profile_path) else {
        usage();
    };

    let journal = match Journal::load(&journal_path) {
        Ok(journal) => journal,
        Err(e) => {
            eprintln!("cannot load journal {}: {e}", journal_path.display());
            return ExitCode::FAILURE;
        }
    };
    if journal.records.is_empty() {
        eprintln!("journal {} holds no trials", journal_path.display());
        return ExitCode::FAILURE;
    }
    let profile: ProfileReport = {
        let text = match std::fs::read_to_string(&profile_path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("cannot read profile {}: {e}", profile_path.display());
                return ExitCode::FAILURE;
            }
        };
        match serde_json::from_str(&text) {
            Ok(report) => report,
            Err(e) => {
                eprintln!(
                    "{} does not parse as a profile report: {e}",
                    profile_path.display()
                );
                return ExitCode::FAILURE;
            }
        }
    };
    if let Err(e) = profile.validate() {
        eprintln!("profile {}: INVALID: {e}", profile_path.display());
        return ExitCode::FAILURE;
    }

    let rows = join(&journal, &profile);
    print!("{}", render(&rows, journal.records.len()));

    let artefact = to_artefact(&rows, &journal, &profile);
    let path = out_dir.join("detox_report.json");
    if let Err(e) = std::fs::create_dir_all(&out_dir).and_then(|()| {
        let json = serde_json::to_string_pretty(&artefact).expect("artefact serialises");
        std::fs::write(&path, format!("{json}\n"))
    }) {
        eprintln!("failed to write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    eprintln!("detox report written to {}", path.display());
    ExitCode::SUCCESS
}

/// Builds the subset from a 7-bit mask.
fn subset(mask: u8) -> EaSet {
    EaId::ALL
        .iter()
        .filter(|ea| mask & (1 << ea.index()) != 0)
        .fold(EaSet::NONE, |set, &ea| set.union(EaSet::only(ea)))
}

/// `EA2+EA5` style subset name (`all` for the full set).
fn subset_name(mask: u8) -> String {
    if mask == 0b0111_1111 {
        return "all".to_owned();
    }
    let names: Vec<String> = EaId::ALL
        .iter()
        .filter(|ea| mask & (1 << ea.index()) != 0)
        .map(|ea| ea.to_string())
        .collect();
    names.join("+")
}

/// The full 128-row join, Pareto-marked, sorted by cost then mask.
fn join(journal: &Journal, profile: &ProfileReport) -> Vec<SubsetRow> {
    let trials = journal.records.len() as f64;
    // Singleton rates feed the independence prediction.
    let singleton: Vec<f64> = EaId::ALL
        .iter()
        .map(|&ea| {
            let hits = journal
                .records
                .iter()
                .filter(|r| r.trial.detected(EaSet::only(ea)))
                .count();
            hits as f64 / trials
        })
        .collect();
    let mut rows: Vec<SubsetRow> = (1u8..=127)
        .map(|mask| {
            let set = subset(mask);
            let hits = journal
                .records
                .iter()
                .filter(|r| r.trial.detected(set))
                .count();
            let predicted = 1.0
                - set
                    .iter()
                    .map(|ea| 1.0 - singleton[ea.index()])
                    .product::<f64>();
            let cost_ops: u64 = set
                .iter()
                .map(|ea| profile.per_ea[ea.index()].total_ops)
                .sum();
            let wall_ns = set
                .iter()
                .map(|ea| {
                    let row = &profile.per_ea[ea.index()];
                    row.wall_ns_per_check.map(|ns| ns * row.checks as f64)
                })
                .sum::<Option<f64>>();
            SubsetRow {
                mask,
                name: subset_name(mask),
                measured: hits as f64 / trials,
                predicted,
                cost_ops,
                wall_ns,
                on_front: false,
            }
        })
        .collect();
    // Pareto: a row is dominated when some other row has coverage ≥ and
    // cost ≤ with at least one strict. 128 rows — the quadratic scan is
    // instant and obviously correct.
    for k in 0..rows.len() {
        let dominated = rows.iter().any(|other| {
            (other.measured >= rows[k].measured && other.cost_ops < rows[k].cost_ops)
                || (other.measured > rows[k].measured && other.cost_ops <= rows[k].cost_ops)
        });
        rows[k].on_front = !dominated;
    }
    rows.sort_by(|a, b| a.cost_ops.cmp(&b.cost_ops).then(a.mask.cmp(&b.mask)));
    rows
}

/// The stdout league table: the Pareto front, cheapest first.
fn render(rows: &[SubsetRow], trials: usize) -> String {
    let mut out = String::new();
    out.push_str("detox league table (Pareto front of EA subsets)\n");
    out.push_str("------------------------------------------------\n");
    out.push_str("subset               measured  predicted      Δ   total ops\n");
    for row in rows.iter().filter(|r| r.on_front) {
        let delta = row.predicted - row.measured;
        out.push_str(&format!(
            "{:<20} {:>7.1}%  {:>8.1}%  {:>+5.1}%  {:>10}\n",
            row.name,
            100.0 * row.measured,
            100.0 * row.predicted,
            100.0 * delta,
            row.cost_ops
        ));
    }
    let front = rows.iter().filter(|r| r.on_front).count();
    out.push_str(&format!(
        "{front} of {} subsets on the front over {trials} trial(s); \
         full join in detox_report.json\n",
        rows.len()
    ));
    out
}

/// The schema-versioned JSON artefact.
fn to_artefact(rows: &[SubsetRow], journal: &Journal, profile: &ProfileReport) -> Value {
    let subsets: Vec<Value> = rows
        .iter()
        .map(|row| {
            let mut fields = vec![
                ("mask".to_owned(), Value::Int(i128::from(row.mask))),
                ("subset".to_owned(), Value::Str(row.name.clone())),
                ("measured".to_owned(), Value::Float(row.measured)),
                ("predicted".to_owned(), Value::Float(row.predicted)),
                ("cost_ops".to_owned(), Value::Int(i128::from(row.cost_ops))),
                ("pareto".to_owned(), Value::Bool(row.on_front)),
            ];
            if let Some(ns) = row.wall_ns {
                fields.push(("wall_ns".to_owned(), Value::Float(ns)));
            }
            Value::Object(fields)
        })
        .collect();
    Value::Object(vec![
        (
            "schema_version".to_owned(),
            Value::Int(i128::from(DETOX_SCHEMA_VERSION)),
        ),
        ("kind".to_owned(), Value::Str(DETOX_KIND.to_owned())),
        (
            "trials".to_owned(),
            Value::Int(journal.records.len() as i128),
        ),
        (
            "profile_producer".to_owned(),
            Value::Str(profile.producer.clone()),
        ),
        ("run".to_owned(), profile.run.to_value()),
        ("subsets".to_owned(), Value::Array(subsets)),
    ])
}
