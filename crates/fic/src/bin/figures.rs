//! Regenerates the paper's figures: the classification scheme (Fig 1),
//! the three continuous-signal examples (Fig 2, as CSV artefacts with a
//! cross-classification check), the non-linear state machine (Fig 3),
//! the software architecture with assertion placements (Fig 5/6 and
//! Table 4).

use fic::cli::CliOptions;
use fic::figures;

fn main() {
    let options = CliOptions::from_env();
    std::fs::create_dir_all(&options.out_dir).expect("create out dir");

    println!("{}", figures::fig1_taxonomy());

    println!("Figure 2. Continuous signal examples (CSV artefacts + cross-check).");
    let series = figures::fig2_series(7, 200);
    println!(
        "{:<6}{:<12}{:>10}{:>12}{:>12}{:>12}",
        "Sub", "Class", "Samples", "vs (a)", "vs (b)", "vs (c)"
    );
    for s in &series {
        let path = options
            .out_dir
            .join(format!("fig2{}.csv", s.label.trim_matches(['(', ')'])));
        std::fs::write(&path, s.to_csv()).expect("write fig2 csv");
        let violations: Vec<String> = series
            .iter()
            .map(|other| s.violations_under(&other.params).to_string())
            .collect();
        println!(
            "{:<6}{:<12}{:>10}{:>12}{:>12}{:>12}",
            s.label,
            s.class.to_string(),
            s.samples.len(),
            violations[0],
            violations[1],
            violations[2],
        );
    }
    println!("(diagonal = 0: each series satisfies exactly its own parameter set)\n");

    println!("Figure 3. Non-linear sequential discrete example.");
    let sm = figures::fig3_state_machine();
    for &d in sm.domain() {
        let targets: Vec<String> = sm
            .transitions_from(d)
            .map(|t| t.iter().map(|v| format!("v{v}")).collect())
            .unwrap_or_default();
        println!("  T(v{d}) = {{{}}}", targets.join(", "));
    }
    println!();

    println!("{}", figures::fig5_architecture());
}
