//! The fleet campaign server: serves named campaigns to `fleet_worker`
//! processes over the length-prefixed wire protocol, journals every
//! accepted slice crash-safely, and exposes live status over HTTP/SSE
//! on the same port.
//!
//! ```text
//! fleet_server [--listen host:port] [--campaign name]... [--once]
//!              [--scale n] [--observation ms] [--e1-limit n] [--e2-limit n]
//!              [--lease-ms ms] [--out dir] [--journal-dir dir]
//! ```
//!
//! With `--once` the server exits after every campaign converges and
//! the last worker disconnects, printing a per-campaign summary —
//! the CI `fleet-smoke` topology. Restarting against the same
//! `--journal-dir` resumes: recorded trials are pre-folded and only the
//! missing slices are queued.

use std::process::ExitCode;

use fic::fleet::{Server, ServerOptions};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match ServerOptions::parse(&args) {
        Ok(options) => options,
        Err(e) => {
            eprintln!("fleet_server: {e}");
            eprintln!(
                "usage: fleet_server [--listen host:port] [--campaign name]... [--once] \
                 [--scale n] [--observation ms] [--e1-limit n] [--e2-limit n] \
                 [--lease-ms ms] [--out dir] [--journal-dir dir]"
            );
            return ExitCode::from(2);
        }
    };
    let campaigns = options.campaign_specs();
    let server = match Server::bind(options, campaigns) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("fleet_server: cannot start: {e}");
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(addr) => println!("fleet_server: listening on {addr}"),
        Err(e) => eprintln!("fleet_server: listening (local address unavailable: {e})"),
    }
    match server.run() {
        Ok(summary) => {
            for outcome in &summary.campaigns {
                println!(
                    "fleet_server: campaign `{}` complete — {} trials this run, \
                     journal {}, artefacts {}",
                    outcome.name,
                    outcome.trials,
                    outcome.journal_path.display(),
                    outcome.out_dir.display()
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("fleet_server: {e}");
            ExitCode::FAILURE
        }
    }
}
