//! Rebuilds the assertion-level attribution report from a trial
//! journal: the per-assertion firing/latency league table, the
//! per-signal `Pen`/`Pprop`/`Pem`/`Pds` coverage decomposition, and the
//! algebra cross-check (`Pdetect = (Pen·Pprop + Pem)·Pds` recomposed
//! against the measured E2 RAM proportion's Wilson interval).
//!
//! Events are a pure function of the journaled trials, so any journal —
//! including ones written before attribution existed, like the
//! committed `results/campaign.jsonl` — decomposes after the fact.
//! Persisted attribution lines (from `--attribution` runs or a previous
//! `--oracle … --save-oracle` pass) overlay their differential-oracle
//! verdicts onto the derived events.
//!
//! ```text
//! attribution_report <journal.jsonl> [--out dir] [--label name]
//!     [--check-golden] [--golden-dir dir] [--oracle n] [--save-oracle]
//! ```
//!
//! * `--out dir` — artefact directory (default `results`; the report
//!   goes to `<out>/attribution/<label>.json`);
//! * `--label name` — report file stem (default: the journal's);
//! * `--check-golden` — cross-check every proportion against the golden
//!   `e1.json`/`e2.json` within Wilson-CI tolerance (exit 1 on
//!   divergence);
//! * `--golden-dir dir` — golden directory (default `results/golden`);
//! * `--oracle n` — run the differential oracle over the first `n`
//!   not-yet-enriched unmonitored-RAM E2 events (deterministic key
//!   order): each is re-run traced and diffed against the fault-free
//!   reference, yielding a masked/silent/reached verdict and an
//!   empirical `Pprop` sample. Expensive — each enrichment is a full
//!   traced observation window;
//! * `--save-oracle` — append the freshly enriched events to the
//!   journal so the verdicts survive `--resume` and `merge_journals`.
//!
//! Exits 0 when the report validates (and, when requested, matches the
//! goldens), 1 otherwise.

use std::path::PathBuf;
use std::process::ExitCode;

use fic::attribution::{self, AttributionReport};
use fic::journal::{Journal, JournalWriter};
use fic::telemetry::RunMetadata;
use fic::trace::ReferenceCache;
use fic::{error_set, E1Report, E2Report};

fn usage() -> ! {
    eprintln!(
        "usage: attribution_report <journal.jsonl> [--out dir] [--label name] \
         [--check-golden] [--golden-dir dir] [--oracle n] [--save-oracle]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut journal_path: Option<PathBuf> = None;
    let mut out_dir = PathBuf::from("results");
    let mut golden_dir = PathBuf::from("results/golden");
    let mut label: Option<String> = None;
    let mut check_golden = false;
    let mut oracle = 0usize;
    let mut save_oracle = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next().cloned().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage();
            })
        };
        match arg.as_str() {
            "--out" => out_dir = PathBuf::from(value("--out")),
            "--golden-dir" => golden_dir = PathBuf::from(value("--golden-dir")),
            "--label" => label = Some(value("--label")),
            "--check-golden" => check_golden = true,
            "--save-oracle" => save_oracle = true,
            "--oracle" => {
                oracle = value("--oracle").parse().unwrap_or_else(|e| {
                    eprintln!("--oracle: {e}");
                    usage();
                });
            }
            other if other.starts_with("--") => usage(),
            other if journal_path.is_none() => journal_path = Some(PathBuf::from(other)),
            _ => usage(),
        }
    }
    let Some(journal_path) = journal_path else {
        usage();
    };

    let journal = Journal::load(&journal_path).unwrap_or_else(|e| {
        eprintln!("cannot load {}: {e}", journal_path.display());
        std::process::exit(1);
    });
    if journal.truncated_tail {
        eprintln!("note: journal has a torn final line (crash evidence); dropped");
    }
    let mut events = attribution::events_from_journal(&journal).unwrap_or_else(|e| {
        eprintln!("journal does not match the paper error sets: {e}");
        std::process::exit(1);
    });
    let enriched_before = events.iter().filter(|e| e.propagation.is_some()).count();
    eprintln!(
        "{} events derived from {} journaled trials ({enriched_before} carrying oracle verdicts)",
        events.len(),
        journal.records.len()
    );

    if oracle > 0 {
        run_oracle(&journal, &mut events, oracle, save_oracle, &journal_path);
    }

    let mut aggregate = attribution::AttributionAggregate::new();
    for event in &events {
        aggregate.record(event);
    }

    let shard = journal.header.shard.map(|s| (s.index, s.count));
    let run = RunMetadata::for_run(&journal.header.protocol, true, shard);
    let report = AttributionReport::assemble("attribution_report", run, aggregate);

    print!("{}", attribution::render_league(&report.aggregate));
    println!();
    print!(
        "{}",
        attribution::render_decomposition(&report.decomposition)
    );

    let mut failures = 0usize;
    match report.validate() {
        Ok(()) => println!("report structure: ok"),
        Err(e) => {
            eprintln!("report structure: INVALID: {e}");
            failures += 1;
        }
    }
    match attribution::check_algebra(&report.aggregate) {
        Ok(()) => println!("coverage algebra: recomposed Pdetect within the measured interval"),
        Err(e) => {
            eprintln!("coverage algebra: FAILED: {e}");
            failures += 1;
        }
    }

    if check_golden {
        let golden_e1: E1Report = load_json(&golden_dir.join("e1.json"));
        let golden_e2: E2Report = load_json(&golden_dir.join("e2.json"));
        let divergences =
            attribution::check_against_golden(&report.aggregate, &golden_e1, &golden_e2);
        if divergences.is_empty() {
            println!("golden check: every proportion Wilson-equivalent to Tables 7-9");
        } else {
            eprintln!("golden check FAILED: {} divergence(s)", divergences.len());
            for divergence in &divergences {
                eprintln!("  {divergence}");
            }
            failures += divergences.len();
        }
    }

    let stem = label.unwrap_or_else(|| {
        journal_path.file_stem().map_or_else(
            || "campaign".to_owned(),
            |s| s.to_string_lossy().into_owned(),
        )
    });
    match attribution::write_report(&out_dir.join("attribution"), &stem, &report) {
        Ok(path) => eprintln!("attribution report written to {}", path.display()),
        Err(e) => {
            eprintln!("failed to write attribution report: {e}");
            failures += 1;
        }
    }

    if failures > 0 {
        eprintln!("{failures} attribution check(s) failed");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn load_json<T: serde::Deserialize>(path: &std::path::Path) -> T {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {}: {e}", path.display());
        std::process::exit(1);
    });
    serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("{} does not parse: {e}", path.display());
        std::process::exit(1);
    })
}

/// Enriches up to `budget` unmonitored-RAM E2 events with differential
/// oracle verdicts (deterministic key order), optionally persisting
/// them back into the journal.
fn run_oracle(
    journal: &Journal,
    events: &mut [attribution::AttributionEvent],
    budget: usize,
    save: bool,
    journal_path: &std::path::Path,
) {
    let e2_errors = error_set::e2();
    let reference = ReferenceCache::new(journal.header.protocol.clone());
    let mut candidates: Vec<usize> = (0..events.len())
        .filter(|&i| {
            let e = &events[i];
            e.campaign == fic::CampaignKind::E2
                && e.region == attribution::REGION_APP_RAM
                && e.target_ea.is_none()
                && e.propagation.is_none()
        })
        .collect();
    // All candidates are E2 events, so ⟨error, case⟩ orders them fully.
    candidates.sort_by_key(|&i| (events[i].error_number, events[i].case_index));
    candidates.truncate(budget);
    eprintln!(
        "oracle: enriching {} unmonitored-RAM E2 event(s) (traced re-runs)...",
        candidates.len()
    );
    let mut enriched = Vec::new();
    for i in candidates {
        let number = events[i].error_number;
        let Some(error) = e2_errors.iter().find(|e| e.number == number) else {
            continue;
        };
        if attribution::enrich_event(&mut events[i], error.flip, &reference) {
            enriched.push(events[i].clone());
        }
    }
    eprintln!("oracle: {} event(s) enriched", enriched.len());
    if save && !enriched.is_empty() {
        let result = JournalWriter::append_to(journal_path, &journal.header.protocol).and_then(
            |mut writer| {
                for event in &enriched {
                    writer.append_attribution(event)?;
                }
                writer.finish()
            },
        );
        match result {
            Ok(()) => eprintln!(
                "oracle: {} verdict(s) appended to {}",
                enriched.len(),
                journal_path.display()
            ),
            Err(e) => eprintln!("oracle: failed to persist verdicts: {e}"),
        }
    }
}
