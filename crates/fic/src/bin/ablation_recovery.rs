//! Recovery ablation: re-runs an E1-style campaign with the mechanisms'
//! recovery write-back enabled (paper §2's "the signal can be returned
//! to a valid state") and compares failure rates against the
//! detection-only configuration the paper evaluated.
//!
//! Uses the high-order bit errors (the failure-causing ones) of every
//! monitored signal. `--scale`/`--observation` shrink the run.

use fic::cli::CliOptions;
use fic::{error_set, recovery_study};

fn main() {
    let options = CliOptions::from_env();
    let protocol = options.protocol();
    let errors: Vec<_> = error_set::e1()
        .into_iter()
        .filter(|e| e.signal_bit >= 12)
        .collect();
    eprintln!(
        "running {} errors x {} cases x 3 configurations...",
        errors.len(),
        protocol.cases_per_error()
    );
    let study = recovery_study::run_study(&protocol, &errors);
    print!("{}", recovery_study::render(&study));
    std::fs::create_dir_all(&options.out_dir).expect("create out dir");
    std::fs::write(
        options.out_dir.join("recovery_study.json"),
        serde_json::to_string_pretty(&study).unwrap(),
    )
    .expect("write recovery_study.json");
    let baseline = study.detection_only.failure_rate();
    let repaired = study.hold_previous.failure_rate();
    if baseline > 0.0 {
        println!(
            "\nhold-previous write-back removes {:.0}% of failures",
            (1.0 - repaired / baseline) * 100.0
        );
    }
}
