//! Regenerates paper Table 6: the distribution of errors in error set E1.

use fic::cli::CliOptions;
use fic::{error_set, tables};

fn main() {
    let options = CliOptions::from_env();
    let protocol = options.protocol();
    let errors = error_set::e1();
    print!(
        "{}",
        tables::render_table6(&errors, protocol.cases_per_error())
    );
}
