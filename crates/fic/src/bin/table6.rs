//! Regenerates paper Table 6: the distribution of errors in error set
//! E1. With `--from-journal <file>` the per-error injection counts come
//! from the journal's recorded protocol instead of the CLI flags.

use fic::cli::CliOptions;
use fic::journal::Journal;
use fic::{error_set, tables};

fn main() {
    let options = CliOptions::from_env();
    let protocol = match &options.from_journal {
        Some(path) => {
            Journal::load(path)
                .expect("readable --from-journal file")
                .header
                .protocol
        }
        None => options.protocol(),
    };
    let errors = error_set::e1();
    print!(
        "{}",
        tables::render_table6(&errors, protocol.cases_per_error())
    );
}
