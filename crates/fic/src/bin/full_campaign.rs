//! Runs the complete evaluation of the paper: golden-run validation,
//! the E1 campaign (Tables 7 and 8) and the E2 campaign (Table 9),
//! saving JSON artefacts and the rendered tables under `results/`.
//!
//! Full protocol: 2 800 + 5 000 runs of 40 s each — minutes of wall
//! clock on a multicore machine. `--scale 2 --observation 5000` gives a
//! smoke-test variant.
//!
//! Crash safety: with `--journal results/campaign.jsonl` every
//! completed trial is streamed to a JSONL journal; re-running with
//! `--resume` replays the journal and executes only the missing trials.
//! `--from-journal <file>` rebuilds the tables from a journal without
//! running anything. `--check-golden` compares the resulting reports
//! against the committed goldens (exit 1 on divergence) and
//! `--refresh-golden` rewrites them.
//!
//! With `--trace`, failures produce a minimal reproducer: the
//! differential oracle re-runs the offending ⟨error, case⟩ with
//! per-tick trace capture, diffs it against the fault-free reference,
//! and dumps a `fic::trace::ReproBundle` JSON under `--repro-dir`
//! (default `results/repro`).
//!
//! Throughput: trials run checkpointed by default — the grid is grouped
//! by test case, the fault-free prefix is simulated once per case and
//! forked by every trial, and settled runs fast-forward to the end of
//! the window (bit-identical results; see PERFORMANCE.md).
//! `--no-checkpoint` forces the straight-line replay of every trial.
//!
//! Observability: unless `--no-telemetry` is given, the run collects
//! campaign/cache/settle/journal metrics, renders a live progress line
//! on stderr (when it is a terminal), optionally streams progress
//! snapshots to `--telemetry-jsonl <file>`, and writes a
//! schema-versioned report under `<out>/telemetry/` at the end (see
//! OBSERVABILITY.md). Telemetry never changes a result bit.
//!
//! Scale-out: `--shard k/n` runs only the k-th of n deterministic grid
//! slices; shard journals are combined with the `merge_journals`
//! binary and rendered with `--from-journal`.
//!
//! Attribution: `--attribution` additionally records one
//! assertion-level event per trial (first-firing assertion, signal
//! class, latency split), appends the events to the journal when one
//! is attached, and writes the aggregate report with the empirical
//! coverage decomposition under `<out>/attribution/` (see
//! OBSERVABILITY.md). Like telemetry, it never changes a result bit.
//! With `--from-journal` the events are re-derived from the journaled
//! trials instead.
//!
//! Cost profiling: `--profile` counts every assertion check per EA
//! during the run, samples per-check wall clock afterwards, and writes
//! the schema-versioned cost profile under `<out>/profile/`. Join it
//! with the attribution report via the `detox_report` binary for the
//! coverage-per-op Pareto table. `--metrics-file <path>` additionally
//! writes the telemetry snapshot as Prometheus text exposition.
//!
//! Convergence: `--convergence-jsonl <file>` streams periodic per-cell
//! Wilson-CI coverage snapshots while the campaign runs, and
//! `--precision-report` prints the advisory "trials remaining to reach
//! ±δ" forecast at the end. Either flag also writes the
//! schema-versioned convergence report under `<out>/convergence/`.
//! With `--from-journal` the report is re-derived from the journaled
//! trials alone. Like telemetry, convergence never changes a result
//! bit.

use std::time::Instant;

use fic::cli::CliOptions;
use fic::error_set::E1Error;
use fic::journal::{Journal, JournalWriter, ShardSpec};
use fic::trace::{self, ReproBundle, ReproError};
use fic::{error_set, golden, run_trial_traced, tables, Protocol};

fn main() {
    let options = CliOptions::from_env();
    std::fs::create_dir_all(&options.out_dir).expect("create out dir");

    let e1_errors = error_set::e1();
    let (protocol, e1_report, e2_report) = if let Some(path) = &options.from_journal {
        let journal = Journal::load(path).expect("readable --from-journal file");
        if journal.truncated_tail {
            eprintln!("note: journal has a torn final line (crash evidence); dropped");
        }
        let (e1, e2) = journal
            .replay()
            .expect("journal matches the paper error sets");
        eprintln!(
            "replayed {} journaled trials ({} E1 + {} E2)",
            journal.records.len(),
            e1.trials(),
            e2.trials()
        );
        if options.attribution {
            let aggregate = fic::attribution::aggregate_journal(&journal)
                .expect("journal matches the paper error sets");
            eprint!("{}", fic::attribution::render_league(&aggregate));
            let run = fic::telemetry::RunMetadata::for_run(&journal.header.protocol, true, None);
            let report =
                fic::attribution::AttributionReport::assemble("full_campaign", run, aggregate);
            eprint!(
                "{}",
                fic::attribution::render_decomposition(&report.decomposition)
            );
            match fic::attribution::write_report(
                &options.out_dir.join("attribution"),
                "full_campaign",
                &report,
            ) {
                Ok(path) => eprintln!("attribution report written to {}", path.display()),
                Err(e) => eprintln!("failed to write attribution report: {e}"),
            }
        }
        if options.convergence_enabled() {
            let aggregate = fic::convergence::aggregate_journal(&journal)
                .expect("journal matches the paper error sets");
            let delta = fic::convergence::DEFAULT_DELTA;
            if options.precision_report {
                eprint!(
                    "{}",
                    fic::convergence::render_coverage(&aggregate.coverage("full_campaign", delta))
                );
            }
            let run = fic::telemetry::RunMetadata::for_run(&journal.header.protocol, true, None);
            let report = fic::convergence::ConvergenceReport::assemble(
                "full_campaign",
                run,
                aggregate,
                delta,
            );
            let label = path.file_stem().map_or_else(
                || "full_campaign".to_owned(),
                |s| s.to_string_lossy().into_owned(),
            );
            match fic::convergence::write_report(
                &options.out_dir.join("convergence"),
                &label,
                &report,
            ) {
                Ok(path) => eprintln!("convergence report written to {}", path.display()),
                Err(e) => eprintln!("failed to write convergence report: {e}"),
            }
        }
        (journal.header.protocol, e1, e2)
    } else {
        let protocol = options.protocol();
        eprintln!(
            "protocol: {} cases/error, {} ms window, {} ms injection period, {} workers",
            protocol.cases_per_error(),
            protocol.observation_ms,
            protocol.injection_period_ms,
            protocol.effective_workers()
        );

        let t0 = Instant::now();
        eprintln!("[1/3] golden-run validation...");
        if let Err(violation) = golden::validate_fault_free(&protocol) {
            eprintln!("golden-run validation FAILED: {violation}");
            if options.trace {
                dump_fault_free_repro(&options, &protocol, &violation);
            } else {
                eprintln!("hint: re-run with --trace for a reproducer bundle");
            }
            std::process::exit(1);
        }
        eprintln!("      ok ({:.1?})", t0.elapsed());

        let registry = options.registry();
        let runner = options.runner(registry.as_ref());
        if let Some((index, count)) = options.shard {
            eprintln!("shard {index}/{count}: running that slice of the grid only");
            if options.check_golden {
                eprintln!(
                    "warning: a shard's tables cover a grid slice; the golden check will diverge"
                );
            }
        }
        let e2_errors = error_set::e2();

        let t1 = Instant::now();
        eprintln!(
            "[2/3] E1: {} errors x {} cases...",
            e1_errors.len(),
            protocol.cases_per_error()
        );
        let e1_report;
        let e2_report;
        match &options.journal {
            Some(journal_path) if options.resume => {
                e1_report = runner
                    .resume_e1(&e1_errors, journal_path)
                    .expect("resume E1 from journal");
                eprintln!("      done ({:.1?})", t1.elapsed());
                let t2 = Instant::now();
                eprintln!("[3/3] E2: {} errors...", e2_errors.len());
                e2_report = runner
                    .resume_e2(&e2_errors, journal_path)
                    .expect("resume E2 from journal");
                eprintln!("      done ({:.1?})", t2.elapsed());
            }
            Some(journal_path) => {
                let shard = options
                    .shard
                    .map(|(index, count)| ShardSpec { index, count });
                let mut writer = JournalWriter::create_sharded(journal_path, &protocol, shard)
                    .expect("create journal");
                if let Some(registry) = &registry {
                    writer =
                        writer.with_telemetry(fic::journal::JournalTelemetry::register(registry));
                }
                e1_report = runner
                    .run_e1_journaled(&e1_errors, &mut writer)
                    .expect("journaled E1 campaign");
                eprintln!("      done ({:.1?})", t1.elapsed());
                let t2 = Instant::now();
                eprintln!("[3/3] E2: {} errors...", e2_errors.len());
                e2_report = runner
                    .run_e2_journaled(&e2_errors, &mut writer)
                    .expect("journaled E2 campaign");
                writer.finish().expect("flush final journal batch");
                eprintln!("      done ({:.1?})", t2.elapsed());
            }
            None => {
                e1_report = runner.run_e1(&e1_errors);
                eprintln!("      done ({:.1?})", t1.elapsed());
                let t2 = Instant::now();
                eprintln!("[3/3] E2: {} errors...", e2_errors.len());
                e2_report = runner.run_e2(&e2_errors);
                eprintln!("      done ({:.1?})", t2.elapsed());
            }
        }

        if let Some(registry) = &registry {
            options.emit_telemetry("full_campaign", registry);
        }
        if let Some(sink) = runner.attribution() {
            options.emit_attribution("full_campaign", sink);
        }
        if let Some(recorder) = runner.profile() {
            options.emit_profile("full_campaign", recorder);
        }
        if let Some(sink) = runner.convergence() {
            options.emit_convergence("full_campaign", sink);
        }
        (protocol, e1_report, e2_report)
    };

    // Artefacts.
    std::fs::write(
        options.out_dir.join("e1.json"),
        serde_json::to_string_pretty(&e1_report).unwrap(),
    )
    .expect("write e1.json");
    std::fs::write(
        options.out_dir.join("e2.json"),
        serde_json::to_string_pretty(&e2_report).unwrap(),
    )
    .expect("write e2.json");

    let table6 = tables::render_table6(&e1_errors, protocol.cases_per_error());
    let table7 = tables::render_table7(&e1_report);
    let table8 = tables::render_table8(&e1_report);
    let table9 = tables::render_table9(&e2_report);
    for (name, text) in [
        ("table6.txt", &table6),
        ("table7.txt", &table7),
        ("table8.txt", &table8),
        ("table9.txt", &table9),
    ] {
        std::fs::write(options.out_dir.join(name), text).expect("write table");
    }

    println!("{table6}");
    println!("{table7}");
    println!("{table8}");
    println!("{table9}");
    if let Some(p_ds) = e1_report.p_ds() {
        println!("Pds (E1 total, all mechanisms)    = {:.1}%", p_ds * 100.0);
    }
    if let Some(p) = e2_report.p_detect() {
        println!("Pdetect (E2 total)                = {:.1}%", p * 100.0);
    }
    if let Some(analysis) = fic::coverage_report::analyse(&e1_report, &e2_report) {
        println!();
        print!("{}", fic::coverage_report::render(&analysis));
        std::fs::write(
            options.out_dir.join("coverage_analysis.json"),
            serde_json::to_string_pretty(&analysis).unwrap(),
        )
        .expect("write coverage_analysis.json");
    }
    eprintln!("artefacts written to {}", options.out_dir.display());

    if options.refresh_golden {
        golden::refresh_dir(
            &options.golden_dir,
            &e1_errors,
            protocol.cases_per_error(),
            &e1_report,
            &e2_report,
        )
        .expect("write golden artefacts");
        eprintln!("goldens refreshed in {}", options.golden_dir.display());
    }

    if options.check_golden {
        let divergences = golden::check_dir(
            &options.golden_dir,
            &e1_errors,
            protocol.cases_per_error(),
            &e1_report,
            &e2_report,
        )
        .expect("readable golden artefacts");
        if divergences.is_empty() {
            eprintln!("golden check: ok (within Powell-style confidence tolerances)");
        } else {
            eprintln!("golden check FAILED: {} divergent cells", divergences.len());
            for divergence in &divergences {
                eprintln!("  {divergence}");
            }
            if options.trace {
                dump_golden_check_repro(&options, &protocol, &e1_errors, &divergences);
            } else {
                eprintln!("hint: re-run with --trace for a reproducer bundle");
            }
            std::process::exit(1);
        }
    }
}

/// Reproducer for a fault-free violation: two independent fault-free
/// recordings of the offending case. Any divergence between them is
/// nondeterminism; none means the violation replays deterministically
/// from the bundled case alone.
fn dump_fault_free_repro(
    options: &CliOptions,
    protocol: &Protocol,
    violation: &golden::GoldenViolation,
) {
    let reference = trace::record_reference(protocol, violation.case);
    let rerun = trace::record_reference(protocol, violation.case);
    let bundle = ReproBundle::assemble(
        format!("{violation}"),
        protocol,
        violation.case,
        None,
        None,
        &reference,
        &rerun,
    );
    match trace::write_repro(&options.repro_dir, "fault-free-violation", &bundle) {
        Ok(path) => eprintln!("reproducer written to {}", path.display()),
        Err(e) => eprintln!("failed to write reproducer: {e}"),
    }
}

/// Reproducer for a golden-table divergence: the first divergent
/// Table 7/8 row names a monitored signal; its MSB error injected into
/// the middle grid case, traced and diffed against the fault-free
/// reference, shows where the behaviour departs. Table 9 (or
/// Total-row-only) divergences fall back to the mscnt MSB error — the
/// fastest-detected probe of the whole detection pipeline.
fn dump_golden_check_repro(
    options: &CliOptions,
    protocol: &Protocol,
    e1_errors: &[E1Error],
    divergences: &[golden::Divergence],
) {
    let named = divergences
        .iter()
        .filter(|d| d.table == "Table 7" || d.table == "Table 8")
        .find_map(|d| {
            e1_errors
                .iter()
                .find(|e| e.signal_bit == 15 && d.location.starts_with(e.signal_name()))
        });
    let error = named.or_else(|| {
        e1_errors
            .iter()
            .find(|e| e.signal_bit == 15 && e.signal_name() == "mscnt")
    });
    let Some(error) = error else {
        eprintln!("no representative E1 error found; skipping reproducer");
        return;
    };
    let cases = protocol.grid.cases();
    let case = cases[cases.len() / 2];
    let reference = trace::record_reference(protocol, case);
    let (trial, observed) = run_trial_traced(protocol, error.flip, case);
    let bundle = ReproBundle::assemble(
        format!(
            "golden check diverged ({} cells); probe error S{} on {}",
            divergences.len(),
            error.number,
            error.signal_name()
        ),
        protocol,
        case,
        Some(ReproError::new(format!("S{}", error.number), error.flip)),
        Some(trial),
        &reference,
        &observed,
    );
    let label = format!("golden-check-S{}", error.number);
    match trace::write_repro(&options.repro_dir, &label, &bundle) {
        Ok(path) => eprintln!("reproducer written to {}", path.display()),
        Err(e) => eprintln!("failed to write reproducer: {e}"),
    }
}
