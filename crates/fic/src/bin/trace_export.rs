//! Converts a fleet flight log into Chrome `trace_event` JSON.
//!
//! The fleet server (run with `--flight-recorder`) writes each
//! campaign's slice lifecycle spans to `trace/flight_log.json` and
//! serves the live fleet-wide view on `/trace`. This binary does the
//! same conversion offline: load a flight log artefact, validate it
//! against the pinned schema, and write the Chrome trace — loadable in
//! `chrome://tracing` or Perfetto, one process row per campaign, one
//! thread row per slice.
//!
//! ```text
//! usage: trace_export <flight_log.json> <out.json>
//! ```
//!
//! Exits 0 on success, 1 on unreadable or schema-invalid input.

use std::process::ExitCode;

use fic::fleet::FlightLog;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [input, output] = args.as_slice() else {
        eprintln!("usage: trace_export <flight_log.json> <out.json>");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(input) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("cannot read {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let log: FlightLog = match serde_json::from_str(&text) {
        Ok(log) => log,
        Err(e) => {
            eprintln!("{input} does not parse as a flight log: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = log.validate() {
        eprintln!("{input}: INVALID: {e}");
        return ExitCode::FAILURE;
    }
    let trace = serde_json::to_string_pretty(&log.to_chrome_trace()).expect("trace serialises");
    if let Err(e) = std::fs::write(output, format!("{trace}\n")) {
        eprintln!("cannot write {output}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("{} span event(s) exported to {output}", log.events.len());
    ExitCode::SUCCESS
}
