//! Regenerates paper Table 9: total detection coverage and latencies
//! for error set E2 (random RAM/stack bit flips). Supports
//! `--from-journal results/campaign.jsonl` to rebuild the report from a
//! trial journal without re-running.

use fic::cli::CliOptions;
use fic::journal::Journal;
use fic::{error_set, golden, tables, E2Report};

fn main() {
    let options = CliOptions::from_env();
    let report: E2Report = if let Some(path) = &options.from_journal {
        let journal = Journal::load(path).expect("readable --from-journal file");
        let (_, e2) = journal
            .replay()
            .expect("journal matches the paper error sets");
        e2
    } else if let Some(path) = &options.load {
        let data = std::fs::read_to_string(path).expect("readable --load file");
        serde_json::from_str(&data).expect("valid saved E2 report")
    } else {
        let protocol = options.protocol();
        golden::validate_fault_free(&protocol).expect("golden runs must be clean");
        let errors = error_set::e2();
        eprintln!(
            "running E2: {} errors x {} cases ({} runs, {} ms windows)...",
            errors.len(),
            protocol.cases_per_error(),
            errors.len() * protocol.cases_per_error(),
            protocol.observation_ms
        );
        let registry = options.registry();
        let runner = options.runner(registry.as_ref());
        let report = runner.run_e2(&errors);
        if let Some(registry) = &registry {
            options.emit_telemetry("table9", registry);
        }
        if let Some(sink) = runner.attribution() {
            options.emit_attribution("table9", sink);
        }
        if let Some(sink) = runner.convergence() {
            options.emit_convergence("table9", sink);
        }
        std::fs::create_dir_all(&options.out_dir).expect("create out dir");
        let path = options.out_dir.join("e2.json");
        std::fs::write(&path, serde_json::to_string_pretty(&report).unwrap())
            .expect("write e2.json");
        eprintln!("saved {}", path.display());
        report
    };
    print!("{}", tables::render_table9(&report));
    if let Some(p) = report.p_detect() {
        println!("\nPdetect (total) = {:.1}%", p * 100.0);
    }
}
