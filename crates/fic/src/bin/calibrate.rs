//! Parameter-calibration sweep (paper §2.2): how the rate-bound
//! tightness trades detection coverage against false positives on
//! fault-free runs.

use fic::cli::CliOptions;
use fic::{calibration, error_set};

fn main() {
    let options = CliOptions::from_env();
    let mut protocol = options.protocol();
    if options.observation_ms.is_none() {
        // The sweep needs only the arrestment phase, not the full 40 s.
        protocol.observation_ms = 15_000;
    }
    // Mid-bit errors of the continuous signals: the population the bound
    // position decides about (MSBs always fire, LSBs never do).
    let errors: Vec<_> = error_set::e1()
        .into_iter()
        .filter(|e| {
            matches!(
                e.ea,
                arrestor::EaId::Ea1 | arrestor::EaId::Ea2 | arrestor::EaId::Ea7
            ) && (8..=12).contains(&e.signal_bit)
        })
        .collect();
    let scales = [10u16, 25, 50, 75, 100, 150, 200, 400];
    eprintln!(
        "sweeping {} scales over {} errors x {} cases (+ golden runs)...",
        scales.len(),
        errors.len(),
        protocol.cases_per_error()
    );
    let points = calibration::sweep(&protocol, &errors, &scales);
    print!("{}", calibration::render(&points));
    std::fs::create_dir_all(&options.out_dir).expect("create out dir");
    std::fs::write(
        options.out_dir.join("calibration.json"),
        serde_json::to_string_pretty(&points).unwrap(),
    )
    .expect("write calibration.json");
    if let Some(best) = points
        .iter()
        .filter(|p| p.clean())
        .min_by_key(|p| p.rate_scale_percent)
    {
        println!(
            "\ntightest false-positive-free bound: {}% of the derived value ({:.1}% detection)",
            best.rate_scale_percent,
            best.detection_rate() * 100.0
        );
    }
}
