//! Validates telemetry artefacts — the CI smoke gate for the
//! observability layer:
//!
//! * `--report <file>` — parse a `results/telemetry/*.json` report and
//!   run the structural schema checks ([`fic::telemetry::TelemetryReport::validate`]);
//! * `--jsonl <file>` — parse a `--telemetry-jsonl` progress stream:
//!   every line must be a well-formed progress event of the pinned
//!   schema version, with `trials_done` monotone (and bounded by
//!   `trials_total`) within each phase;
//! * `--journal <file>` — cross-check the report's checkpoint-cache
//!   counters against ground truth derivable from the trial journal of
//!   the *same fresh run*: per campaign, the cache misses once per
//!   distinct test case and hits on every further trial, so
//!   `misses = Σ distinct cases` and `hits = records − misses`. (A
//!   resumed run re-misses already-journaled cases; this check is for
//!   fresh runs, which is what CI produces.) The `campaign.prune.*`
//!   counters are cross-checked the same way: the journal's error
//!   numbers reconstruct each trial's flip, [`fic::InertMap`] says
//!   which were prunable, and the counters must agree exactly — unless
//!   every prune counter is zero (a `--no-prune` run), which skips the
//!   check;
//! * `--shards <n>` — the report (and journal) came from `n` shard
//!   runs merged together (`merge_telemetry` / `merge_journals`). Each
//!   shard execution had its own checkpoint cache, so the ground truth
//!   becomes `misses = Σ over shards of distinct cases in that shard's
//!   slice`, recomputed from the canonical pair index
//!   `(error − 1) · cases + case`.
//! * `--attribution <file>` — parse a `results/attribution/*.json`
//!   report, run its structural validation
//!   ([`fic::attribution::AttributionReport::validate`]) and the
//!   coverage-algebra cross-check
//!   ([`fic::attribution::check_algebra`]); with `--journal`, also
//!   verify the report's aggregate is exactly what the journal
//!   re-derives (attribution must be a pure function of the trials);
//! * `--convergence <file>` — parse a `results/convergence/*.json`
//!   report, run its structural validation
//!   ([`fic::convergence::ConvergenceReport::validate`]: cell
//!   conservation, Wilson intervals and forecasts re-derive exactly
//!   from the aggregate); with `--journal`, also verify the report's
//!   aggregate is exactly what the journal re-derives (convergence is
//!   a pure function of the journaled trials);
//! * `--metrics <file>` — parse a Prometheus text exposition written
//!   by `--metrics-file` (or fetched from the fleet `/metrics`
//!   endpoint), re-render it, and require the round-trip to be exact
//!   ([`fic::telemetry::TelemetrySnapshot::from_prometheus`] ∘
//!   `to_prometheus` must be the identity on its image); with
//!   `--report`, also require the exposition to carry exactly the
//!   report's snapshot.
//!
//! Exits 0 when every requested check passes, 1 otherwise.

use std::collections::HashSet;
use std::path::PathBuf;
use std::process::ExitCode;

use fic::attribution::{self, AttributionReport};
use fic::convergence::{self, ConvergenceReport};
use fic::journal::Journal;
use fic::telemetry::{ProgressEvent, TelemetryReport, SCHEMA_VERSION};
use fic::{InertMap, PruneClass};

fn usage() -> ! {
    eprintln!(
        "usage: telemetry_check [--report file] [--jsonl file] [--journal file] \
         [--shards n] [--attribution file] [--convergence file] [--metrics file]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut report_path: Option<PathBuf> = None;
    let mut jsonl_path: Option<PathBuf> = None;
    let mut journal_path: Option<PathBuf> = None;
    let mut attribution_path: Option<PathBuf> = None;
    let mut convergence_path: Option<PathBuf> = None;
    let mut metrics_path: Option<PathBuf> = None;
    let mut shards = 1usize;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next().cloned().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage();
            })
        };
        match flag.as_str() {
            "--report" => report_path = Some(PathBuf::from(value("--report"))),
            "--jsonl" => jsonl_path = Some(PathBuf::from(value("--jsonl"))),
            "--journal" => journal_path = Some(PathBuf::from(value("--journal"))),
            "--attribution" => attribution_path = Some(PathBuf::from(value("--attribution"))),
            "--convergence" => convergence_path = Some(PathBuf::from(value("--convergence"))),
            "--metrics" => metrics_path = Some(PathBuf::from(value("--metrics"))),
            "--shards" => {
                shards = value("--shards").parse().unwrap_or_else(|e| {
                    eprintln!("--shards: {e}");
                    usage();
                });
                if shards == 0 {
                    eprintln!("--shards must be at least 1");
                    usage();
                }
            }
            _ => usage(),
        }
    }
    if report_path.is_none()
        && jsonl_path.is_none()
        && attribution_path.is_none()
        && convergence_path.is_none()
        && metrics_path.is_none()
    {
        usage();
    }
    if journal_path.is_some()
        && report_path.is_none()
        && attribution_path.is_none()
        && convergence_path.is_none()
    {
        eprintln!(
            "--journal cross-checks a report; it needs --report, --attribution or --convergence"
        );
        return ExitCode::from(2);
    }

    let mut failures = 0usize;

    let report = report_path.as_ref().map(|path| {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {}: {e}", path.display());
            std::process::exit(1);
        });
        let report: TelemetryReport = serde_json::from_str(&text).unwrap_or_else(|e| {
            eprintln!(
                "{} does not parse as a telemetry report: {e}",
                path.display()
            );
            std::process::exit(1);
        });
        report
    });
    if let (Some(report), Some(path)) = (&report, &report_path) {
        match report.validate() {
            Ok(()) => println!("report {}: schema ok", path.display()),
            Err(e) => {
                eprintln!("report {}: INVALID: {e}", path.display());
                failures += 1;
            }
        }
    }

    if let Some(path) = &jsonl_path {
        match check_jsonl(path) {
            Ok(events) => println!("stream {}: {events} event(s), monotone", path.display()),
            Err(e) => {
                eprintln!("stream {}: INVALID: {e}", path.display());
                failures += 1;
            }
        }
    }

    if let (Some(report), Some(path)) = (&report, &journal_path) {
        match check_cache_counters(report, path, shards) {
            Ok((hits, misses)) => println!(
                "journal {}: cache counters match ({hits} hits, {misses} misses, {shards} shard(s))",
                path.display()
            ),
            Err(e) => {
                eprintln!("journal {}: MISMATCH: {e}", path.display());
                failures += 1;
            }
        }
        match check_prune_counters(report, path, shards) {
            Ok(PruneCheck::Match { pruned, references }) => println!(
                "journal {}: prune counters match ({pruned} pruned, {references} reference(s))",
                path.display()
            ),
            Ok(PruneCheck::PruningDisabled) => println!(
                "journal {}: prune counters all zero (run used --no-prune); skipped",
                path.display()
            ),
            Err(e) => {
                eprintln!("journal {}: PRUNE MISMATCH: {e}", path.display());
                failures += 1;
            }
        }
    }

    if let Some(path) = &attribution_path {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {}: {e}", path.display());
            std::process::exit(1);
        });
        let report: AttributionReport = serde_json::from_str(&text).unwrap_or_else(|e| {
            eprintln!(
                "{} does not parse as an attribution report: {e}",
                path.display()
            );
            std::process::exit(1);
        });
        match report.validate() {
            Ok(()) => println!("attribution {}: schema ok", path.display()),
            Err(e) => {
                eprintln!("attribution {}: INVALID: {e}", path.display());
                failures += 1;
            }
        }
        match attribution::check_algebra(&report.aggregate) {
            Ok(()) => println!(
                "attribution {}: recomposed Pdetect within the measured interval",
                path.display()
            ),
            Err(e) => {
                eprintln!("attribution {}: ALGEBRA FAILED: {e}", path.display());
                failures += 1;
            }
        }
        if let Some(journal_path) = &journal_path {
            match check_attribution_against_journal(&report, journal_path) {
                Ok(events) => println!(
                    "attribution {}: aggregate re-derives exactly from {} journaled event(s)",
                    path.display(),
                    events
                ),
                Err(e) => {
                    eprintln!("attribution {}: JOURNAL MISMATCH: {e}", path.display());
                    failures += 1;
                }
            }
        }
    }

    if let Some(path) = &convergence_path {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {}: {e}", path.display());
            std::process::exit(1);
        });
        let report: ConvergenceReport = serde_json::from_str(&text).unwrap_or_else(|e| {
            eprintln!(
                "{} does not parse as a convergence report: {e}",
                path.display()
            );
            std::process::exit(1);
        });
        match report.validate() {
            Ok(()) => println!("convergence {}: schema ok", path.display()),
            Err(e) => {
                eprintln!("convergence {}: INVALID: {e}", path.display());
                failures += 1;
            }
        }
        if let Some(journal_path) = &journal_path {
            match check_convergence_against_journal(&report, journal_path) {
                Ok(trials) => println!(
                    "convergence {}: aggregate re-derives exactly from {} journaled trial(s)",
                    path.display(),
                    trials
                ),
                Err(e) => {
                    eprintln!("convergence {}: JOURNAL MISMATCH: {e}", path.display());
                    failures += 1;
                }
            }
        }
    }

    if let Some(path) = &metrics_path {
        match check_metrics(path, report.as_ref()) {
            Ok(series) => println!(
                "metrics {}: {series} series round-trip exactly",
                path.display()
            ),
            Err(e) => {
                eprintln!("metrics {}: INVALID: {e}", path.display());
                failures += 1;
            }
        }
    }

    if failures > 0 {
        eprintln!("{failures} telemetry check(s) failed");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// The exposition parses, re-renders byte-identically (parse ∘ render
/// is the identity on rendered expositions), and — when the
/// schema-versioned JSON report is also given — carries exactly the
/// report's snapshot, so the two artefact formats cannot drift apart.
fn check_metrics(
    path: &std::path::Path,
    report: Option<&TelemetryReport>,
) -> Result<usize, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let snapshot = fic::telemetry::TelemetrySnapshot::from_prometheus(&text)?;
    let rendered = snapshot.to_prometheus();
    let reparsed = fic::telemetry::TelemetrySnapshot::from_prometheus(&rendered)?;
    if reparsed != snapshot {
        return Err("exposition does not round-trip through parse/render".to_owned());
    }
    if let Some(report) = report {
        if snapshot != report.snapshot {
            return Err("exposition disagrees with the --report snapshot".to_owned());
        }
    }
    Ok(snapshot.counters.len() + snapshot.gauges.len() + snapshot.histograms.len())
}

/// Every line parses, carries the pinned schema version, and is
/// monotone in `trials_done` (bounded by `trials_total`) per phase.
fn check_jsonl(path: &std::path::Path) -> Result<usize, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let mut last_done: std::collections::HashMap<String, u64> = std::collections::HashMap::new();
    let mut events = 0usize;
    for (k, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let event: ProgressEvent =
            serde_json::from_str(line).map_err(|e| format!("line {}: {e}", k + 1))?;
        if event.schema_version != SCHEMA_VERSION {
            return Err(format!(
                "line {}: schema_version {} (this build reads {})",
                k + 1,
                event.schema_version,
                SCHEMA_VERSION
            ));
        }
        if event.event != "progress" {
            return Err(format!(
                "line {}: unexpected event `{}`",
                k + 1,
                event.event
            ));
        }
        if event.trials_done > event.trials_total {
            return Err(format!(
                "line {}: trials_done {} exceeds total {}",
                k + 1,
                event.trials_done,
                event.trials_total
            ));
        }
        let last = last_done.entry(event.phase.clone()).or_insert(0);
        if event.trials_done < *last {
            return Err(format!(
                "line {}: trials_done regressed {} -> {} in phase {}",
                k + 1,
                *last,
                event.trials_done,
                event.phase
            ));
        }
        *last = event.trials_done;
        events += 1;
    }
    if events == 0 {
        return Err("stream holds no events".to_owned());
    }
    Ok(events)
}

/// The report's checkpoint-cache hit/miss counters equal the values a
/// fresh run's journal implies. With `shards > 1` the journal is a
/// merge of that many shard runs, each with its own cache: misses
/// accumulate per ⟨campaign, shard⟩ slice of the records, recomputed
/// from the canonical pair index `(error − 1) · cases + case` (the
/// same formula `CampaignRunner::with_shard` slices by).
fn check_cache_counters(
    report: &TelemetryReport,
    path: &std::path::Path,
    shards: usize,
) -> Result<(u64, u64), String> {
    let journal = Journal::load(path).map_err(|e| e.to_string())?;
    let cases_per_error = journal.header.protocol.cases_per_error();
    let mut expected_misses = 0u64;
    for kind in [fic::CampaignKind::E1, fic::CampaignKind::E2] {
        for shard in 0..shards {
            let cases: HashSet<usize> = journal
                .records
                .iter()
                .filter(|r| r.campaign == kind)
                .filter(|r| {
                    let pair = (r.error_number - 1) * cases_per_error + r.case_index;
                    pair % shards == shard
                })
                .map(|r| r.case_index)
                .collect();
            expected_misses += cases.len() as u64;
        }
    }
    let expected_hits = journal.records.len() as u64 - expected_misses;
    let hits = report.snapshot.counter("campaign.checkpoint.cache.hits");
    let misses = report.snapshot.counter("campaign.checkpoint.cache.misses");
    if (hits, misses) != (expected_hits, expected_misses) {
        return Err(format!(
            "report says {hits} hits / {misses} misses; journal implies \
             {expected_hits} / {expected_misses}"
        ));
    }
    Ok((hits, misses))
}

/// Outcome of the prune-counter cross-check.
enum PruneCheck {
    /// Counters equal the journal-derived ground truth.
    Match {
        /// Total pruned trials the journal implies.
        pruned: u64,
        /// Shared reference executions the journal implies.
        references: u64,
    },
    /// Every prune counter is zero while the journal holds prunable
    /// trials: the run was made with `--no-prune`, nothing to check.
    PruningDisabled,
}

/// The report's `campaign.prune.*` counters equal the values the
/// journal implies. The inert coordinates are a pure function of the
/// target's memory maps ([`InertMap`]), so each record's flip —
/// reconstructed from its error number via [`fic::error_set`] —
/// classifies here exactly as it did inside the runner:
/// `prune.trials` (split by class) counts the classifying records, and
/// `prune.references` counts one shared reference execution per
/// ⟨campaign, shard, test case⟩ holding at least one of them (each
/// shard execution has its own [`fic::PruneCache`], mirroring the
/// checkpoint-cache model above).
fn check_prune_counters(
    report: &TelemetryReport,
    path: &std::path::Path,
    shards: usize,
) -> Result<PruneCheck, String> {
    let journal = Journal::load(path).map_err(|e| e.to_string())?;
    let cases_per_error = journal.header.protocol.cases_per_error();
    let map = InertMap::new();
    let e1 = fic::error_set::e1();
    let e2 = fic::error_set::e2();
    let (mut dead_stack, mut unread_ram, mut references) = (0u64, 0u64, 0u64);
    for kind in [fic::CampaignKind::E1, fic::CampaignKind::E2] {
        for shard in 0..shards {
            let mut cases = HashSet::new();
            for record in journal
                .records
                .iter()
                .filter(|r| r.campaign == kind)
                .filter(|r| {
                    let pair = (r.error_number - 1) * cases_per_error + r.case_index;
                    pair % shards == shard
                })
            {
                let flip = match kind {
                    fic::CampaignKind::E1 => e1[record.error_number - 1].flip,
                    fic::CampaignKind::E2 => e2[record.error_number - 1].flip,
                };
                match map.classify(flip) {
                    Some(PruneClass::DeadStack) => dead_stack += 1,
                    Some(PruneClass::UnreadRam) => unread_ram += 1,
                    None => continue,
                }
                cases.insert(record.case_index);
            }
            references += cases.len() as u64;
        }
    }
    let expected_pruned = dead_stack + unread_ram;
    let counters = [
        ("campaign.prune.trials", expected_pruned),
        ("campaign.prune.dead_stack", dead_stack),
        ("campaign.prune.unread_ram", unread_ram),
        ("campaign.prune.references", references),
    ];
    if expected_pruned > 0
        && counters
            .iter()
            .all(|(name, _)| report.snapshot.counter(name) == 0)
    {
        return Ok(PruneCheck::PruningDisabled);
    }
    for (name, expected) in counters {
        let got = report.snapshot.counter(name);
        if got != expected {
            return Err(format!(
                "report says {name} = {got}; journal implies {expected}"
            ));
        }
    }
    Ok(PruneCheck::Match {
        pruned: expected_pruned,
        references,
    })
}

/// The attribution report's aggregate equals what the journal's trial
/// records re-derive — attribution events are a pure function of the
/// trials, so any difference means the report and journal are not from
/// the same campaign (or one of them was tampered with). Oracle
/// verdicts persisted in the journal overlay the derived events, so an
/// enriched journal still matches a report produced alongside it only
/// if the report saw the same enrichment; CI pairs fresh artefacts.
/// The convergence report's aggregate equals what the journal's trial
/// records re-derive — the estimator is a pure function of the trials,
/// so any difference means the report and journal are not from the
/// same campaign (or one of them was tampered with).
fn check_convergence_against_journal(
    report: &ConvergenceReport,
    path: &std::path::Path,
) -> Result<u64, String> {
    let journal = Journal::load(path).map_err(|e| e.to_string())?;
    let derived = convergence::aggregate_journal(&journal).map_err(|e| e.to_string())?;
    if derived != report.aggregate {
        return Err(format!(
            "journal re-derives {} E1 + {} E2 trials but the report aggregates \
             {} + {}; the aggregates differ",
            derived.e1_trials(),
            derived.e2_trials(),
            report.aggregate.e1_trials(),
            report.aggregate.e2_trials()
        ));
    }
    Ok(derived.trials())
}

fn check_attribution_against_journal(
    report: &AttributionReport,
    path: &std::path::Path,
) -> Result<usize, String> {
    let journal = Journal::load(path).map_err(|e| e.to_string())?;
    let derived = attribution::aggregate_journal(&journal).map_err(|e| e.to_string())?;
    if derived != report.aggregate {
        return Err(format!(
            "journal re-derives {} E1 + {} E2 events but the report aggregates \
             {} + {}; the aggregates differ",
            derived.e1_trials,
            derived.e2_trials,
            report.aggregate.e1_trials,
            report.aggregate.e2_trials
        ));
    }
    Ok((derived.e1_trials + derived.e2_trials) as usize)
}
