//! Regenerates paper Table 7: detection probabilities per signal and
//! software version, from the E1 campaign.
//!
//! Full paper protocol by default (2 800 runs × 40 s windows); use
//! `--scale 2 --observation 5000` for a quick smoke run,
//! `--load results/e1.json` to re-render a saved campaign, or
//! `--from-journal results/campaign.jsonl` to rebuild from a trial
//! journal.

use fic::cli::CliOptions;
use fic::journal::Journal;
use fic::{error_set, golden, tables, E1Report};

fn main() {
    let options = CliOptions::from_env();
    let report: E1Report = if let Some(path) = &options.from_journal {
        let journal = Journal::load(path).expect("readable --from-journal file");
        let (e1, _) = journal
            .replay()
            .expect("journal matches the paper error sets");
        e1
    } else if let Some(path) = &options.load {
        let data = std::fs::read_to_string(path).expect("readable --load file");
        serde_json::from_str(&data).expect("valid saved E1 report")
    } else {
        let protocol = options.protocol();
        eprintln!(
            "golden-run validation over {} cases...",
            protocol.cases_per_error()
        );
        golden::validate_fault_free(&protocol).expect("golden runs must be clean");
        let errors = error_set::e1();
        eprintln!(
            "running E1: {} errors x {} cases ({} runs, {} ms windows)...",
            errors.len(),
            protocol.cases_per_error(),
            errors.len() * protocol.cases_per_error(),
            protocol.observation_ms
        );
        let registry = options.registry();
        let runner = options.runner(registry.as_ref());
        let report = runner.run_e1(&errors);
        if let Some(registry) = &registry {
            options.emit_telemetry("table7", registry);
        }
        if let Some(sink) = runner.attribution() {
            options.emit_attribution("table7", sink);
        }
        if let Some(sink) = runner.convergence() {
            options.emit_convergence("table7", sink);
        }
        std::fs::create_dir_all(&options.out_dir).expect("create out dir");
        let path = options.out_dir.join("e1.json");
        std::fs::write(&path, serde_json::to_string_pretty(&report).unwrap())
            .expect("write e1.json");
        eprintln!("saved {}", path.display());
        report
    };
    print!("{}", tables::render_table7(&report));
    if let Some(p_ds) = report.p_ds() {
        println!("\nPds (total, all mechanisms) = {:.1}%", p_ds * 100.0);
    }
}
