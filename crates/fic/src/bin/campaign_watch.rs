//! Live TTY convergence view: watch a campaign settle statistically.
//!
//! Two sources, one renderer:
//!
//! * `--journal <file>` tails a local trial journal (the
//!   `full_campaign --journal` / fleet server file): each tick the
//!   journal is re-read, folded through
//!   [`fic::convergence::aggregate_journal`], and rendered as the
//!   per-cell Wilson-CI table with the "trials remaining to ±δ"
//!   forecast.
//! * `--connect <host:port>` polls a fleet server's `/coverage`
//!   endpoint (and `/status` for the done flag) and renders the same
//!   view for every campaign the server is running; the watch exits
//!   when the fleet reports done.
//!
//! The view is throttled: `--interval-ms <n>` (default 1000) sets the
//! refresh period, on a terminal the screen is redrawn in place, off a
//! terminal a frame is only printed when it changed. `--delta <f>`
//! overrides the ±0.05 precision target and `--once` renders a single
//! frame and exits (the CI smoke mode).
//!
//! Watching is a pure read: neither source is mutated, so a watch can
//! run against a live campaign without perturbing a result bit.

use std::io::{IsTerminal, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

use fic::convergence::{self, CoverageSnapshot};
use fic::journal::Journal;
use serde::Value;

/// Parsed `campaign_watch` arguments.
struct WatchOptions {
    journal: Option<PathBuf>,
    connect: Option<String>,
    interval_ms: u64,
    delta: f64,
    once: bool,
}

impl WatchOptions {
    fn parse(args: &[String]) -> Result<WatchOptions, String> {
        let mut options = WatchOptions {
            journal: None,
            connect: None,
            interval_ms: 1_000,
            delta: convergence::DEFAULT_DELTA,
            once: false,
        };
        let mut iter = args.iter();
        while let Some(flag) = iter.next() {
            let mut value = |name: &str| {
                iter.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} needs a value"))
            };
            match flag.as_str() {
                "--journal" => options.journal = Some(PathBuf::from(value("--journal")?)),
                "--connect" => options.connect = Some(value("--connect")?),
                "--interval-ms" => {
                    options.interval_ms = value("--interval-ms")?
                        .parse()
                        .map_err(|e| format!("--interval-ms: {e}"))?;
                }
                "--delta" => {
                    options.delta = value("--delta")?
                        .parse()
                        .map_err(|e| format!("--delta: {e}"))?;
                }
                "--once" => options.once = true,
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        match (&options.journal, &options.connect) {
            (None, None) => Err("one of --journal or --connect is required".to_owned()),
            (Some(_), Some(_)) => Err("--journal and --connect are mutually exclusive".to_owned()),
            _ => {
                if options.delta <= 0.0 || !options.delta.is_finite() {
                    return Err("--delta must be a positive number".to_owned());
                }
                Ok(options)
            }
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match WatchOptions::parse(&args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("campaign_watch: {message}");
            eprintln!(
                "usage: campaign_watch (--journal file | --connect host:port) \
                 [--interval-ms n] [--delta f] [--once]"
            );
            std::process::exit(2);
        }
    };
    let interval = Duration::from_millis(options.interval_ms.max(50));
    let mut last_frame = String::new();
    loop {
        let (frame, done) = match render_tick(&options) {
            Ok(tick) => tick,
            Err(message) => {
                eprintln!("campaign_watch: {message}");
                if options.once {
                    std::process::exit(1);
                }
                std::thread::sleep(interval);
                continue;
            }
        };
        draw(&frame, &mut last_frame);
        if options.once || done {
            return;
        }
        std::thread::sleep(interval);
    }
}

/// Produces one rendered frame plus the source's done flag.
fn render_tick(options: &WatchOptions) -> Result<(String, bool), String> {
    if let Some(path) = &options.journal {
        let journal =
            Journal::load(path).map_err(|e| format!("cannot load {}: {e}", path.display()))?;
        let aggregate = convergence::aggregate_journal(&journal).map_err(|e| {
            format!(
                "{} does not match the paper error sets: {e}",
                path.display()
            )
        })?;
        let name = path.file_stem().map_or_else(
            || "campaign".to_owned(),
            |s| s.to_string_lossy().into_owned(),
        );
        let frame = convergence::render_coverage(&aggregate.coverage(&name, options.delta));
        return Ok((frame, false));
    }
    let addr = options
        .connect
        .as_deref()
        .expect("parse guarantees a source");
    let body = http_get(addr, "/coverage")?;
    let snapshot: CoverageSnapshot = serde_json::from_str(&body)
        .map_err(|e| format!("/coverage did not parse as a coverage snapshot: {e}"))?;
    let mut frame = String::new();
    for campaign in &snapshot.campaigns {
        frame.push_str(&convergence::render_coverage(campaign));
    }
    if snapshot.campaigns.is_empty() {
        frame.push_str("(no campaigns)\n");
    }
    let done = fleet_done(addr).unwrap_or(false);
    Ok((frame, done))
}

/// Whether the fleet's `/status` document reports every campaign done.
fn fleet_done(addr: &str) -> Result<bool, String> {
    let body = http_get(addr, "/status")?;
    let value = serde_json::parse_value(&body).map_err(|e| format!("/status: {e}"))?;
    let Value::Object(fields) = value else {
        return Err("/status is not a JSON object".to_owned());
    };
    Ok(fields
        .iter()
        .any(|(key, value)| key == "done" && *value == Value::Bool(true)))
}

/// One raw HTTP GET; returns the response body.
fn http_get(addr: &str, path: &str) -> Result<String, String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: fleet\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .map_err(|e| format!("GET {path}: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("GET {path}: {e}"))?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("GET {path}: malformed HTTP response"))?;
    if !head.starts_with("HTTP/1.1 200") {
        let status = head.lines().next().unwrap_or("");
        return Err(format!("GET {path}: {status}"));
    }
    Ok(body.to_owned())
}

/// Draws a frame: in-place redraw on a terminal, change-only append
/// otherwise (so piping to a log does not spam identical frames).
fn draw(frame: &str, last_frame: &mut String) {
    let stdout = std::io::stdout();
    if stdout.is_terminal() {
        // Clear screen + home, then the frame — a plain repaint, no
        // cursor tricks, survives any terminal.
        print!("\x1b[2J\x1b[H{frame}");
        let _ = std::io::stdout().flush();
    } else if frame != last_frame {
        print!("{frame}");
        let _ = std::io::stdout().flush();
    }
    *last_frame = frame.to_owned();
}
