//! A fleet campaign worker: connects to a `fleet_server`, leases grid
//! slices, runs them through the ordinary campaign engine and streams
//! the results back until the server reports the fleet done.
//!
//! ```text
//! fleet_worker [--connect host:port] [--name label] [--threads n]
//!              [--poll-ms ms] [--connect-timeout-ms ms]
//!              [--die-after-leases n]
//! ```
//!
//! `--die-after-leases n` is the crash-drill hook: the process drops
//! its connection mid-lease (sending nothing, like a SIGKILL) right
//! after taking its n-th lease and exits 137, so CI can verify lease
//! reassignment without actual process murder.

use std::process::ExitCode;

use fic::fleet::{run_worker, WorkerOptions};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match WorkerOptions::parse(&args) {
        Ok(options) => options,
        Err(e) => {
            eprintln!("fleet_worker: {e}");
            eprintln!(
                "usage: fleet_worker [--connect host:port] [--name label] [--threads n] \
                 [--poll-ms ms] [--connect-timeout-ms ms] [--die-after-leases n]"
            );
            return ExitCode::from(2);
        }
    };
    match run_worker(&options) {
        Ok(summary) if summary.died => {
            eprintln!(
                "fleet_worker: {} died on purpose after {} lease(s) (--die-after-leases)",
                options.name, summary.leases
            );
            // The conventional SIGKILL exit status, so harnesses treat
            // the drill like a real worker death.
            ExitCode::from(137)
        }
        Ok(summary) => {
            println!(
                "fleet_worker: {} done — {} slices, {} trials, {} duplicate result(s) discarded",
                options.name, summary.slices_completed, summary.trials, summary.slices_duplicate
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("fleet_worker: {e}");
            ExitCode::FAILURE
        }
    }
}
