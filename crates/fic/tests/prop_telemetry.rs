//! Property tests for the telemetry snapshot algebra.
//!
//! Sharded campaigns merge per-shard `TelemetrySnapshot`s into one
//! fleet-wide view, and the journal collector folds worker snapshots in
//! completion order. Both are only sound if merging is associative and
//! permutation-invariant — the same algebraic contract `prop_reports`
//! pins for the campaign reports themselves.

use fic::telemetry::{latency_bounds_ms, Registry, TelemetrySnapshot};
use proptest::prelude::*;

/// Metric name pool: small enough that generated snapshots collide on
/// names (the interesting case for merge), large enough to also
/// exercise the disjoint-name path.
const NAMES: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

/// Compact generator output for one snapshot: per-metric counter
/// increments, gauge values, and histogram observations. Values are
/// recorded through a real [`Registry`] so every generated snapshot is
/// internally consistent (bucket totals match counts, min ≤ max, …).
type SnapshotSpec = (
    Vec<(u8, u64)>, // counter adds: (name index, amount)
    Vec<(u8, u64)>, // gauge sets: (name index, value)
    Vec<(u8, u64)>, // histogram records: (name index, observation)
);

fn build(spec: &SnapshotSpec) -> TelemetrySnapshot {
    // A registry name belongs to exactly one metric type, so each type
    // draws from its own prefixed pool.
    let registry = Registry::new();
    let bounds = latency_bounds_ms();
    for &(name, amount) in &spec.0 {
        let name = format!("counter.{}", NAMES[name as usize % NAMES.len()]);
        registry.counter(&name).add(amount);
    }
    for &(name, value) in &spec.1 {
        let name = format!("gauge.{}", NAMES[name as usize % NAMES.len()]);
        registry.gauge(&name).set(value);
    }
    for &(name, value) in &spec.2 {
        let name = format!("hist.{}", NAMES[name as usize % NAMES.len()]);
        registry.histogram(&name, &bounds).record(value);
    }
    registry.snapshot()
}

fn spec_strategy() -> impl Strategy<Value = SnapshotSpec> {
    let entry = (0u8..8, 0u64..100_000);
    (
        proptest::collection::vec(entry.clone(), 0..12),
        proptest::collection::vec(entry.clone(), 0..6),
        proptest::collection::vec(entry, 0..12),
    )
}

fn merged(parts: &[TelemetrySnapshot]) -> TelemetrySnapshot {
    let mut acc = TelemetrySnapshot::new();
    for part in parts {
        acc.merge(part);
    }
    acc
}

proptest! {
    /// The empty snapshot is the identity of merge, on both sides.
    #[test]
    fn merge_identity(spec in spec_strategy()) {
        let snapshot = build(&spec);
        let mut left = TelemetrySnapshot::new();
        left.merge(&snapshot);
        prop_assert_eq!(&left, &snapshot);
        let mut right = snapshot.clone();
        right.merge(&TelemetrySnapshot::new());
        prop_assert_eq!(&right, &snapshot);
    }

    /// (a ∪ b) ∪ c == a ∪ (b ∪ c): shards may be combined in any
    /// grouping (e.g. tree-reduce vs. a serial fold).
    #[test]
    fn merge_associative(
        a in spec_strategy(),
        b in spec_strategy(),
        c in spec_strategy(),
    ) {
        let (sa, sb, sc) = (build(&a), build(&b), build(&c));
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa;
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// a ∪ b == b ∪ a: counters add, gauges take the max, histogram
    /// buckets add — all commutative.
    #[test]
    fn merge_commutative(a in spec_strategy(), b in spec_strategy()) {
        let (sa, sb) = (build(&a), build(&b));
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb;
        ba.merge(&sa);
        prop_assert_eq!(ab, ba);
    }

    /// Folding any permutation of a shard list yields the same total —
    /// the property `merge_journals` and the worker collector rely on.
    #[test]
    fn merge_permutation_invariant(
        specs in proptest::collection::vec(spec_strategy(), 1..6),
        rotation in 0usize..6,
    ) {
        let parts: Vec<TelemetrySnapshot> = specs.iter().map(build).collect();
        let in_order = merged(&parts);

        let mut rotated = parts.clone();
        let split = rotation % rotated.len();
        rotated.rotate_left(split);
        prop_assert_eq!(&merged(&rotated), &in_order);

        let mut reversed = parts;
        reversed.reverse();
        prop_assert_eq!(&merged(&reversed), &in_order);
    }

    /// Merging histogram parts loses nothing: the combined snapshot has
    /// the exact total count and sum of all observations, and its
    /// min/max bracket every recorded value.
    #[test]
    fn histogram_merge_is_lossless(
        a in proptest::collection::vec(0u64..200_000, 1..20),
        b in proptest::collection::vec(0u64..200_000, 1..20),
    ) {
        let bounds = latency_bounds_ms();
        let build_hist = |values: &[u64]| {
            let registry = Registry::new();
            let hist = registry.histogram("h", &bounds);
            for &v in values {
                hist.record(v);
            }
            registry.snapshot()
        };
        let mut total = build_hist(&a);
        total.merge(&build_hist(&b));
        let hist = &total.histograms["h"];
        let all: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(hist.count, all.len() as u64);
        prop_assert_eq!(hist.sum, all.iter().sum::<u64>());
        prop_assert_eq!(hist.min, all.iter().copied().min());
        prop_assert_eq!(hist.max, all.iter().copied().max());
        prop_assert_eq!(hist.buckets.iter().sum::<u64>(), hist.count);
    }
}
