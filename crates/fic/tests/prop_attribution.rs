//! Property tests for the attribution aggregate algebra.
//!
//! The campaign collector folds worker events in completion order,
//! `merge_journals` combines shard streams in path order, and resumed
//! runs replay journaled events before live ones. All of that is only
//! sound if [`AttributionAggregate::merge`] is associative,
//! commutative, and permutation-invariant — and if a fold of singleton
//! aggregates equals one aggregate recording every event (the exact
//! shape of the worker fan-in).

use std::sync::OnceLock;

use fic::attribution::{
    AttributionAggregate, AttributionEvent, MonitoredMap, PROPAGATION_MASKED, PROPAGATION_REACHED,
    PROPAGATION_SILENT,
};
use fic::{error_set, E1Error, E2Error, Trial};
use proptest::prelude::*;

fn e1_errors() -> &'static [E1Error] {
    static ERRORS: OnceLock<Vec<E1Error>> = OnceLock::new();
    ERRORS.get_or_init(error_set::e1)
}

fn e2_errors() -> &'static [E2Error] {
    static ERRORS: OnceLock<Vec<E2Error>> = OnceLock::new();
    ERRORS.get_or_init(error_set::e2)
}

fn monitored_map() -> &'static MonitoredMap {
    static MAP: OnceLock<MonitoredMap> = OnceLock::new();
    MAP.get_or_init(MonitoredMap::new)
}

/// Compact generator output for one event: which error set and error,
/// the test case, the per-EA detection outcome, and an optional
/// differential-oracle overlay.
#[derive(Debug, Clone)]
struct EventSpec {
    e1: bool,
    error: u16,
    case: u8,
    detections: Vec<(u8, u16)>,
    failed: bool,
    oracle: Option<(u8, u16)>,
}

/// Builds a real event through the same constructors the campaign
/// collector uses, so every generated event is internally consistent.
fn build(spec: &EventSpec) -> AttributionEvent {
    let mut per_ea = [None; 7];
    for &(ea, ms) in &spec.detections {
        per_ea[ea as usize % 7] = Some(u64::from(ms));
    }
    let trial = Trial {
        failed: spec.failed,
        per_ea_first_ms: per_ea,
        first_injection_ms: 20,
        final_distance_m: 200.0,
    };
    let mut event = if spec.e1 {
        let errors = e1_errors();
        let error = &errors[spec.error as usize % errors.len()];
        AttributionEvent::for_e1(error, spec.case as usize % 4, &trial)
    } else {
        let errors = e2_errors();
        let error = &errors[spec.error as usize % errors.len()];
        AttributionEvent::for_e2(error, spec.case as usize % 4, &trial, monitored_map())
    };
    if let Some((verdict, divergence)) = spec.oracle {
        event.propagation = Some(
            [PROPAGATION_MASKED, PROPAGATION_SILENT, PROPAGATION_REACHED][verdict as usize % 3]
                .to_owned(),
        );
        if verdict % 3 != 0 {
            event.first_divergence_ms = Some(u64::from(divergence));
        }
    }
    event
}

fn spec_strategy() -> impl Strategy<Value = EventSpec> {
    (
        any::<bool>(),
        any::<u16>(),
        any::<u8>(),
        proptest::collection::vec((0u8..7, 20u16..2_000), 0..4),
        any::<bool>(),
        (any::<bool>(), any::<u8>(), 20u16..2_000),
    )
        .prop_map(|(e1, error, case, detections, failed, oracle)| EventSpec {
            e1,
            error,
            case,
            detections,
            failed,
            oracle: oracle.0.then_some((oracle.1, oracle.2)),
        })
}

fn recorded(events: &[AttributionEvent]) -> AttributionAggregate {
    let mut aggregate = AttributionAggregate::new();
    for event in events {
        aggregate.record(event);
    }
    aggregate
}

fn merged(parts: &[AttributionAggregate]) -> AttributionAggregate {
    let mut acc = AttributionAggregate::new();
    for part in parts {
        acc.merge(part);
    }
    acc
}

proptest! {
    /// The empty aggregate is the identity of merge, on both sides.
    #[test]
    fn merge_identity(specs in proptest::collection::vec(spec_strategy(), 0..8)) {
        let events: Vec<AttributionEvent> = specs.iter().map(build).collect();
        let aggregate = recorded(&events);
        let mut left = AttributionAggregate::new();
        left.merge(&aggregate);
        prop_assert_eq!(&left, &aggregate);
        let mut right = aggregate.clone();
        right.merge(&AttributionAggregate::new());
        prop_assert_eq!(&right, &aggregate);
    }

    /// (a ∪ b) ∪ c == a ∪ (b ∪ c): shard aggregates may be combined in
    /// any grouping (tree-reduce vs. a serial fold).
    #[test]
    fn merge_associative(
        a in proptest::collection::vec(spec_strategy(), 0..6),
        b in proptest::collection::vec(spec_strategy(), 0..6),
        c in proptest::collection::vec(spec_strategy(), 0..6),
    ) {
        let build_all = |specs: &[EventSpec]| {
            recorded(&specs.iter().map(build).collect::<Vec<_>>())
        };
        let (sa, sb, sc) = (build_all(&a), build_all(&b), build_all(&c));
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa;
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// a ∪ b == b ∪ a: every field merges commutatively (counts add,
    /// latency extrema take min/max).
    #[test]
    fn merge_commutative(
        a in proptest::collection::vec(spec_strategy(), 0..8),
        b in proptest::collection::vec(spec_strategy(), 0..8),
    ) {
        let sa = recorded(&a.iter().map(build).collect::<Vec<_>>());
        let sb = recorded(&b.iter().map(build).collect::<Vec<_>>());
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb;
        ba.merge(&sa);
        prop_assert_eq!(ab, ba);
    }

    /// A fold of per-event singleton aggregates, in any order, equals
    /// one aggregate that recorded every event — the exact worker
    /// fan-in and `merge_journals` shape.
    #[test]
    fn fold_of_singletons_is_order_invariant(
        specs in proptest::collection::vec(spec_strategy(), 1..10),
        rotation in 0usize..10,
    ) {
        let events: Vec<AttributionEvent> = specs.iter().map(build).collect();
        let combined = recorded(&events);

        let parts: Vec<AttributionAggregate> = events
            .iter()
            .map(|e| recorded(std::slice::from_ref(e)))
            .collect();
        prop_assert_eq!(&merged(&parts), &combined);

        let mut rotated = parts.clone();
        let split = rotation % rotated.len();
        rotated.rotate_left(split);
        prop_assert_eq!(&merged(&rotated), &combined);

        let mut reversed = parts;
        reversed.reverse();
        prop_assert_eq!(&merged(&reversed), &combined);
    }
}
