//! Property tests for the fleet flight recorder's fold algebra.
//!
//! The flight log must obey the same contract as every other fleet
//! fan-in (journal merge, telemetry merge, attribution fold): the
//! canonical artefact is a pure function of the *set* of recorded
//! transitions, never of the interleaving in which connection threads
//! observed them. Otherwise two runs of the same fleet could ship
//! different `flight_log.json` bytes and the observer-equivalence gate
//! would flicker.

use fic::fleet::{FlightLog, SpanEvent, SpanKind};
use proptest::prelude::*;

/// An arbitrary transition: small domains so collisions (same slice,
/// same millisecond, same kind) actually happen and exercise the
/// canonical tie-break.
fn event_strategy() -> impl Strategy<Value = SpanEvent> {
    const KINDS: [SpanKind; 7] = [
        SpanKind::Enqueued,
        SpanKind::Leased,
        SpanKind::HeartbeatExtended,
        SpanKind::Reassigned,
        SpanKind::Submitted,
        SpanKind::Folded,
        SpanKind::Deduped,
    ];
    const CAMPAIGNS: [&str; 3] = ["e1", "e2", "wire"];
    (0u64..50, 0usize..3, 0u64..6, 0usize..7, 0u64..4).prop_map(
        |(at_ms, campaign, slice_id, kind, worker)| SpanEvent {
            at_ms,
            campaign: CAMPAIGNS[campaign].to_owned(),
            slice_id,
            kind: KINDS[kind],
            worker: (worker > 0).then_some(worker),
        },
    )
}

proptest! {
    /// Any permutation of the recorded events folds to the same
    /// canonical log — and therefore the same JSON bytes and the same
    /// Chrome trace.
    #[test]
    fn log_is_permutation_invariant(
        events in proptest::collection::vec(event_strategy(), 0..40),
        seed in 0u64..10_000,
    ) {
        let reference = FlightLog::from_events(events.clone());
        reference.validate().expect("canonical log validates");

        // A deterministic shuffle driven by the seed.
        let mut shuffled = events;
        let mut state = seed.wrapping_mul(2_654_435_761).wrapping_add(1);
        for k in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            shuffled.swap(k, (state as usize) % (k + 1));
        }
        let permuted = FlightLog::from_events(shuffled);

        prop_assert_eq!(&permuted, &reference);
        prop_assert_eq!(
            serde_json::to_string_pretty(&permuted).unwrap(),
            serde_json::to_string_pretty(&reference).unwrap()
        );
        prop_assert_eq!(
            serde_json::to_string(&permuted.to_chrome_trace()).unwrap(),
            serde_json::to_string(&reference.to_chrome_trace()).unwrap()
        );
    }

    /// Merge is commutative and agrees with folding the union directly,
    /// however the events are split across recorders.
    #[test]
    fn merge_is_order_free(
        events in proptest::collection::vec(event_strategy(), 0..40),
        cut in 0usize..41,
    ) {
        let cut = cut.min(events.len());
        let a = FlightLog::from_events(events[..cut].to_vec());
        let b = FlightLog::from_events(events[cut..].to_vec());
        let union = FlightLog::from_events(events.clone());
        prop_assert_eq!(&a.merge(&b), &union);
        prop_assert_eq!(&b.merge(&a), &union);
    }

    /// Per-campaign restriction commutes with merge: filtering the
    /// fleet-wide log equals merging per-campaign logs.
    #[test]
    fn campaign_filter_commutes_with_merge(
        events in proptest::collection::vec(event_strategy(), 0..40),
    ) {
        let fleet = FlightLog::from_events(events.clone());
        for campaign in ["e1", "e2", "wire"] {
            let direct = fleet.for_campaign(campaign);
            let rebuilt = FlightLog::from_events(
                events
                    .iter()
                    .filter(|e| e.campaign == campaign)
                    .cloned()
                    .collect(),
            );
            prop_assert_eq!(direct, rebuilt);
        }
    }
}
