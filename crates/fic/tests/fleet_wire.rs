//! Wire-protocol tests for the fleet service.
//!
//! The frame layer must round-trip every command and response variant,
//! survive hostile input (truncated frames, corrupt payloads, absurd
//! length prefixes) without panicking, and refuse version-mismatched
//! workers with a typed error rather than a parse failure. Chunk-size
//! independence of the incremental decoder is pinned by a proptest fuzz
//! that re-slices encoded streams at random frame boundaries.

use std::io::Cursor;
use std::net::TcpStream;

use fic::fleet::wire::{
    decode_payload, encode_frame, read_frame, write_frame, Command, FrameBuffer, FrameError,
    RefusalKind, Response, SliceLease, MAX_FRAME_LEN, WIRE_VERSION,
};
use fic::fleet::{CampaignSpec, Server, ServerOptions};
use fic::journal::{CampaignKind, TrialRecord};
use fic::telemetry::{Registry, TelemetrySnapshot};
use fic::{Protocol, Trial};
use proptest::prelude::*;

fn sample_trial(detected_at: Option<u64>) -> Trial {
    let mut per_ea_first_ms = [None; 7];
    if let Some(at) = detected_at {
        per_ea_first_ms[2] = Some(at);
    }
    Trial {
        failed: detected_at.is_none(),
        per_ea_first_ms,
        first_injection_ms: 20,
        final_distance_m: 187.5,
    }
}

fn sample_telemetry() -> TelemetrySnapshot {
    let registry = Registry::new();
    registry.counter("campaign.trials").add(3);
    registry.gauge("campaign.workers").set(2);
    registry.snapshot()
}

fn sample_lease() -> SliceLease {
    SliceLease {
        slice_id: 17,
        campaign: "smoke".to_owned(),
        kind: CampaignKind::E2,
        protocol: Protocol::scaled(2, 1_500),
        case_index: 3,
        error_numbers: vec![4, 9, 200],
    }
}

fn all_commands() -> Vec<Command> {
    vec![
        Command::Register {
            wire_version: WIRE_VERSION,
            worker: "w-1".to_owned(),
        },
        Command::LeaseRequest { worker_id: 1 },
        Command::Heartbeat {
            worker_id: 1,
            slice_id: 17,
        },
        Command::SliceResult {
            worker_id: 1,
            slice_id: 17,
            records: vec![
                TrialRecord {
                    campaign: CampaignKind::E1,
                    error_number: 12,
                    case_index: 3,
                    trial: sample_trial(Some(140)),
                },
                TrialRecord {
                    campaign: CampaignKind::E1,
                    error_number: 13,
                    case_index: 3,
                    trial: sample_trial(None),
                },
            ],
            telemetry: sample_telemetry(),
        },
        Command::Shutdown { worker_id: 1 },
    ]
}

fn all_responses() -> Vec<Response> {
    vec![
        Response::Registered {
            worker_id: 1,
            lease_ms: 30_000,
        },
        Response::Lease {
            slice: sample_lease(),
        },
        Response::NoWork { done: false },
        Response::NoWork { done: true },
        Response::ResultAck { accepted: true },
        Response::ResultAck { accepted: false },
        Response::Refused {
            kind: RefusalKind::VersionMismatch,
            message: "worker speaks wire version 0".to_owned(),
        },
        Response::Refused {
            kind: RefusalKind::UnknownWorker,
            message: "who?".to_owned(),
        },
        Response::Refused {
            kind: RefusalKind::UnknownSlice,
            message: "what?".to_owned(),
        },
        Response::Refused {
            kind: RefusalKind::Malformed,
            message: "first command must be Register".to_owned(),
        },
    ]
}

#[test]
fn every_command_round_trips() {
    for command in all_commands() {
        let frame = encode_frame(&command);
        let decoded: Command = decode_payload(&frame[4..]).unwrap();
        assert_eq!(decoded, command);

        let mut cursor = Cursor::new(frame);
        let read: Command = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(read, command);
        // The stream ends cleanly on the frame boundary.
        assert!(read_frame::<_, Command>(&mut cursor).unwrap().is_none());
    }
}

#[test]
fn every_response_round_trips() {
    for response in all_responses() {
        let mut stream = Vec::new();
        write_frame(&mut stream, &response).unwrap();
        let mut cursor = Cursor::new(stream);
        let read: Response = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(read, response);
    }
}

#[test]
fn truncated_frames_are_typed_errors_not_panics() {
    let frame = encode_frame(&Command::LeaseRequest { worker_id: 9 });
    // Every proper prefix of the frame (except the empty one, which is
    // a clean EOF) must surface as Truncated.
    for cut in 1..frame.len() {
        let mut cursor = Cursor::new(frame[..cut].to_vec());
        match read_frame::<_, Command>(&mut cursor) {
            Err(FrameError::Truncated) => {}
            other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
        }
    }
    let mut empty = Cursor::new(Vec::new());
    assert!(read_frame::<_, Command>(&mut empty).unwrap().is_none());
}

#[test]
fn corrupt_payloads_are_parse_errors_not_panics() {
    // Valid framing, garbage payload.
    let mut frame = Vec::new();
    let payload = b"\xff\xfe\x00 not json at all";
    frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    frame.extend_from_slice(payload);
    let mut cursor = Cursor::new(frame);
    match read_frame::<_, Command>(&mut cursor) {
        Err(FrameError::Parse(_)) => {}
        other => panic!("expected Parse, got {other:?}"),
    }

    // Valid JSON that is not a Command.
    let mut frame = Vec::new();
    let payload = br#"{"Unheard":{"of":1}}"#;
    frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    frame.extend_from_slice(payload);
    let mut cursor = Cursor::new(frame);
    match read_frame::<_, Command>(&mut cursor) {
        Err(FrameError::Parse(_)) => {}
        other => panic!("expected Parse, got {other:?}"),
    }
}

#[test]
fn oversized_prefixes_are_refused_without_allocating() {
    let mut frame = Vec::new();
    frame.extend_from_slice(&u32::MAX.to_be_bytes());
    frame.extend_from_slice(b"doesn't matter");
    let mut cursor = Cursor::new(frame);
    match read_frame::<_, Command>(&mut cursor) {
        Err(FrameError::Oversize(len)) => assert_eq!(len, u32::MAX as usize),
        other => panic!("expected Oversize, got {other:?}"),
    }

    // The single-port design depends on ASCII "GET " decoding as an
    // oversized length — that is how HTTP clients are told apart from
    // workers. Pin it.
    let get = u32::from_be_bytes(*b"GET ") as usize;
    assert!(
        get > MAX_FRAME_LEN,
        "\"GET \" as a length prefix ({get}) must exceed MAX_FRAME_LEN ({MAX_FRAME_LEN})"
    );

    let mut buffer = FrameBuffer::new();
    buffer.extend(b"GET /status HTTP/1.1\r\n");
    match buffer.next_payload() {
        Err(FrameError::Oversize(len)) => assert_eq!(len, get),
        other => panic!("expected Oversize, got {other:?}"),
    }
}

#[test]
fn version_mismatched_worker_is_refused_with_typed_error() {
    let dir = std::env::temp_dir().join(format!("fic-fleet-wire-{}", std::process::id()));
    let options = ServerOptions {
        listen: "127.0.0.1:0".to_owned(),
        out_dir: dir.clone(),
        journal_dir: Some(dir),
        ..ServerOptions::default()
    };
    // One real (tiny) campaign so the fleet is not instantly done.
    let spec = CampaignSpec::with_limits("wire", Protocol::scaled(2, 500), 1, 0);
    let server = Server::bind(options, vec![spec]).unwrap();
    let addr = server.local_addr().unwrap();
    // Serve forever on a detached thread; the test process exits
    // without joining it.
    std::thread::spawn(move || server.run());

    // Wrong version: typed refusal, then the server closes.
    let mut stream = TcpStream::connect(addr).unwrap();
    write_frame(
        &mut stream,
        &Command::Register {
            wire_version: WIRE_VERSION + 1,
            worker: "time-traveller".to_owned(),
        },
    )
    .unwrap();
    match read_frame::<_, Response>(&mut stream).unwrap().unwrap() {
        Response::Refused { kind, .. } => assert_eq!(kind, RefusalKind::VersionMismatch),
        other => panic!("expected Refused, got {other:?}"),
    }
    assert!(
        read_frame::<_, Response>(&mut stream).unwrap().is_none(),
        "the server must close a version-mismatched connection"
    );

    // A non-Register first command is also refused.
    let mut stream = TcpStream::connect(addr).unwrap();
    write_frame(&mut stream, &Command::LeaseRequest { worker_id: 1 }).unwrap();
    match read_frame::<_, Response>(&mut stream).unwrap().unwrap() {
        Response::Refused { kind, .. } => assert_eq!(kind, RefusalKind::Malformed),
        other => panic!("expected Refused, got {other:?}"),
    }

    // The right version is still welcome afterwards.
    let mut stream = TcpStream::connect(addr).unwrap();
    write_frame(
        &mut stream,
        &Command::Register {
            wire_version: WIRE_VERSION,
            worker: "contemporary".to_owned(),
        },
    )
    .unwrap();
    match read_frame::<_, Response>(&mut stream).unwrap().unwrap() {
        Response::Registered { lease_ms, .. } => assert!(lease_ms > 0),
        other => panic!("expected Registered, got {other:?}"),
    }
}

/// A generated conversation: indices into a fixed message pool.
fn conversation_strategy() -> impl Strategy<Value = (Vec<u8>, Vec<u8>)> {
    (
        proptest::collection::vec(0u8..5, 1..8),   // which commands
        proptest::collection::vec(1u8..64, 1..32), // chunk sizes
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Feeding a multi-frame stream to the incremental decoder in
    /// arbitrary chunk sizes yields exactly the encoded messages, in
    /// order, and ends on a frame boundary.
    #[test]
    fn frame_buffer_is_chunk_size_independent(spec in conversation_strategy()) {
        let (picks, chunks) = spec;
        let pool = all_commands();
        let sent: Vec<Command> = picks
            .iter()
            .map(|&i| pool[i as usize % pool.len()].clone())
            .collect();
        let stream: Vec<u8> = sent.iter().flat_map(encode_frame).collect();

        let mut buffer = FrameBuffer::new();
        let mut received: Vec<Command> = Vec::new();
        let mut offset = 0;
        let mut chunk_iter = chunks.iter().cycle();
        while offset < stream.len() {
            let take = (*chunk_iter.next().unwrap() as usize).min(stream.len() - offset);
            buffer.extend(&stream[offset..offset + take]);
            offset += take;
            while let Some(payload) = buffer.next_payload().unwrap() {
                received.push(decode_payload(&payload).unwrap());
            }
        }
        prop_assert_eq!(&received, &sent);
        prop_assert!(!buffer.mid_frame(), "clean stream must end on a boundary");
    }

    /// Truncating the stream anywhere never panics: complete frames
    /// before the cut decode, and the buffer reports a partial frame
    /// exactly when the cut is mid-frame.
    #[test]
    fn truncation_anywhere_is_detected(spec in conversation_strategy(), cut_seed in 0usize..10_000) {
        let (picks, _) = spec;
        let pool = all_commands();
        let sent: Vec<Command> = picks
            .iter()
            .map(|&i| pool[i as usize % pool.len()].clone())
            .collect();
        let stream: Vec<u8> = sent.iter().flat_map(encode_frame).collect();
        let cut = cut_seed % (stream.len() + 1);

        let mut buffer = FrameBuffer::new();
        buffer.extend(&stream[..cut]);
        let mut decoded = 0usize;
        while let Some(payload) = buffer.next_payload().unwrap() {
            let _: Command = decode_payload(&payload).unwrap();
            decoded += 1;
        }
        prop_assert!(decoded <= sent.len());
        // The cut is mid-frame iff undecoded bytes remain buffered.
        let consumed: usize = sent[..decoded].iter().map(|c| encode_frame(c).len()).sum();
        prop_assert_eq!(buffer.mid_frame(), cut != consumed);
    }
}

/// Spins a server (optionally with the flight recorder) and returns its
/// address; the serve loop runs on a detached thread.
fn spin_http_server(tag: &str, flight_recorder: bool) -> std::net::SocketAddr {
    let dir = std::env::temp_dir().join(format!("fic-fleet-http-{tag}-{}", std::process::id()));
    let options = ServerOptions {
        listen: "127.0.0.1:0".to_owned(),
        out_dir: dir.clone(),
        journal_dir: Some(dir),
        flight_recorder,
        ..ServerOptions::default()
    };
    let spec = CampaignSpec::with_limits("wire", Protocol::scaled(2, 500), 1, 0);
    let server = Server::bind(options, vec![spec]).unwrap();
    let addr = server.local_addr().unwrap();
    std::thread::spawn(move || server.run());
    addr
}

/// Issues a raw HTTP GET and returns the full response text.
fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    use std::io::{Read, Write};
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: fleet\r\n\r\n").as_bytes())
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    response
}

/// Pins the `/metrics` response shape: the 200 status line, the
/// Prometheus content type (scrapers dispatch on it), and an
/// exposition body that parses back into a telemetry snapshot.
#[test]
fn metrics_endpoint_serves_prometheus_exposition() {
    let addr = spin_http_server("metrics", false);
    let response = http_get(addr, "/metrics");
    let (head, body) = response.split_once("\r\n\r\n").unwrap();
    assert!(
        head.starts_with("HTTP/1.1 200 OK\r\n"),
        "status line pinned: {head}"
    );
    assert!(
        head.contains("Content-Type: text/plain; version=0.0.4"),
        "Prometheus content type pinned: {head}"
    );
    let snapshot = TelemetrySnapshot::from_prometheus(body).expect("body is valid exposition");
    assert_eq!(snapshot.to_prometheus(), body, "exposition round-trips");
}

/// Pins the `/trace` response shape in both server configurations:
/// with `--flight-recorder` it is Chrome `trace_event` JSON; without,
/// a 404 naming the flag that would enable it.
#[test]
fn trace_endpoint_serves_chrome_trace_or_a_typed_404() {
    let addr = spin_http_server("trace-on", true);
    let response = http_get(addr, "/trace");
    let (head, body) = response.split_once("\r\n\r\n").unwrap();
    assert!(
        head.starts_with("HTTP/1.1 200 OK\r\n"),
        "status line pinned: {head}"
    );
    assert!(head.contains("Content-Type: application/json"));
    assert!(
        body.contains("traceEvents"),
        "Chrome trace envelope pinned: {body}"
    );

    let addr = spin_http_server("trace-off", false);
    let response = http_get(addr, "/trace");
    let (head, body) = response.split_once("\r\n\r\n").unwrap();
    assert!(
        head.starts_with("HTTP/1.1 404 Not Found\r\n"),
        "status line pinned: {head}"
    );
    assert!(
        body.contains("--flight-recorder"),
        "the 404 must name the enabling flag: {body}"
    );
}
