//! Property tests for the fleet scheduler and its fan-in algebra.
//!
//! The scheduler is a pure state machine over logical time, so these
//! tests drive it directly: lease expiry must hand silent workers'
//! slices to the next asker (and only after the TTL), duplicate
//! results must dedup first-wins no matter who submits in what order,
//! and the merged aggregates a server folds from slice results must be
//! invariant under the arrival/completion permutation — the same
//! contract `prop_telemetry`/`prop_attribution` pin for the underlying
//! merges, checked here end-to-end through fleet semantics.

use std::collections::HashSet;

use fic::fleet::{Scheduler, SliceSpec, SliceStatus};
use fic::journal::CampaignKind;
use fic::telemetry::{Registry, TelemetrySnapshot};
use fic::{error_set, E1Report, Trial};
use proptest::prelude::*;

fn slice(case_index: usize) -> SliceSpec {
    SliceSpec {
        campaign: 0,
        kind: CampaignKind::E1,
        case_index,
        error_numbers: vec![1, 2, 3],
    }
}

/// A synthetic trial that is a pure function of its key, mirroring the
/// campaign engine's determinism: every worker that runs the same
/// ⟨error, case⟩ pair produces the same trial, which is what makes
/// first-wins dedup order-free.
fn trial_for(error_number: usize, case_index: usize) -> Trial {
    let mut per_ea_first_ms = [None; 7];
    if !(error_number + case_index).is_multiple_of(3) {
        per_ea_first_ms[error_number % 7] = Some(20 + 20 * (case_index as u64 + 1));
    }
    Trial {
        failed: (error_number + case_index).is_multiple_of(5),
        per_ea_first_ms,
        first_injection_ms: 20,
        final_distance_m: 150.0 + error_number as f64,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A slice whose holder stops heartbeating is reassigned exactly
    /// when the TTL lapses: not one tick before, unconditionally after.
    #[test]
    fn lease_expires_exactly_at_ttl(
        lease_ms in 1u64..1_000,
        beats in proptest::collection::vec(1u64..1_000, 0..6),
    ) {
        let mut s = Scheduler::new(lease_ms);
        s.push(slice(0));
        let holder = s.register("holder");
        let vulture = s.register("vulture");
        let (id, _) = s.lease(holder, 0).unwrap();

        // Heartbeat at strictly-increasing instants, each within the
        // TTL of the previous extension so the lease stays alive.
        let mut last = 0u64;
        for delta in &beats {
            let at = last + (delta % lease_ms.max(1)).min(lease_ms - 1);
            prop_assert!(s.heartbeat(holder, id, at));
            last = at;
        }
        let expiry = last + lease_ms;

        // One instant before the TTL lapses the slice is not available.
        prop_assert!(s.lease(vulture, expiry - 1).is_none());
        prop_assert_eq!(
            s.status(id),
            Some(SliceStatus::Leased { worker_id: holder, expires_at_ms: expiry, leased_at_ms: 0 })
        );
        // At the TTL it is handed to the next asker, and the old
        // holder's heartbeat becomes a no-op.
        let (re_id, _) = s.lease(vulture, expiry).unwrap();
        prop_assert_eq!(re_id, id);
        prop_assert!(!s.heartbeat(holder, id, expiry));
    }

    /// However many workers race to submit a slice, in whatever order,
    /// exactly one submission per slice is accepted — the first.
    #[test]
    fn duplicate_results_dedup_first_wins(
        n_slices in 1usize..6,
        n_workers in 2usize..5,
        order_seed in proptest::collection::vec(0usize..100, 1..64),
    ) {
        let mut s = Scheduler::new(10);
        for c in 0..n_slices {
            s.push(slice(c));
        }
        let workers: Vec<u64> = (0..n_workers).map(|i| s.register(&format!("w{i}"))).collect();
        // Everyone ends up holding (or having held) everything: lease
        // each slice, let it lapse, lease it again with another worker.
        for (i, &w) in workers.iter().enumerate() {
            let at = (i as u64) * 20;
            while s.lease(w, at).is_some() {}
        }

        // Submit (slice, worker) attempts in a generated order, with
        // repeats; count the accepted ones per slice.
        let mut accepted = vec![0usize; n_slices];
        for (step, seed) in order_seed.iter().enumerate() {
            let slice_id = (seed % n_slices) as u64;
            let worker = workers[(seed / n_slices + step) % n_workers];
            if s.complete(worker, slice_id) {
                accepted[slice_id as usize] += 1;
            }
        }
        for (slice_id, count) in accepted.iter().enumerate() {
            prop_assert!(*count <= 1, "slice {slice_id} accepted {count} results");
            if *count == 1 {
                prop_assert_eq!(s.status(slice_id as u64), Some(SliceStatus::Done));
            }
        }
    }

    /// Folding the same slice results in any arrival order — with any
    /// duplicates mixed in — produces identical merged aggregates:
    /// the report fold, the recorded-key set and the telemetry merge
    /// are all permutation-invariant, so a fleet's tables cannot
    /// depend on which worker finished first.
    #[test]
    fn merged_aggregates_are_arrival_order_invariant(
        permutation_seed in proptest::collection::vec(0usize..1_000, 8..32),
    ) {
        let errors = error_set::e1();
        // The canonical result set: 4 errors × 3 cases, each with a
        // per-slice telemetry snapshot.
        let canonical: Vec<(usize, usize)> = (1..=4usize)
            .flat_map(|n| (0..3usize).map(move |c| (n, c)))
            .collect();

        let fold = |order: &[usize]| -> (E1Report, Vec<(String, u64)>, usize) {
            let mut report = E1Report::new();
            let mut telemetry = TelemetrySnapshot::new();
            let mut recorded: HashSet<(usize, usize)> = HashSet::new();
            // Visit the canonical set in the generated order, then a
            // sweep in canonical order so every result arrives at
            // least once (duplicates are dropped by first-wins).
            let visits = order
                .iter()
                .map(|&i| canonical[i % canonical.len()])
                .chain(canonical.iter().copied());
            for (number, case) in visits {
                if !recorded.insert((number, case)) {
                    continue;
                }
                report.record(&errors[number - 1], &trial_for(number, case));
                let registry = Registry::new();
                registry.counter("campaign.trials").inc();
                registry
                    .counter(&format!("campaign.case.{case}.trials"))
                    .inc();
                telemetry.merge(&registry.snapshot());
            }
            let counters: Vec<(String, u64)> = [
                "campaign.trials".to_owned(),
                "campaign.case.0.trials".to_owned(),
                "campaign.case.1.trials".to_owned(),
                "campaign.case.2.trials".to_owned(),
            ]
            .into_iter()
            .map(|name| {
                let value = telemetry.counter(&name);
                (name, value)
            })
            .collect();
            (report, counters, recorded.len())
        };

        let identity: Vec<usize> = (0..canonical.len()).collect();
        let (base_report, base_counters, base_n) = fold(&identity);
        let (perm_report, perm_counters, perm_n) = fold(&permutation_seed);
        prop_assert_eq!(base_n, perm_n);
        prop_assert_eq!(base_report, perm_report);
        prop_assert_eq!(base_counters, perm_counters);
    }
}

#[test]
fn released_worker_slices_requeue_in_id_order() {
    let mut s = Scheduler::new(1_000);
    for c in 0..4 {
        s.push(slice(c));
    }
    let doomed = s.register("doomed");
    let survivor = s.register("survivor");
    let (a, _) = s.lease(doomed, 0).unwrap();
    let (b, _) = s.lease(doomed, 0).unwrap();
    let (c, _) = s.lease(survivor, 0).unwrap();
    assert_eq!(s.release_worker(doomed), vec![a, b]);
    // The survivor picks the released slices back up, lowest id first,
    // before reaching the never-leased tail.
    let (next, _) = s.lease(survivor, 1).unwrap();
    assert_eq!(next, a);
    let (next, _) = s.lease(survivor, 1).unwrap();
    assert_eq!(next, b);
    let (next, _) = s.lease(survivor, 1).unwrap();
    assert_eq!(next, 3);
    assert!(s.complete(survivor, a));
    assert!(s.complete(survivor, b));
    assert!(s.complete(survivor, c));
    assert!(s.complete(survivor, 3));
    assert!(s.all_done());
    assert_eq!(s.campaign_counts(0), (0, 0, 4));
}
