//! Property tests for the campaign report algebra.
//!
//! The crash-safe journal and the worker fan-out both rely on reports
//! being commutative accumulators: trials may be recorded in any order,
//! partial reports may be merged in any grouping, and the result must
//! not change. These properties are what makes checkpoint/resume exact
//! rather than approximate.

use fic::{error_set, CampaignRunner, E1Report, E2Report, Protocol, Trial};
use proptest::prelude::*;

/// Builds a synthetic trial from compact generator output.
fn trial(detected_mask: u8, at: u64, failed: bool) -> Trial {
    let mut per_ea_first_ms = [None; 7];
    for (ea, slot) in per_ea_first_ms.iter_mut().enumerate() {
        if detected_mask & (1 << ea) != 0 {
            *slot = Some(at + ea as u64);
        }
    }
    Trial {
        failed,
        per_ea_first_ms,
        first_injection_ms: 20,
        final_distance_m: 150.0,
    }
}

/// Records each generated trial against a (cyclically chosen) E1 error.
fn e1_report_from(trials: &[(u8, u64, bool)]) -> E1Report {
    let errors = error_set::e1();
    let mut report = E1Report::new();
    for (k, &(mask, at, failed)) in trials.iter().enumerate() {
        report.record(&errors[k % errors.len()], &trial(mask, at, failed));
    }
    report
}

fn e2_report_from(trials: &[(u8, u64, bool)]) -> E2Report {
    let errors = error_set::e2();
    let mut report = E2Report::new();
    for (k, &(mask, at, failed)) in trials.iter().enumerate() {
        report.record(&errors[k % errors.len()], &trial(mask, at, failed));
    }
    report
}

fn trial_strategy() -> impl Strategy<Value = (u8, u64, bool)> {
    (0u8..128, 21u64..40_000, any::<bool>())
}

proptest! {
    /// new() is the identity of merge, on both sides.
    #[test]
    fn merge_identity(
        trials in proptest::collection::vec(trial_strategy(), 0..40),
    ) {
        let report = e1_report_from(&trials);
        let mut left = E1Report::new();
        left.merge(&report);
        prop_assert_eq!(&left, &report);
        let mut right = report.clone();
        right.merge(&E1Report::new());
        prop_assert_eq!(&right, &report);

        let e2 = e2_report_from(&trials);
        let mut left = E2Report::new();
        left.merge(&e2);
        prop_assert_eq!(&left, &e2);
        let mut right = e2.clone();
        right.merge(&E2Report::new());
        prop_assert_eq!(&right, &e2);
    }

    /// Merging partials is associative: (a ∪ b) ∪ c == a ∪ (b ∪ c).
    #[test]
    fn merge_associative(
        a in proptest::collection::vec(trial_strategy(), 0..20),
        b in proptest::collection::vec(trial_strategy(), 0..20),
        c in proptest::collection::vec(trial_strategy(), 0..20),
    ) {
        let (ra, rb, rc) = (e1_report_from(&a), e1_report_from(&b), e1_report_from(&c));
        let mut left = ra.clone();
        left.merge(&rb);
        left.merge(&rc);
        let mut bc = rb.clone();
        bc.merge(&rc);
        let mut right = ra.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);

        let (ra, rb, rc) = (e2_report_from(&a), e2_report_from(&b), e2_report_from(&c));
        let mut left = ra.clone();
        left.merge(&rb);
        left.merge(&rc);
        let mut bc = rb.clone();
        bc.merge(&rc);
        let mut right = ra.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// Merge order does not matter (commutativity — what makes the
    /// journal collector order-independent).
    #[test]
    fn merge_commutative(
        a in proptest::collection::vec(trial_strategy(), 1..20),
        b in proptest::collection::vec(trial_strategy(), 1..20),
    ) {
        let (ra, rb) = (e1_report_from(&a), e1_report_from(&b));
        let mut ab = ra.clone();
        ab.merge(&rb);
        let mut ba = rb.clone();
        ba.merge(&ra);
        prop_assert_eq!(ab, ba);
    }

    /// Recording trials in any order produces the same report (the
    /// collector folds results in completion order, which varies).
    #[test]
    fn record_order_irrelevant(
        trials in proptest::collection::vec(trial_strategy(), 2..24),
        rotation in 0usize..24,
    ) {
        let errors = error_set::e1();
        let indexed: Vec<(usize, (u8, u64, bool))> =
            trials.iter().copied().enumerate().collect();
        let mut rotated = indexed.clone();
        let split = rotation % rotated.len();
        rotated.rotate_left(split);

        let mut in_order = E1Report::new();
        for &(k, (mask, at, failed)) in &indexed {
            in_order.record(&errors[k % errors.len()], &trial(mask, at, failed));
        }
        let mut shuffled = E1Report::new();
        for &(k, (mask, at, failed)) in &rotated {
            shuffled.record(&errors[k % errors.len()], &trial(mask, at, failed));
        }
        prop_assert_eq!(in_order, shuffled);
    }
}

/// Fan-out determinism: the same campaign run serially and with 4 and 8
/// workers produces identical reports. (Not a proptest: each run costs
/// real simulation time, so the sample is a fixed small campaign.)
#[test]
fn fan_out_workers_1_4_8_match_serial() {
    let errors = error_set::e1();
    let subset = &errors[78..82]; // spans the EA5/EA6 signal boundary
    let mut reports = Vec::new();
    for workers in [1usize, 4, 8] {
        let mut protocol = Protocol::scaled(2, 1_200);
        protocol.workers = workers;
        reports.push(CampaignRunner::new(protocol).run_e1(subset));
    }
    assert_eq!(reports[0], reports[1], "1 worker vs 4 workers");
    assert_eq!(reports[0], reports[2], "1 worker vs 8 workers");
    assert_eq!(reports[0].trials(), 4 * 4);

    let e2_errors = error_set::e2();
    let e2_subset = &e2_errors[..3];
    let mut e2_reports = Vec::new();
    for workers in [1usize, 4, 8] {
        let mut protocol = Protocol::scaled(2, 1_200);
        protocol.workers = workers;
        e2_reports.push(CampaignRunner::new(protocol).run_e2(e2_subset));
    }
    assert_eq!(e2_reports[0], e2_reports[1], "E2: 1 worker vs 4 workers");
    assert_eq!(e2_reports[0], e2_reports[2], "E2: 1 worker vs 8 workers");
}
