//! Property tests for the convergence estimator algebra.
//!
//! The campaign collector folds trials in completion order, the fleet
//! server folds slice results in arrival order, and `campaign_watch`
//! re-derives the same state from a journal in record order. That is
//! only sound if [`ConvergenceAggregate::merge`] is associative,
//! commutative, and permutation-invariant — and if a fold of singleton
//! aggregates equals one aggregate recording every trial. The second
//! half pins the statistics: Wilson intervals contain the point
//! estimate, the half-width never widens as trials accumulate at a
//! fixed detection ratio, and the precision forecast reaches zero
//! exactly when the target half-width is met.

use fic::convergence::{CellKey, ConvergenceAggregate, DEFAULT_DELTA};
use memsim::Region;
use proptest::prelude::*;

/// Compact generator output for one trial: which cell it lands in and
/// whether it detected.
#[derive(Debug, Clone, Copy)]
struct TrialSpec {
    signal: bool,
    index: u8,
    detected: bool,
}

fn key(spec: TrialSpec) -> CellKey {
    if spec.signal {
        CellKey::Signal(spec.index as usize % 7)
    } else if spec.index.is_multiple_of(2) {
        CellKey::Region(Region::AppRam)
    } else {
        CellKey::Region(Region::Stack)
    }
}

fn spec_strategy() -> impl Strategy<Value = TrialSpec> {
    (any::<bool>(), any::<u8>(), any::<bool>()).prop_map(|(signal, index, detected)| TrialSpec {
        signal,
        index,
        detected,
    })
}

fn recorded(specs: &[TrialSpec]) -> ConvergenceAggregate {
    let mut aggregate = ConvergenceAggregate::new();
    for &spec in specs {
        aggregate.record(key(spec), spec.detected);
    }
    aggregate
}

fn merged(parts: &[ConvergenceAggregate]) -> ConvergenceAggregate {
    let mut acc = ConvergenceAggregate::new();
    for part in parts {
        acc.merge(part);
    }
    acc
}

proptest! {
    /// The empty aggregate is the identity of merge, on both sides.
    #[test]
    fn merge_identity(specs in proptest::collection::vec(spec_strategy(), 0..16)) {
        let aggregate = recorded(&specs);
        let mut left = ConvergenceAggregate::new();
        left.merge(&aggregate);
        prop_assert_eq!(left, aggregate);
        let mut right = aggregate;
        right.merge(&ConvergenceAggregate::new());
        prop_assert_eq!(right, aggregate);
    }

    /// (a ∪ b) ∪ c == a ∪ (b ∪ c): shard aggregates may be combined in
    /// any grouping (tree-reduce vs. a serial fold).
    #[test]
    fn merge_associative(
        a in proptest::collection::vec(spec_strategy(), 0..12),
        b in proptest::collection::vec(spec_strategy(), 0..12),
        c in proptest::collection::vec(spec_strategy(), 0..12),
    ) {
        let (sa, sb, sc) = (recorded(&a), recorded(&b), recorded(&c));
        let mut left = sa;
        left.merge(&sb);
        left.merge(&sc);
        let mut bc = sb;
        bc.merge(&sc);
        let mut right = sa;
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// a ∪ b == b ∪ a: every cell merges commutatively (counts add).
    #[test]
    fn merge_commutative(
        a in proptest::collection::vec(spec_strategy(), 0..16),
        b in proptest::collection::vec(spec_strategy(), 0..16),
    ) {
        let (sa, sb) = (recorded(&a), recorded(&b));
        let mut ab = sa;
        ab.merge(&sb);
        let mut ba = sb;
        ba.merge(&sa);
        prop_assert_eq!(ab, ba);
    }

    /// A fold of per-trial singleton aggregates, in any order, equals
    /// one aggregate that recorded every trial — the exact fleet
    /// fan-in shape.
    #[test]
    fn fold_of_singletons_is_order_invariant(
        specs in proptest::collection::vec(spec_strategy(), 1..16),
        rotation in 0usize..16,
    ) {
        let combined = recorded(&specs);
        let parts: Vec<ConvergenceAggregate> = specs
            .iter()
            .map(|&spec| recorded(&[spec]))
            .collect();
        prop_assert_eq!(merged(&parts), combined);

        let mut rotated = parts.clone();
        let split = rotation % rotated.len();
        rotated.rotate_left(split);
        prop_assert_eq!(merged(&rotated), combined);

        let mut reversed = parts;
        reversed.reverse();
        prop_assert_eq!(merged(&reversed), combined);
    }

    /// Every non-empty cell's Wilson interval is ordered and contains
    /// the point estimate, and the forecast is zero exactly when the
    /// half-width is at (or under) the target.
    #[test]
    fn intervals_contain_the_estimate(
        specs in proptest::collection::vec(spec_strategy(), 0..64),
        delta_mils in 1u32..500,
    ) {
        let delta = f64::from(delta_mils) / 1_000.0;
        let aggregate = recorded(&specs);
        for cell in aggregate.cells(delta) {
            if cell.trials == 0 {
                prop_assert!(cell.estimate.is_none());
                prop_assert!(cell.trials_remaining > 0);
                continue;
            }
            let estimate = cell.estimate.unwrap();
            let (low, high) = (cell.wilson_low.unwrap(), cell.wilson_high.unwrap());
            let half_width = cell.half_width.unwrap();
            prop_assert!((0.0..=1.0).contains(&low));
            prop_assert!((0.0..=1.0).contains(&high));
            prop_assert!(low <= estimate + 1e-12 && estimate <= high + 1e-12);
            prop_assert!(half_width >= 0.0);
            prop_assert_eq!(cell.trials_remaining == 0, half_width <= delta);
        }
    }

    /// CI monotonicity under added trials: folding more data at the
    /// same detection ratio (the aggregate merged with itself) never
    /// widens any cell's Wilson interval, and once a cell reaches the
    /// target it stays there.
    #[test]
    fn more_trials_never_widen_the_interval(
        specs in proptest::collection::vec(spec_strategy(), 1..32),
        doublings in 1usize..5,
    ) {
        let base = recorded(&specs);
        let mut grown = base;
        for _ in 0..doublings {
            let snapshot = grown;
            grown.merge(&snapshot);
        }
        let before = base.cells(DEFAULT_DELTA);
        let after = grown.cells(DEFAULT_DELTA);
        prop_assert_eq!(before.len(), after.len());
        for (b, a) in before.iter().zip(&after) {
            prop_assert_eq!(&b.label, &a.label);
            if b.trials == 0 {
                prop_assert_eq!(a.trials, 0);
                continue;
            }
            // Same detection ratio, strictly more trials.
            prop_assert_eq!(b.estimate.unwrap(), a.estimate.unwrap());
            prop_assert!(a.trials > b.trials);
            prop_assert!(
                a.half_width.unwrap() <= b.half_width.unwrap() + 1e-12,
                "half-width widened for {}: {} -> {}",
                b.label,
                b.half_width.unwrap(),
                a.half_width.unwrap()
            );
            if b.trials_remaining == 0 {
                prop_assert_eq!(a.trials_remaining, 0);
            }
        }
    }
}
