//! Microbenchmarks of the executable assertions themselves: the cost of
//! one test per class and per Table 2 path. These are the per-sample
//! overheads a designer pays for each monitored signal.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ea_core::prelude::*;

fn params_random() -> ContinuousParams {
    ContinuousParams::builder(0, 20_000)
        .increase_rate(0, 1_000)
        .decrease_rate(0, 1_000)
        .build()
        .expect("valid")
}

fn params_static_wrap() -> ContinuousParams {
    ContinuousParams::builder(0, 0x1_0000)
        .increase_rate(1, 1)
        .wrap_allowed()
        .build()
        .expect("valid")
}

fn bench_continuous_paths(c: &mut Criterion) {
    let random = params_random();
    let wrap = params_static_wrap();
    let mut group = c.benchmark_group("assert_cont");
    group.bench_function("pass_increase_3a", |b| {
        b.iter(|| ea_core::assert_cont::check(&random, black_box(Some(5_000)), black_box(5_400)))
    });
    group.bench_function("pass_unchanged_5c", |b| {
        b.iter(|| ea_core::assert_cont::check(&random, black_box(Some(5_000)), black_box(5_000)))
    });
    group.bench_function("pass_wrap_4b", |b| {
        b.iter(|| ea_core::assert_cont::check(&wrap, black_box(Some(0xFFFF)), black_box(0)))
    });
    group.bench_function("fail_range_test1", |b| {
        b.iter(|| ea_core::assert_cont::check(&random, black_box(Some(5_000)), black_box(70_000)))
    });
    group.bench_function("fail_rate_3a", |b| {
        b.iter(|| ea_core::assert_cont::check(&random, black_box(Some(5_000)), black_box(9_000)))
    });
    group.finish();
}

fn bench_discrete_paths(c: &mut Criterion) {
    let linear = DiscreteParams::linear(0..7, true).expect("valid");
    let graph = DiscreteParams::non_linear([
        (1, vec![2, 4]),
        (2, vec![3, 4]),
        (3, vec![4]),
        (4, vec![5]),
        (5, vec![1]),
    ])
    .expect("valid");
    let mut group = c.benchmark_group("assert_disc");
    group.bench_function("linear_pass", |b| {
        b.iter(|| ea_core::assert_disc::check(&linear, black_box(Some(3)), black_box(4)))
    });
    group.bench_function("nonlinear_pass", |b| {
        b.iter(|| ea_core::assert_disc::check(&graph, black_box(Some(1)), black_box(4)))
    });
    group.bench_function("fail_domain", |b| {
        b.iter(|| ea_core::assert_disc::check(&graph, black_box(Some(1)), black_box(99)))
    });
    group.bench_function("fail_transition", |b| {
        b.iter(|| ea_core::assert_disc::check(&graph, black_box(Some(1)), black_box(3)))
    });
    group.finish();
}

fn bench_monitor_and_bank(c: &mut Criterion) {
    let mut group = c.benchmark_group("monitor");
    group.bench_function("signal_monitor_check", |b| {
        let mut monitor = SignalMonitor::continuous("x", params_random());
        let mut v = 5_000;
        b.iter(|| {
            v = (v + 37) % 20_000;
            let _ = black_box(monitor.check(v));
        })
    });
    group.bench_function("seven_monitor_bank_tick", |b| {
        // The per-tick cost of the paper's full instrumentation.
        let mut detectors = arrestor::build_detectors(arrestor::EaSet::ALL);
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            for ea in arrestor::EaId::ALL {
                detectors.check(ea, black_box((t % 1_000) as u16), t);
            }
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_continuous_paths,
    bench_discrete_paths,
    bench_monitor_and_bank
);
criterion_main!(benches);
