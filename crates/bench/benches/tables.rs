//! Per-table regeneration benchmarks — one group per evaluation table
//! and figure of the paper, exercising exactly the pipeline the
//! corresponding `fic` binary runs (scaled down so Criterion can sample
//! it; the full-protocol run is `cargo run --release -p fic --bin
//! full_campaign`).
//!
//! | group | paper artefact | full-scale binary |
//! |---|---|---|
//! | `table6` | Table 6 (E1 distribution) | `table6` |
//! | `table7` | Table 7 (E1 coverage) | `table7` |
//! | `table8` | Table 8 (E1 latencies) | `table8` |
//! | `table9` | Table 9 (E2 coverage/latencies) | `table9` |
//! | `figures` | Figures 1–3, 5/6 + Table 4 | `figures` |

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use fic::{error_set, tables, CampaignRunner, Protocol};

fn scaled_protocol() -> Protocol {
    Protocol::scaled(1, 2_000)
}

fn bench_table6(c: &mut Criterion) {
    c.benchmark_group("table6")
        .bench_function("generate_and_render", |b| {
            b.iter(|| {
                let errors = error_set::e1();
                black_box(tables::render_table6(&errors, 25))
            })
        });
}

fn bench_table7(c: &mut Criterion) {
    let mut group = c.benchmark_group("table7");
    group.sample_size(10);
    group.bench_function("e1_campaign_scaled", |b| {
        let errors = error_set::e1();
        let subset: Vec<_> = errors.iter().step_by(16).copied().collect(); // one per signal
        let runner = CampaignRunner::new(scaled_protocol());
        b.iter(|| {
            let report = runner.run_e1(&subset);
            black_box(tables::render_table7(&report))
        })
    });
    group.finish();
}

fn bench_table8(c: &mut Criterion) {
    let mut group = c.benchmark_group("table8");
    group.sample_size(10);
    group.bench_function("e1_latencies_scaled", |b| {
        let errors = error_set::e1();
        let subset: Vec<_> = errors
            .iter()
            .filter(|e| e.signal_bit == 15)
            .copied()
            .collect();
        let runner = CampaignRunner::new(scaled_protocol());
        b.iter(|| {
            let report = runner.run_e1(&subset);
            black_box(tables::render_table8(&report))
        })
    });
    group.finish();
}

fn bench_table9(c: &mut Criterion) {
    let mut group = c.benchmark_group("table9");
    group.sample_size(10);
    group.bench_function("e2_campaign_scaled", |b| {
        let errors = error_set::e2();
        let subset: Vec<_> = errors.iter().step_by(25).copied().collect();
        let runner = CampaignRunner::new(scaled_protocol());
        b.iter(|| {
            let report = runner.run_e2(&subset);
            black_box(tables::render_table9(&report))
        })
    });
    group.finish();
}

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.bench_function("fig2_series_with_cross_check", |b| {
        b.iter(|| {
            let series = fic::figures::fig2_series(7, 200);
            let mut violations = 0;
            for s in &series {
                for other in &series {
                    violations += s.violations_under(&other.params);
                }
            }
            black_box(violations)
        })
    });
    group.bench_function("fig5_architecture_from_plan", |b| {
        b.iter(|| black_box(fic::figures::fig5_architecture()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_table6,
    bench_table7,
    bench_table8,
    bench_table9,
    bench_figures
);
criterion_main!(benches);
