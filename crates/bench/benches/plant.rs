//! Substrate benchmarks: the environment simulator and the complete
//! closed-loop system. These bound how fast campaigns can run.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use arrestor::{RunConfig, System};
use simenv::{Plant, TestCase};

fn bench_plant(c: &mut Criterion) {
    let mut group = c.benchmark_group("plant");
    group.bench_function("step_1ms", |b| {
        let mut plant = Plant::new(TestCase::new(14_000.0, 55.0));
        b.iter(|| {
            black_box(plant.step(black_box(60.0), black_box(60.0)));
        })
    });
    group.bench_function("full_arrestment", |b| {
        b.iter(|| {
            let mut plant = Plant::new(TestCase::new(14_000.0, 55.0));
            while !plant.state().arrested && plant.state().time_ms < 60_000 {
                plant.step(80.0, 80.0);
            }
            black_box(plant.state().distance_m)
        })
    });
    group.finish();
}

fn bench_system(c: &mut Criterion) {
    let mut group = c.benchmark_group("system");
    group.bench_function("tick_1ms", |b| {
        let mut system = System::new(TestCase::new(14_000.0, 55.0), RunConfig::default());
        b.iter(|| {
            system.tick();
            black_box(system.time_ms());
        })
    });
    group.sample_size(20);
    group.bench_function("arrestment_10s", |b| {
        b.iter(|| {
            let mut system = System::new(TestCase::new(14_000.0, 55.0), RunConfig::default());
            for _ in 0..10_000 {
                system.tick();
            }
            black_box(system.plant_state().distance_m)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_plant, bench_system);
criterion_main!(benches);
